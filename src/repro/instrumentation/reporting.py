"""Plain-text result tables for the benchmark harness.

Every benchmark prints one or more tables in the style of a paper's
results section, via :func:`render_table`.  Keeping rendering here
means benches contain only measurement logic.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    note: str | None = None,
) -> str:
    """Render an aligned ASCII table with a title and optional footnote."""
    cells = [[format_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    note: str | None = None,
) -> None:
    print()
    print(render_table(title, headers, rows, note=note))
    print()


def ratio(numerator: float, denominator: float) -> float:
    """A safe ratio for 'speedup' columns."""
    if denominator == 0:
        return float("inf") if numerator else 1.0
    return numerator / denominator
