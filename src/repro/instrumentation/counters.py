"""Logical cost counters.

The paper argues about costs in terms of *base-data accesses* and
*source queries* (Sections 4.4 and 5.1), not wall-clock time.  Every
store, index, and warehouse component in this library therefore charges
its work to a :class:`CostCounters` instance, and the benchmark harness
reports these logical costs alongside pytest-benchmark timings.

Counter semantics
-----------------
``object_reads``      lookups of an object by OID in a store
``object_writes``     creations / value mutations in a store
``object_scans``      objects visited during a full-store scan
``index_probes``      lookups answered by an index (parent / label)
``edge_traversals``   parent→child edge followings during traversal
``source_queries``    queries sent from a warehouse to a source
``messages_sent``     warehouse protocol messages (either direction)
``bytes_sent``        estimated payload bytes of those messages
``delegates_inserted``/``delegates_deleted``/``delegates_refreshed``
                      materialized-view churn
``view_recomputations`` full recomputations performed
``chain_cache_hits``  root-chain lookups answered by the parent index's
                      memoized chain cache (no base access charged)
``chain_cache_misses`` chain lookups that had to walk the index
``updates_screened``  (view, update) pairs dropped by the dispatcher's
                      label/prefix screen with zero base accesses
``updates_coalesced`` updates removed from a batch by coalescing
                      (cancelled edge pairs, folded modify chains)
``query_retries``     source-query attempts repeated after a timeout or
                      outage (the backoff state machine, experiment E15)
``query_timeouts``    source answers lost in flight (injected timeouts)
``source_failures``   queries that found the source down
``notifications_deduped`` duplicate deliveries dropped: notifications
                      caught by the warehouse's sequence-number dedup,
                      and re-delivered updates screened out by
                      ``screen_replayed`` before application
``notifications_replayed`` lost notifications retransmitted from the
                      monitor's history during gap-detection resync
``view_resyncs``      warehouse views rebuilt by full recomputation
                      because replay was impossible
``query_cache_hits``  queries answered from the serving layer's result
                      cache with zero base accesses
``query_cache_misses`` queries that had to be evaluated (then cached)
``query_cache_evictions`` entries dropped by the cache's LRU bound
``query_cache_invalidations`` entries precisely invalidated because an
                      update could affect their answer (experiment E16)
``border_probes``     lookups in a sharded store's border index (the
                      cross-shard edge catalogue, experiment E17);
                      counted apart from ``index_probes`` so the cost
                      of crossing shard boundaries is visible
``failopen_cross_shard`` serving-cache invalidations that failed open
                      because the anchor's ancestry could not be
                      resolved past a shard border (the invalidator's
                      reachability screen gave up, experiment E17)
``snapshot_refreshes`` columnar snapshot epochs brought up to date
                      (delta-applied or fully rebuilt, experiment E18)
``snapshot_rows_scanned`` columnar rows touched by snapshot builds,
                      delta refreshes, and kernel frontier sweeps —
                      the kernel's analogue of reads + traversals
``kernel_fallbacks``  evaluations that wanted the columnar kernel but
                      fell back to the interpreted path because no
                      fresh snapshot was available (disabled, stale
                      mid-refresh, or unstitched shard borders)
``batch_screens``     shared screen masks computed by the batch
                      maintenance kernel — one per distinct (op kind,
                      label signature) per delta frame, so views
                      sharing a label gate share the screen
                      (discrimination-network sharing, experiment E19)
``delta_rows_scanned`` delta-frame rows materialized and candidate
                      positions examined by the batch kernel's
                      set-at-a-time screens, plus root-chain rows
                      reconstructed from its region sweep — the write
                      path's analogue of ``snapshot_rows_scanned``
``batch_kernel_fallbacks`` batches that wanted the vectorized write
                      path but dispatched interpreted instead (no
                      fresh snapshot, or a non-tree affected region)
``epochs_published``  frozen snapshot epochs published into the MVCC
                      retention ring (experiment E20)
``epochs_reclaimed``  retained epochs whose frozen views were released
                      by the ring (capacity eviction or explicit,
                      never while pinned)
``snapshot_pins``     reader pins taken on retained epochs — one per
                      epoch-pinned evaluation, so E20 can report how
                      much read traffic rode frozen views

The cache/screening counters are bookkeeping, not base accesses, so
they do not contribute to :meth:`CostCounters.total_base_accesses` —
they exist to *explain* why base accesses went down (experiment E14).
The snapshot/kernel counters are likewise kept out of the base-access
total: columnar rows are copies, not base objects, so kernel work is
reported in its own currency (``snapshot_rows_scanned``) next to the
interpreted path's reads + traversals (experiment E18); the batch
kernel's screen/region work (``batch_screens``,
``delta_rows_scanned``) lives in that same columnar currency
(experiment E19); the MVCC ring counters (``epochs_published``,
``epochs_reclaimed``, ``snapshot_pins``) are retention bookkeeping in
the same spirit (experiment E20).
The recovery counters (retries, dedups, replays, resyncs) likewise are
event counts, not base accesses; the base accesses a recovery action
*causes* (e.g. a resync's recomputation) are charged where they happen
and show up in the usual read/query counters (experiment E15).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class CostCounters:
    """A mutable bundle of named counters.

    Counters support addition, difference (snapshot deltas), and
    conversion to a plain dict for reporting.
    """

    object_reads: int = 0
    object_writes: int = 0
    object_scans: int = 0
    index_probes: int = 0
    edge_traversals: int = 0
    source_queries: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    delegates_inserted: int = 0
    delegates_deleted: int = 0
    delegates_refreshed: int = 0
    view_recomputations: int = 0
    chain_cache_hits: int = 0
    chain_cache_misses: int = 0
    updates_screened: int = 0
    updates_coalesced: int = 0
    query_retries: int = 0
    query_timeouts: int = 0
    source_failures: int = 0
    notifications_deduped: int = 0
    notifications_replayed: int = 0
    view_resyncs: int = 0
    query_cache_hits: int = 0
    query_cache_misses: int = 0
    query_cache_evictions: int = 0
    query_cache_invalidations: int = 0
    border_probes: int = 0
    failopen_cross_shard: int = 0
    snapshot_refreshes: int = 0
    snapshot_rows_scanned: int = 0
    kernel_fallbacks: int = 0
    batch_screens: int = 0
    delta_rows_scanned: int = 0
    batch_kernel_fallbacks: int = 0
    epochs_published: int = 0
    epochs_reclaimed: int = 0
    snapshot_pins: int = 0
    notes: dict[str, int] = field(default_factory=dict)

    # -- arithmetic --------------------------------------------------------

    def snapshot(self) -> "CostCounters":
        """Return an independent copy of the current counts."""
        clone = CostCounters()
        for f in fields(self):
            if f.name == "notes":
                clone.notes = dict(self.notes)
            else:
                setattr(clone, f.name, getattr(self, f.name))
        return clone

    def delta_since(self, earlier: "CostCounters") -> "CostCounters":
        """Return counts accumulated since *earlier* (a snapshot)."""
        delta = CostCounters()
        for f in fields(self):
            if f.name == "notes":
                delta.notes = {
                    key: self.notes.get(key, 0) - earlier.notes.get(key, 0)
                    for key in set(self.notes) | set(earlier.notes)
                }
            else:
                setattr(
                    delta,
                    f.name,
                    getattr(self, f.name) - getattr(earlier, f.name),
                )
        return delta

    def add(self, other: "CostCounters") -> None:
        """Accumulate *other* into this instance."""
        for f in fields(self):
            if f.name == "notes":
                for key, count in other.notes.items():
                    self.notes[key] = self.notes.get(key, 0) + count
            else:
                setattr(
                    self, f.name, getattr(self, f.name) + getattr(other, f.name)
                )

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            if f.name == "notes":
                self.notes.clear()
            else:
                setattr(self, f.name, 0)

    def note(self, key: str, amount: int = 1) -> None:
        """Bump a free-form named counter (for experiment-local metrics)."""
        self.notes[key] = self.notes.get(key, 0) + amount

    # -- reporting ---------------------------------------------------------

    def total_base_accesses(self) -> int:
        """The paper's headline cost: touches of base data.

        Reads, scans, and edge traversals all hit base objects; index
        probes are counted separately because the paper treats indexes
        as the thing that *avoids* base access (Section 4.4).
        """
        return self.object_reads + self.object_scans + self.edge_traversals

    def as_dict(self) -> dict[str, int]:
        """Return all non-zero counters as a flat dict."""
        result: dict[str, int] = {}
        for f in fields(self):
            if f.name == "notes":
                result.update(
                    {k: v for k, v in sorted(self.notes.items()) if v}
                )
            else:
                value = getattr(self, f.name)
                if value:
                    result[f.name] = value
        return result

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"CostCounters({inner})"
