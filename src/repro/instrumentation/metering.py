"""Metering contexts: capture counter deltas (and wall time) around a
block of work.

Usage::

    with Meter(store.counters) as meter:
        maintainer.handle(update)
    print(meter.delta.total_base_accesses(), meter.elapsed)

Multiple counters can be watched at once (e.g. a base store and a view
store), and a :class:`MeterSeries` accumulates per-operation deltas for
experiment reporting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.instrumentation.counters import CostCounters


class Meter:
    """Context manager capturing one counters delta and elapsed time."""

    def __init__(self, *counters: CostCounters) -> None:
        if not counters:
            raise ValueError("Meter needs at least one CostCounters")
        self._counters = counters
        self._snapshots: list[CostCounters] = []
        self._start = 0.0
        self.elapsed = 0.0
        self.delta = CostCounters()

    def __enter__(self) -> "Meter":
        self._snapshots = [c.snapshot() for c in self._counters]
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start
        self.delta = CostCounters()
        for counters, snapshot in zip(self._counters, self._snapshots):
            self.delta.add(counters.delta_since(snapshot))


@dataclass
class MeterSeries:
    """Accumulates per-operation meter results for a labelled series."""

    label: str
    deltas: list[CostCounters] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    def record(self, meter: Meter) -> None:
        self.deltas.append(meter.delta)
        self.times.append(meter.elapsed)

    def measure(self, *counters: CostCounters):
        """A context manager that records into this series on exit."""
        series = self

        class _Recorder(Meter):
            def __exit__(self, exc_type, exc, tb) -> None:
                super().__exit__(exc_type, exc, tb)
                series.record(self)

        return _Recorder(*counters)

    # -- aggregates -----------------------------------------------------------

    @property
    def operations(self) -> int:
        return len(self.deltas)

    def total(self, counter_name: str) -> int:
        return sum(getattr(d, counter_name) for d in self.deltas)

    def mean(self, counter_name: str) -> float:
        if not self.deltas:
            return 0.0
        return self.total(counter_name) / len(self.deltas)

    def total_base_accesses(self) -> int:
        return sum(d.total_base_accesses() for d in self.deltas)

    def mean_base_accesses(self) -> float:
        if not self.deltas:
            return 0.0
        return self.total_base_accesses() / len(self.deltas)

    def total_time(self) -> float:
        return sum(self.times)

    def mean_time(self) -> float:
        return sum(self.times) / len(self.times) if self.times else 0.0
