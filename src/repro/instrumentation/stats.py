"""Exact order statistics over recorded samples.

The serving benchmarks report tail latency (p50/p95/p99) over the
samples they actually recorded — no interpolation, no streaming sketch:
the sample counts involved (hundreds to tens of thousands) make the
exact nearest-rank percentile both correct and cheap, and exactness
keeps the numbers reproducible across runs with the same seed.

Nearest-rank definition: ``percentile(xs, q)`` is the smallest recorded
sample ``x`` such that at least ``q`` percent of samples are ≤ ``x``
(rank ``ceil(q/100 * n)``, 1-based, clamped to the sample range).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def percentile(samples: Sequence[float] | Iterable[float], q: float) -> float:
    """The exact nearest-rank *q*-th percentile of *samples*.

    Raises :class:`ValueError` on an empty sample set or a *q* outside
    [0, 100] — silently guessing a tail latency would defeat the point.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("percentile of an empty sample set")
    rank = math.ceil(q / 100 * len(ordered))
    return ordered[max(rank, 1) - 1]


def p50(samples: Sequence[float] | Iterable[float]) -> float:
    """The median (exact nearest-rank)."""
    return percentile(samples, 50)


def p95(samples: Sequence[float] | Iterable[float]) -> float:
    """The 95th percentile (exact nearest-rank)."""
    return percentile(samples, 95)


def p99(samples: Sequence[float] | Iterable[float]) -> float:
    """The 99th percentile (exact nearest-rank)."""
    return percentile(samples, 99)


def latency_summary(samples: Sequence[float]) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ..., "max": ..., "mean": ...}``
    over *samples* (each percentile exact over the recorded values)."""
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("latency summary of an empty sample set")
    return {
        "p50": percentile(ordered, 50),
        "p95": percentile(ordered, 95),
        "p99": percentile(ordered, 99),
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
    }


__all__ = ["latency_summary", "p50", "p95", "p99", "percentile"]
