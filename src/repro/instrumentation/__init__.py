"""Instrumentation: logical cost counters, metering, and report tables.

The paper's evaluation is framed in base-data accesses and source
queries (Sections 4.4 and 5.1), not seconds; these utilities make those
costs first-class alongside pytest-benchmark wall time.
"""

from repro.instrumentation.counters import CostCounters
from repro.instrumentation.metering import Meter, MeterSeries
from repro.instrumentation.reporting import (
    format_cell,
    print_table,
    ratio,
    render_table,
)
from repro.instrumentation.stats import (
    latency_summary,
    p50,
    p95,
    p99,
    percentile,
)

__all__ = [
    "CostCounters",
    "Meter",
    "MeterSeries",
    "format_cell",
    "latency_summary",
    "p50",
    "p95",
    "p99",
    "percentile",
    "print_table",
    "ratio",
    "render_table",
]
