"""repro — Graph Structured Views and Their Incremental Maintenance.

A from-scratch reproduction of Zhuge & Garcia-Molina (ICDE 1998):

* the OEM graph-structured data model with basic updates
  (:mod:`repro.gsdb`);
* paths and path expressions (:mod:`repro.paths`);
* the ``SELECT ... WHERE ... WITHIN ... ANS INT`` query language
  (:mod:`repro.query`);
* virtual and materialized views, Algorithm 1 incremental maintenance,
  and the Section 6 extended/DAG maintainers (:mod:`repro.views`);
* the relational-flattening baseline with counting IVM
  (:mod:`repro.relational`);
* the data-warehouse architecture with reporting levels, caching, and
  path knowledge (:mod:`repro.warehouse`);
* workloads and instrumentation (:mod:`repro.workloads`,
  :mod:`repro.instrumentation`).

Quickstart::

    from repro import ViewCatalog
    from repro.workloads import person_db, register_person_database

    catalog = ViewCatalog()
    person_db(catalog.store, tree=True)
    register_person_database(catalog.registry)
    catalog.define("define mview YP as: SELECT ROOT.professor X "
                   "WHERE X.age <= 45")
    catalog.store.insert_edge("P2", "A2")  # after creating A2
    sorted(catalog.materialized_views["YP"].members())
"""

from repro.errors import ReproError
from repro.gsdb import (
    DatabaseRegistry,
    Delete,
    Insert,
    LabelIndex,
    Modify,
    Object,
    ObjectStore,
    ParentIndex,
)
from repro.instrumentation import CostCounters, Meter
from repro.paths import Path, PathExpression
from repro.query import Query, QueryEvaluator, parse_query, parse_statement
from repro.views import (
    DagCountingMaintainer,
    ExtendedViewMaintainer,
    MaterializedView,
    SimpleViewMaintainer,
    SwizzleMode,
    ViewCatalog,
    ViewCluster,
    ViewDefinition,
    VirtualView,
    check_consistency,
)
from repro.warehouse import (
    CachePolicy,
    ReportingLevel,
    Source,
    SourceCapability,
    Warehouse,
)

__version__ = "1.0.0"

__all__ = [
    "CachePolicy",
    "CostCounters",
    "DagCountingMaintainer",
    "DatabaseRegistry",
    "Delete",
    "ExtendedViewMaintainer",
    "Insert",
    "LabelIndex",
    "MaterializedView",
    "Meter",
    "Modify",
    "Object",
    "ObjectStore",
    "ParentIndex",
    "Path",
    "PathExpression",
    "Query",
    "QueryEvaluator",
    "ReportingLevel",
    "ReproError",
    "SimpleViewMaintainer",
    "Source",
    "SourceCapability",
    "SwizzleMode",
    "ViewCatalog",
    "ViewCluster",
    "ViewDefinition",
    "VirtualView",
    "Warehouse",
    "check_consistency",
    "parse_query",
    "parse_statement",
]
