"""Bitset frontier kernels over columnar snapshots.

The interpreted evaluators (:meth:`~repro.paths.automaton.PathNFA.
evaluate` / ``evaluate_frontier``) run the NFA product construction
over Python objects: a dict lookup, a set-membership test, and a
counter increment per edge.  These kernels run the *same* product
construction over a :class:`~repro.gsdb.columnar.ColumnarSnapshot`'s
integer rows: a whole frontier's children arrive as one
:meth:`~repro.gsdb.columnar.ColumnarSnapshot.gather` (a C-level slice
per CSR row), and the visited-pair memo of the interpreted path —
"expand each (object, state-set) pair once" — becomes one ``bytearray``
bitset per reachable state set, six integer operations per child.

Equivalence contract: for any store and any compiled expression,
``evaluate_on_snapshot(snapshot, nfa, start)`` returns exactly
``nfa.evaluate(store, start)`` whenever the snapshot is fresh — the
property suite ``tests/property/test_kernel_equivalence.py`` pins
kernel ≡ ``evaluate_frontier`` ≡ ``evaluate`` member sets under random
graphs, cycles, shared subtrees, wildcard expressions, and mid-stream
updates.  Notable mirrored corner cases: the start OID is a member
when the expression accepts the empty path, *even if no such object
exists*; a non-set (or absent) start has no expansions; dangling child
references are never admitted.

Cost accounting: kernels charge only ``snapshot_rows_scanned``
(inside ``gather``) — columnar rows are copies, not base objects, so
the interpreted path's ``object_reads``/``edge_traversals`` stay
untouched and benchmark tables compare the two currencies explicitly.

The functions take any object implementing the snapshot view protocol
(``nrows``/``row``/``oid``/``label_names``/``gather``), so a sharded
:class:`~repro.gsdb.columnar.ShardedSnapshotView` works unchanged —
border edges simply show up in ``gather``.
"""

from __future__ import annotations

from typing import Iterable

from repro.paths.automaton import PathNFA, StateSet


def evaluate_on_snapshot(view, nfa: PathNFA, start: str) -> set[str]:
    """``start.e`` over a fresh columnar snapshot (set-at-a-time).

    Frontiers are keyed by NFA state set; each level derives the step
    once per (state set, label) and sweeps the whole frontier through
    one :meth:`gather`.  Per-state-set visited bitsets make each
    (row, state set) pair expand at most once — cycle-safe exactly
    like the interpreted evaluators.
    """
    initial = nfa.initial()
    if not initial:
        return set()
    results: set[str] = set()
    if nfa.is_accepting(initial):
        results.add(start)  # empty path: included even if absent
    start_row = view.row(start)
    if start_row is None:
        return results
    nbytes = (view.nrows + 7) >> 3
    visited: dict[StateSet, bytearray] = {initial: bytearray(nbytes)}
    visited[initial][start_row >> 3] |= 1 << (start_row & 7)
    accepted = bytearray(nbytes)
    accepted_rows: list[int] = []
    if nfa.is_accepting(initial):
        accepted[start_row >> 3] |= 1 << (start_row & 7)
    all_labels = view.label_names()
    frontier: dict[StateSet, list[int]] = {initial: [start_row]}
    while frontier:
        next_frontier: dict[StateSet, list[int]] = {}
        # Sorted state-set order mirrors evaluate_frontier's
        # deterministic expansion (charges must not depend on dict
        # iteration order).
        for states in sorted(frontier, key=sorted):
            rows = frontier[states]
            alphabet = nfa.transition_labels(states)
            if alphabet is None:
                labels: Iterable[str] = all_labels
            elif not alphabet:
                continue  # accept-only state set: nothing to expand
            else:
                labels = sorted(alphabet.intersection(all_labels))
            # Group labels by successor state set: a wildcard step sends
            # every label to the same successor, and one combined-CSR
            # gather then replaces a per-label pass over the frontier.
            groups: dict[StateSet, list[str]] = {}
            for label in labels:
                stepped = nfa.step(states, label)
                if stepped:
                    groups.setdefault(stepped, []).append(label)
            for next_states in sorted(groups, key=sorted):
                group = groups[next_states]
                if len(group) == len(all_labels):
                    children = view.gather(rows, None)
                else:
                    children = []
                    for label in group:
                        children.extend(view.gather(rows, label))
                if not children:
                    continue
                bits = visited.get(next_states)
                if bits is None:
                    bits = visited[next_states] = bytearray(nbytes)
                bucket = next_frontier.get(next_states)
                if bucket is None:
                    bucket = next_frontier[next_states] = []
                push = bucket.append
                if nfa.is_accepting(next_states):
                    admit = accepted_rows.append
                    for child in children:
                        word = child >> 3
                        mask = 1 << (child & 7)
                        if bits[word] & mask:
                            continue
                        bits[word] |= mask
                        push(child)
                        if not accepted[word] & mask:
                            accepted[word] |= mask
                            admit(child)
                else:
                    for child in children:
                        word = child >> 3
                        mask = 1 << (child & 7)
                        if not bits[word] & mask:
                            bits[word] |= mask
                            push(child)
        frontier = {
            states: bucket
            for states, bucket in next_frontier.items()
            if bucket
        }
    oid = view.oid
    results.update(oid(row) for row in accepted_rows)
    return results


def evaluate_many_on_snapshot(
    view, nfa: PathNFA, starts: Iterable[str]
) -> dict[str, set[str]]:
    """``start.e`` for *many* starts in one multi-source product sweep.

    Equivalent to ``{s: evaluate_on_snapshot(view, nfa, s) for s in
    starts}`` but shares the frontier machinery across all starts:
    origin provenance rides along as an integer bitmask (one bit per
    distinct start), so each (row, state set) pair is expanded at most
    once per *new* origin arrival instead of once per start.  When the
    starts root disjoint subgraphs — the common case for WHERE-clause
    candidates over tree-shaped stores — every pair is expanded exactly
    once in total, and the per-start setup cost (visited bitsets,
    per-level NFA bookkeeping) is paid once rather than ``len(starts)``
    times.  Worst case (all starts reach everything) degrades to the
    per-start cost with wider masks, never worse asymptotically.

    The E20 serving tier uses this to vectorize condition filtering:
    one sweep per condition path per query instead of one interpreted
    evaluation per candidate (see ``repro.serving.mvcc``).
    """
    order: list[str] = []
    bit_of: dict[str, int] = {}
    for start in starts:
        if start not in bit_of:
            bit_of[start] = 1 << len(order)
            order.append(start)
    results: dict[str, set[str]] = {start: set() for start in order}
    initial = nfa.initial()
    if not initial or not order:
        return results
    if nfa.is_accepting(initial):
        for start in order:
            results[start].add(start)  # empty path: even if absent
    init_rows: dict[int, int] = {}
    for start in order:
        row = view.row(start)
        if row is not None:
            init_rows[row] = init_rows.get(row, 0) | bit_of[start]
    if not init_rows:
        return results
    # visited / frontier / accepted map row -> origin mask.  A row
    # re-enters the frontier only with origins it has not carried yet,
    # which both terminates cycles and lets shared substructure serve
    # many starts from one expansion.
    visited: dict[StateSet, dict[int, int]] = {initial: dict(init_rows)}
    accepted: dict[int, int] = {}
    if nfa.is_accepting(initial):
        accepted.update(init_rows)
    all_labels = view.label_names()
    frontier: dict[StateSet, dict[int, int]] = {initial: dict(init_rows)}
    while frontier:
        next_frontier: dict[StateSet, dict[int, int]] = {}
        for states in sorted(frontier, key=sorted):
            row_masks = frontier[states]
            alphabet = nfa.transition_labels(states)
            if alphabet is None:
                labels: Iterable[str] = all_labels
            elif not alphabet:
                continue  # accept-only state set: nothing to expand
            else:
                labels = sorted(alphabet.intersection(all_labels))
            groups: dict[StateSet, list[str]] = {}
            for label in labels:
                stepped = nfa.step(states, label)
                if stepped:
                    groups.setdefault(stepped, []).append(label)
            # Rows sharing an origin mask sweep through gather as one
            # batch — their children all inherit that same mask.
            by_mask: dict[int, list[int]] = {}
            for row, mask in row_masks.items():
                by_mask.setdefault(mask, []).append(row)
            for next_states in sorted(groups, key=sorted):
                group = groups[next_states]
                wildcard = len(group) == len(all_labels)
                bits = visited.setdefault(next_states, {})
                bucket = next_frontier.setdefault(next_states, {})
                accepting = nfa.is_accepting(next_states)
                bits_get = bits.get
                bucket_get = bucket.get
                accepted_get = accepted.get
                for mask, rows in by_mask.items():
                    if wildcard:
                        children = view.gather(rows, None)
                    else:
                        children = []
                        for label in group:
                            children.extend(view.gather(rows, label))
                    for child in children:
                        seen = bits_get(child, 0)
                        if seen:
                            new = mask & ~seen
                            if not new:
                                continue
                            bits[child] = seen | new
                        else:
                            new = mask
                            bits[child] = mask
                        bucket[child] = bucket_get(child, 0) | new
                        if accepting:
                            accepted[child] = accepted_get(child, 0) | new
        frontier = {
            states: bucket
            for states, bucket in next_frontier.items()
            if bucket
        }
    oid = view.oid
    for row, mask in accepted.items():
        member = oid(row)
        while mask:
            low = mask & -mask
            results[order[low.bit_length() - 1]].add(member)
            mask ^= low
    return results


def reachable_on_snapshot(view, roots: Iterable[str]) -> set[str]:
    """Every OID reachable from *roots* (inclusive) via set values.

    Columnar twin of :func:`repro.gsdb.gc.reachable_from`: label-blind
    BFS over the all-labels CSR with one visited bitset.  Roots that
    do not exist in the store are skipped, exactly as the interpreted
    mark does.
    """
    nbytes = (view.nrows + 7) >> 3
    seen = bytearray(nbytes)
    seen_rows: list[int] = []
    frontier: list[int] = []
    for oid in roots:
        row = view.row(oid)
        if row is None:
            continue
        word = row >> 3
        mask = 1 << (row & 7)
        if seen[word] & mask:
            continue
        seen[word] |= mask
        seen_rows.append(row)
        frontier.append(row)
    while frontier:
        next_frontier: list[int] = []
        for child in view.gather(frontier, None):
            word = child >> 3
            mask = 1 << (child & 7)
            if seen[word] & mask:
                continue
            seen[word] |= mask
            seen_rows.append(child)
            next_frontier.append(child)
        frontier = next_frontier
    oid = view.oid
    return {oid(row) for row in seen_rows}


def reaches_on_snapshot(view, source: str, target: str) -> bool:
    """Is *target* reachable from *source* (inclusive)?  Early-exit BFS.

    Used by the serving invalidator to refine its fail-open reachability
    screen: a precise downward sweep replaces "assume affected".
    """
    source_row = view.row(source)
    target_row = view.row(target)
    if source_row is None or target_row is None:
        return False
    if source_row == target_row:
        return True
    nbytes = (view.nrows + 7) >> 3
    seen = bytearray(nbytes)
    seen[source_row >> 3] |= 1 << (source_row & 7)
    frontier = [source_row]
    while frontier:
        next_frontier: list[int] = []
        for child in view.gather(frontier, None):
            if child == target_row:
                return True
            word = child >> 3
            mask = 1 << (child & 7)
            if seen[word] & mask:
                continue
            seen[word] |= mask
            next_frontier.append(child)
        frontier = next_frontier
    return False
