"""Constant label paths.

Paper Section 2: "A path is a sequence of zero or more object labels
separated by dots: ``p = l1.l2...ln``".  Simple views (Section 4.2) are
defined entirely with constant paths, so they get a small dedicated
type; path *expressions* with wildcards live in
:mod:`repro.paths.expression`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import PathSyntaxError


class Path:
    """An immutable sequence of labels.

    Behaves like a tuple of labels with path-specific helpers
    (concatenation, prefix/suffix tests) used throughout Algorithm 1.

    >>> p = Path.parse("professor.student")
    >>> list(p)
    ['professor', 'student']
    >>> str(p + Path.parse("age"))
    'professor.student.age'
    """

    __slots__ = ("_labels",)

    def __init__(self, labels: Sequence[str] = ()) -> None:
        labels = tuple(labels)
        for label in labels:
            if not label or "." in label:
                raise PathSyntaxError(
                    ".".join(labels), 0, f"invalid label {label!r}"
                )
        self._labels = labels

    @classmethod
    def parse(cls, text: str) -> "Path":
        """Parse dotted-label syntax; the empty string is the empty path."""
        text = text.strip()
        if not text:
            return cls(())
        return cls(tuple(text.split(".")))

    # -- sequence protocol ----------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __getitem__(self, index):
        result = self._labels[index]
        return Path(result) if isinstance(index, slice) else result

    def __bool__(self) -> bool:
        return bool(self._labels)

    # -- path algebra -----------------------------------------------------------

    def __add__(self, other: "Path | Sequence[str]") -> "Path":
        other_labels = other.labels if isinstance(other, Path) else tuple(other)
        return Path(self._labels + tuple(other_labels))

    def startswith(self, prefix: "Path | Sequence[str]") -> bool:
        """True if *prefix* is a prefix of this path."""
        labels = prefix.labels if isinstance(prefix, Path) else tuple(prefix)
        return self._labels[: len(labels)] == tuple(labels)

    def endswith(self, suffix: "Path | Sequence[str]") -> bool:
        """True if *suffix* is a suffix of this path.

        Algorithm 1's delete case tests ``p = p1.cond_path`` — i.e.
        whether ``cond_path`` is a suffix of ``p``.
        """
        labels = suffix.labels if isinstance(suffix, Path) else tuple(suffix)
        if not labels:
            return True
        return self._labels[-len(labels):] == tuple(labels)

    def strip_prefix(self, prefix: "Path | Sequence[str]") -> "Path | None":
        """Return the remainder after *prefix*, or None if not a prefix.

        Algorithm 1 computes ``p`` from
        ``sel_path.cond_path = path(ROOT,N1).label(N2).p`` this way.
        """
        labels = prefix.labels if isinstance(prefix, Path) else tuple(prefix)
        if not self.startswith(labels):
            return None
        return Path(self._labels[len(labels):])

    def strip_suffix(self, suffix: "Path | Sequence[str]") -> "Path | None":
        """Return the front part before *suffix*, or None if not a suffix."""
        labels = suffix.labels if isinstance(suffix, Path) else tuple(suffix)
        if not self.endswith(labels):
            return None
        if not labels:
            return self
        return Path(self._labels[: -len(labels)])

    # -- dunder -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Path):
            return self._labels == other._labels
        if isinstance(other, (tuple, list)):
            return self._labels == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._labels)

    def __repr__(self) -> str:
        return f"Path({str(self)!r})"

    def __str__(self) -> str:
        return ".".join(self._labels)


#: The empty path (``N.ε = {N}``).
EMPTY_PATH = Path(())
