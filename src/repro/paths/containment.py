"""Path-expression containment and emptiness tests.

Section 6 of the paper: maintaining views whose paths are general path
expressions requires "test[ing] path containment for general path
expressions".  This module decides, for two expressions ``e1`` and
``e2``, whether every instance of ``e1`` is an instance of ``e2``
(``e1 ⊑ e2``).

The label alphabet is unbounded, so we work over the *relevant*
alphabet: the concrete labels mentioned by either expression plus one
fresh symbol ``OTHER`` standing for "any label not mentioned".  Both
``?`` and ``*`` match ``OTHER``; a :class:`LabelSegment` never does.
Containment over this finite alphabet coincides with containment over
the unbounded one because the expressions cannot distinguish two
unmentioned labels.

Decision procedure: determinize ``e2`` by subset construction, then
search the product of ``e1``'s NFA with the DFA for a word accepted by
``e1`` but not ``e2``.
"""

from __future__ import annotations

from repro.paths.automaton import StateSet, compile_expression
from repro.paths.expression import PathExpression

#: Stand-in for any label not mentioned by either expression.
OTHER_LABEL = "\x00other"


def relevant_alphabet(*expressions: PathExpression) -> list[str]:
    """Concrete labels mentioned by the expressions, plus ``OTHER``."""
    labels: set[str] = set()
    for expression in expressions:
        labels.update(expression.mentioned_labels())
    return sorted(labels) + [OTHER_LABEL]


def is_contained(inner: PathExpression, outer: PathExpression) -> bool:
    """True iff every instance path of *inner* is an instance of *outer*.

    >>> e = PathExpression.parse
    >>> is_contained(e("professor.age"), e("professor.*"))
    True
    >>> is_contained(e("professor.*"), e("professor.age"))
    False
    >>> is_contained(e("a.?"), e("a.*"))
    True
    """
    return _counterexample(inner, outer) is None


def containment_counterexample(
    inner: PathExpression, outer: PathExpression
) -> list[str] | None:
    """Return a shortest instance of *inner* not matching *outer*.

    ``None`` means containment holds.  ``OTHER`` symbols in the witness
    are replaced by a readable fresh label.
    """
    witness = _counterexample(inner, outer)
    if witness is None:
        return None
    return [
        "fresh_label" if symbol == OTHER_LABEL else symbol
        for symbol in witness
    ]


def _counterexample(
    inner: PathExpression, outer: PathExpression
) -> list[str] | None:
    alphabet = relevant_alphabet(inner, outer)
    inner_nfa = compile_expression(inner)
    outer_nfa = compile_expression(outer)

    # Product BFS: (inner NFA state-set, outer NFA state-set).  The
    # outer side is effectively determinized by tracking state-sets.
    start = (inner_nfa.initial(), outer_nfa.initial())
    if inner_nfa.is_accepting(start[0]) and not outer_nfa.is_accepting(
        start[1]
    ):
        return []
    seen: set[tuple[StateSet, StateSet]] = {start}
    frontier: list[tuple[tuple[StateSet, StateSet], list[str]]] = [
        (start, [])
    ]
    while frontier:
        next_frontier: list[tuple[tuple[StateSet, StateSet], list[str]]] = []
        for (inner_states, outer_states), word in frontier:
            for symbol in alphabet:
                new_inner = inner_nfa.step(inner_states, symbol)
                if not new_inner:
                    continue  # inner rejects; cannot yield counterexamples
                new_outer = outer_nfa.step(outer_states, symbol)
                new_word = word + [symbol]
                if inner_nfa.is_accepting(new_inner) and not (
                    outer_nfa.is_accepting(new_outer)
                ):
                    return new_word
                key = (new_inner, new_outer)
                if key not in seen:
                    seen.add(key)
                    next_frontier.append((key, new_word))
        frontier = next_frontier
    return None


def are_equivalent(first: PathExpression, second: PathExpression) -> bool:
    """True iff the two expressions have exactly the same instances."""
    return is_contained(first, second) and is_contained(second, first)


def is_empty_intersection(
    first: PathExpression, second: PathExpression
) -> bool:
    """True iff no path is an instance of both expressions.

    Used by the warehouse's path-knowledge screening (Section 5.2): if
    the path to an updated object cannot intersect the view's paths,
    the update is irrelevant.
    """
    return intersection_witness(first, second) is None


def intersection_witness(
    first: PathExpression, second: PathExpression
) -> list[str] | None:
    """A shortest common instance of both expressions, or None."""
    alphabet = relevant_alphabet(first, second)
    first_nfa = compile_expression(first)
    second_nfa = compile_expression(second)
    start = (first_nfa.initial(), second_nfa.initial())
    if first_nfa.is_accepting(start[0]) and second_nfa.is_accepting(start[1]):
        return []
    seen: set[tuple[StateSet, StateSet]] = {start}
    frontier: list[tuple[tuple[StateSet, StateSet], list[str]]] = [(start, [])]
    while frontier:
        next_frontier: list[tuple[tuple[StateSet, StateSet], list[str]]] = []
        for (first_states, second_states), word in frontier:
            for symbol in alphabet:
                new_first = first_nfa.step(first_states, symbol)
                new_second = second_nfa.step(second_states, symbol)
                if not new_first or not new_second:
                    continue
                new_word = word + [symbol]
                if first_nfa.is_accepting(new_first) and second_nfa.is_accepting(
                    new_second
                ):
                    return [
                        "fresh_label" if s == OTHER_LABEL else s
                        for s in new_word
                    ]
                key = (new_first, new_second)
                if key not in seen:
                    seen.add(key)
                    next_frontier.append((key, new_word))
        frontier = next_frontier
    return None


def shortest_instance(expression: PathExpression) -> list[str] | None:
    """A shortest instance path of *expression* (None if language empty —
    which cannot happen for our segment grammar, but the API is total)."""
    alphabet = relevant_alphabet(expression)
    nfa = compile_expression(expression)
    start = nfa.initial()
    if nfa.is_accepting(start):
        return []
    seen: set[StateSet] = {start}
    frontier: list[tuple[StateSet, list[str]]] = [(start, [])]
    while frontier:
        next_frontier: list[tuple[StateSet, list[str]]] = []
        for states, word in frontier:
            for symbol in alphabet:
                new_states = nfa.step(states, symbol)
                if not new_states:
                    continue
                new_word = word + [symbol]
                if nfa.is_accepting(new_states):
                    return [
                        "fresh_label" if s == OTHER_LABEL else s
                        for s in new_word
                    ]
                if new_states not in seen:
                    seen.add(new_states)
                    next_frontier.append((new_states, new_word))
        frontier = next_frontier
    return None
