"""Path expressions: regular expressions over label paths.

Paper Section 2: "A path expression is a regular expression of paths.
For example, ``*``, ``professor.*`` and ``professor.?`` are path
expressions.  A path is also a (constant) path expression."  A path
``p`` is an *instance* of expression ``e`` when the wildcards of ``e``
can be substituted by paths (for ``*``) or single labels (for ``?``) to
obtain ``p``; ``N.e`` is the union of ``N.p`` over all instances.

Grammar (dot-separated segments)::

    expression := segment ('.' segment)*   |   ''        (empty = ε)
    segment    := '*'                                    any path, incl. ε
                | '?'                                    exactly one label
                | name ('|' name)*                       label alternation

Label alternation (``professor|student``) is a convenience extension —
it stays within the regular-expressions-of-paths family the paper
allows.  Expressions compile to NFAs in :mod:`repro.paths.automaton`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.errors import PathSyntaxError
from repro.paths.path import Path


@dataclass(frozen=True, slots=True)
class LabelSegment:
    """Matches one edge whose target label is in *labels*."""

    labels: frozenset[str]

    def matches(self, label: str) -> bool:
        return label in self.labels

    def __str__(self) -> str:
        return "|".join(sorted(self.labels))


@dataclass(frozen=True, slots=True)
class AnyLabelSegment:
    """``?`` — matches exactly one edge, any label."""

    def matches(self, label: str) -> bool:
        return True

    def __str__(self) -> str:
        return "?"


@dataclass(frozen=True, slots=True)
class AnyPathSegment:
    """``*`` — matches any path, including the empty one."""

    def matches(self, label: str) -> bool:
        return True

    def __str__(self) -> str:
        return "*"


Segment = Union[LabelSegment, AnyLabelSegment, AnyPathSegment]


class PathExpression:
    """A parsed path expression — a sequence of segments.

    >>> e = PathExpression.parse("professor.*.age")
    >>> e.is_constant
    False
    >>> e.matches(Path.parse("professor.student.age"))
    True
    >>> e.matches(Path.parse("professor.age"))
    True
    >>> e.matches(Path.parse("secretary.age"))
    False
    """

    __slots__ = ("_segments",)

    def __init__(self, segments: Sequence[Segment] = ()) -> None:
        self._segments = tuple(segments)

    @classmethod
    def parse(cls, text: str) -> "PathExpression":
        """Parse dotted-segment syntax (see module docstring)."""
        text = text.strip()
        if not text:
            return cls(())
        segments: list[Segment] = []
        position = 0
        for raw in text.split("."):
            token = raw.strip()
            if not token:
                raise PathSyntaxError(text, position, "empty segment")
            if token == "*":
                segments.append(AnyPathSegment())
            elif token == "?":
                segments.append(AnyLabelSegment())
            else:
                labels = [name.strip() for name in token.split("|")]
                if any(not name or name in ("*", "?") for name in labels):
                    raise PathSyntaxError(
                        text, position, f"invalid segment {token!r}"
                    )
                segments.append(LabelSegment(frozenset(labels)))
            position += len(raw) + 1
        return cls(segments)

    @classmethod
    def from_path(cls, path: Path) -> "PathExpression":
        """Lift a constant path into an expression."""
        return cls(tuple(LabelSegment(frozenset((l,))) for l in path))

    # -- properties ------------------------------------------------------------

    @property
    def segments(self) -> tuple[Segment, ...]:
        return self._segments

    @property
    def is_constant(self) -> bool:
        """True when the expression is a plain path (no wildcards and no
        alternation) — the class Algorithm 1 supports directly."""
        return all(
            isinstance(seg, LabelSegment) and len(seg.labels) == 1
            for seg in self._segments
        )

    def as_path(self) -> Path:
        """Convert a constant expression back into a :class:`Path`.

        Raises:
            ValueError: if the expression contains wildcards.
        """
        if not self.is_constant:
            raise ValueError(f"not a constant path: {self}")
        return Path(
            tuple(next(iter(seg.labels)) for seg in self._segments)  # type: ignore[union-attr]
        )

    @property
    def min_length(self) -> int:
        """Length of the shortest instance path."""
        return sum(
            0 if isinstance(seg, AnyPathSegment) else 1
            for seg in self._segments
        )

    @property
    def has_star(self) -> bool:
        return any(isinstance(seg, AnyPathSegment) for seg in self._segments)

    def mentioned_labels(self) -> frozenset[str]:
        """All concrete labels appearing in the expression."""
        labels: set[str] = set()
        for seg in self._segments:
            if isinstance(seg, LabelSegment):
                labels.update(seg.labels)
        return frozenset(labels)

    # -- algebra -----------------------------------------------------------------

    def concat(self, other: "PathExpression") -> "PathExpression":
        """Concatenation — Algorithm 1 reasons about ``sel_path.cond_path``."""
        return PathExpression(self._segments + other._segments)

    def matches(self, path: Path | Sequence[str]) -> bool:
        """Instance test: is *path* an instance of this expression?

        Delegates to the compiled NFA (cached per expression).
        """
        from repro.paths.automaton import compile_expression

        labels = path.labels if isinstance(path, Path) else tuple(path)
        return compile_expression(self).accepts(labels)

    # -- dunder ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathExpression):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        return hash(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __repr__(self) -> str:
        return f"PathExpression({str(self)!r})"

    def __str__(self) -> str:
        return ".".join(str(seg) for seg in self._segments)
