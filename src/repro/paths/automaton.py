"""NFA compilation and graph evaluation of path expressions.

A path expression with segments ``s0 ... s(n-1)`` compiles to an NFA
whose states are positions ``0..n`` ("about to match segment i"), with:

* a ``LabelSegment``/``AnyLabelSegment`` at position i consuming one
  matching label and moving i → i+1;
* an ``AnyPathSegment`` (``*``) at position i adding an ε-move i → i+1
  (match zero labels) and a self-loop consuming any label.

State n is accepting.  The state space is tiny (|expression|+1), so we
run the NFA in subset form: a frozenset of positions.  Evaluating
``N.e`` on a store is then a product search over (object, state-set)
pairs; memoizing visited pairs makes it terminate on cyclic graphs.

The compiled automaton also exposes *residual* operations used by the
extended view maintainer (:mod:`repro.views.extended`): feed it a known
prefix path (``path(ROOT, N1) + label(N2)``) and continue matching only
in the affected subtree.

Two evaluation strategies exist side by side:

* :meth:`PathNFA.evaluate` — the classic node-at-a-time product search,
  examining every out-edge of every visited object.  Kept as the
  unindexed baseline (experiment E8 ablations).
* :meth:`PathNFA.evaluate_frontier` — set-at-a-time: whole OID
  frontiers are expanded level by level, and with a
  :class:`~repro.gsdb.indexes.LabelIndex` the children-by-label
  adjacency skips out-edges whose label has no automaton transition,
  charging one ``index_probes`` per expanded parent instead of one
  ``edge_traversals`` per skipped edge (the same accounting indexed
  traversal uses elsewhere).  Used by the read-path serving layer
  (:mod:`repro.serving`) and experiment E16.

``step`` results are memoized per automaton in a
``(state-set, label) → state-set`` transition table: the inner loop of
both evaluators re-steps the same state set over the same label for
every sibling carrying that label, and NFA move derivation is pure, so
repeated steps are answered from the table (``step_cache_hits`` /
``step_computations`` count the effect).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

from repro.gsdb.store import ObjectStore
from repro.paths.expression import (
    AnyPathSegment,
    LabelSegment,
    PathExpression,
    Segment,
)

StateSet = frozenset[int]

#: Sentinel distinguishing "not memoized" from a memoized None alphabet.
_ALPHABET_MISS = object()


class PathNFA:
    """Compiled form of a :class:`PathExpression`."""

    def __init__(self, expression: PathExpression) -> None:
        self.expression = expression
        self._segments: tuple[Segment, ...] = expression.segments
        self._accept = len(self._segments)
        #: (state-set, label) → state-set transition memo.  The state
        #: space is tiny, so the table is bounded by the number of
        #: distinct labels fed through each reachable state set.
        self._step_cache: dict[tuple[StateSet, str], StateSet] = {}
        #: label alphabets with a transition out of a state set (None =
        #: every label moves), memoized per state set.
        self._alphabet_cache: dict[StateSet, frozenset[str] | None] = {}
        self.step_computations = 0
        self.step_cache_hits = 0

    # -- core NFA operations -----------------------------------------------------

    def initial(self) -> StateSet:
        """The ε-closure of the start state."""
        return self._closure({0})

    def _closure(self, states: Iterable[int]) -> StateSet:
        """ε-closure: skip over ``*`` segments without consuming."""
        result = set(states)
        stack = list(result)
        while stack:
            state = stack.pop()
            if state < self._accept and isinstance(
                self._segments[state], AnyPathSegment
            ):
                target = state + 1
                if target not in result:
                    result.add(target)
                    stack.append(target)
        return frozenset(result)

    def step(self, states: StateSet, label: str) -> StateSet:
        """Consume one *label* from every state in *states* (memoized)."""
        key = (states, label)
        cached = self._step_cache.get(key)
        if cached is not None:
            self.step_cache_hits += 1
            return cached
        self.step_computations += 1
        moved: set[int] = set()
        for state in states:
            if state >= self._accept:
                continue
            segment = self._segments[state]
            if isinstance(segment, AnyPathSegment):
                moved.add(state)  # self-loop consumes the label
            elif segment.matches(label):
                moved.add(state + 1)
        result = self._closure(moved)
        self._step_cache[key] = result
        return result

    def transition_labels(self, states: StateSet) -> frozenset[str] | None:
        """Labels with a transition out of *states*; None means "any".

        Wildcard segments (``*`` self-loops, ``?``) consume every label,
        so any live state sitting on one makes the alphabet unbounded.
        The serving layer's frontier evaluation uses a bounded alphabet
        to probe the label index instead of scanning out-edges.
        """
        cached = self._alphabet_cache.get(states, _ALPHABET_MISS)
        if cached is not _ALPHABET_MISS:
            return cached
        labels: set[str] = set()
        result: frozenset[str] | None
        for state in states:
            if state >= self._accept:
                continue
            segment = self._segments[state]
            if not isinstance(segment, LabelSegment):
                self._alphabet_cache[states] = None
                return None
            labels.update(segment.labels)
        result = frozenset(labels)
        self._alphabet_cache[states] = result
        return result

    def is_accepting(self, states: StateSet) -> bool:
        return self._accept in states

    def is_dead(self, states: StateSet) -> bool:
        return not states

    def accepts(self, labels: Sequence[str]) -> bool:
        """Instance test: does the label sequence match the expression?"""
        states = self.initial()
        for label in labels:
            states = self.step(states, label)
            if not states:
                return False
        return self.is_accepting(states)

    def residual(self, labels: Sequence[str]) -> StateSet:
        """State set after consuming *labels* from the start."""
        states = self.initial()
        for label in labels:
            states = self.step(states, label)
            if not states:
                break
        return states

    # -- graph evaluation ---------------------------------------------------------

    def evaluate(
        self,
        store: ObjectStore,
        start: str,
        *,
        from_states: StateSet | None = None,
    ) -> set[str]:
        """Return ``start.e`` — every object reached along an instance.

        With *from_states*, evaluation continues an already-consumed
        prefix (the residual trick used for incremental maintenance of
        wildcard views).  The start object itself is included when the
        (residual) expression accepts the empty path.

        Cycle-safe: each (object, state-set) pair is expanded once.
        """
        initial = self.initial() if from_states is None else from_states
        if not initial:
            return set()
        results: set[str] = set()
        if self.is_accepting(initial):
            results.add(start)
        seen: set[tuple[str, StateSet]] = {(start, initial)}
        stack: list[tuple[str, StateSet]] = [(start, initial)]
        while stack:
            oid, states = stack.pop()
            obj = store.get_optional(oid)
            if obj is None or not obj.is_set:
                continue
            for child in obj.children():
                store.counters.edge_traversals += 1
                child_obj = store.get_optional(child)
                if child_obj is None:
                    continue
                next_states = self.step(states, child_obj.label)
                if not next_states:
                    continue
                if self.is_accepting(next_states):
                    results.add(child)
                key = (child, next_states)
                if key not in seen:
                    seen.add(key)
                    stack.append(key)
        return results

    def evaluate_frontier(
        self,
        store: ObjectStore,
        start: str,
        *,
        label_index=None,
        from_states: StateSet | None = None,
    ) -> set[str]:
        """Set-at-a-time :meth:`evaluate`: expand whole OID frontiers.

        Objects sharing a state set are expanded level by level, so the
        per-label NFA step is derived once per (state set, label) and
        shared across the whole frontier (with :meth:`step`'s memo, once
        ever).  When *label_index* (a
        :class:`~repro.gsdb.indexes.LabelIndex`) is given and the
        residual alphabet is bounded, each parent is expanded through
        the children-by-label adjacency: one ``index_probes`` per
        expanded parent replaces one ``edge_traversals`` per out-edge
        whose label has no transition; admitted children charge one
        ``edge_traversals`` + ``object_reads`` each (the
        :func:`~repro.gsdb.traversal.follow_path` accounting — the
        label test rides on the adjacency, existence on the uncharged
        ``peek``).

        Only pass a *label_index* built over the *same, unscoped* store:
        a :class:`~repro.query.evaluator.ScopedStore` must keep the
        scan path so out-of-scope children stay invisible (and charge
        their probe reads).  Results are identical to :meth:`evaluate`
        in all cases; cycle-safe the same way (each (object, state-set)
        pair expands once).
        """
        initial = self.initial() if from_states is None else from_states
        if not initial:
            return set()
        results: set[str] = set()
        if self.is_accepting(initial):
            results.add(start)
        seen: set[tuple[str, StateSet]] = {(start, initial)}
        peek = getattr(store, "peek", None)
        indexed = label_index is not None and peek is not None
        counters = store.counters
        frontier: dict[StateSet, set[str]] = {initial: {start}}
        while frontier:
            next_frontier: dict[StateSet, set[str]] = {}

            def admit(child: str, next_states: StateSet) -> None:
                if self.is_accepting(next_states):
                    results.add(child)
                key = (child, next_states)
                if key not in seen:
                    seen.add(key)
                    next_frontier.setdefault(next_states, set()).add(child)

            # Deterministic expansion order keeps charged counts
            # reproducible (sorted state sets, then sorted OIDs).
            for states in sorted(frontier, key=sorted):
                alphabet = (
                    self.transition_labels(states) if indexed else None
                )
                if alphabet is not None and not alphabet:
                    continue  # no live transition: nothing to expand
                for oid in sorted(frontier[states]):
                    obj = store.get_optional(oid)
                    if obj is None or not obj.is_set:
                        continue
                    if alphabet is not None:
                        by_label = label_index.children_by_label(oid)
                        for label in sorted(alphabet & by_label.keys()):
                            next_states = self.step(states, label)
                            if not next_states:
                                continue
                            for child in by_label[label]:
                                if peek(child) is None:
                                    continue
                                counters.edge_traversals += 1
                                counters.object_reads += 1
                                admit(child, next_states)
                    else:
                        for child in obj.children():
                            counters.edge_traversals += 1
                            child_obj = store.get_optional(child)
                            if child_obj is None:
                                continue
                            next_states = self.step(states, child_obj.label)
                            if next_states:
                                admit(child, next_states)
            frontier = next_frontier
        return results

    def evaluate_with_paths(
        self, store: ObjectStore, start: str, *, max_depth: int = 64
    ) -> dict[str, list[tuple[str, ...]]]:
        """Like :meth:`evaluate` but also reports matching label paths.

        Used by tests to cross-check NFA evaluation against brute-force
        instance enumeration, and by the DAG maintainer to count
        derivations.  *max_depth* bounds exploration on cyclic graphs
        (each matched path is simple in states but may revisit objects).
        """
        results: dict[str, list[tuple[str, ...]]] = {}
        initial = self.initial()
        if self.is_accepting(initial):
            results.setdefault(start, []).append(())

        def _walk(oid: str, states: StateSet, labels: tuple[str, ...]) -> None:
            if len(labels) >= max_depth:
                return
            obj = store.get_optional(oid)
            if obj is None or not obj.is_set:
                return
            for child in sorted(obj.children()):
                store.counters.edge_traversals += 1
                child_obj = store.get_optional(child)
                if child_obj is None:
                    continue
                next_states = self.step(states, child_obj.label)
                if not next_states:
                    continue
                next_labels = labels + (child_obj.label,)
                if self.is_accepting(next_states):
                    paths = results.setdefault(child, [])
                    if next_labels not in paths:
                        paths.append(next_labels)
                _walk(child, next_states, next_labels)

        _walk(start, initial, ())
        return results


@lru_cache(maxsize=512)
def _compile_cached(expression: PathExpression) -> PathNFA:
    return PathNFA(expression)


def compile_expression(expression: PathExpression) -> PathNFA:
    """Compile (with caching — expressions are immutable and hashable)."""
    return _compile_cached(expression)


def evaluate_expression(
    store: ObjectStore, start: str, expression: PathExpression
) -> set[str]:
    """Convenience: ``start.expression`` on *store* (paper's ``N.e``)."""
    return compile_expression(expression).evaluate(store, start)
