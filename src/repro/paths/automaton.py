"""NFA compilation and graph evaluation of path expressions.

A path expression with segments ``s0 ... s(n-1)`` compiles to an NFA
whose states are positions ``0..n`` ("about to match segment i"), with:

* a ``LabelSegment``/``AnyLabelSegment`` at position i consuming one
  matching label and moving i → i+1;
* an ``AnyPathSegment`` (``*``) at position i adding an ε-move i → i+1
  (match zero labels) and a self-loop consuming any label.

State n is accepting.  The state space is tiny (|expression|+1), so we
run the NFA in subset form: a frozenset of positions.  Evaluating
``N.e`` on a store is then a product search over (object, state-set)
pairs; memoizing visited pairs makes it terminate on cyclic graphs.

The compiled automaton also exposes *residual* operations used by the
extended view maintainer (:mod:`repro.views.extended`): feed it a known
prefix path (``path(ROOT, N1) + label(N2)``) and continue matching only
in the affected subtree.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

from repro.gsdb.store import ObjectStore
from repro.paths.expression import (
    AnyPathSegment,
    PathExpression,
    Segment,
)

StateSet = frozenset[int]


class PathNFA:
    """Compiled form of a :class:`PathExpression`."""

    def __init__(self, expression: PathExpression) -> None:
        self.expression = expression
        self._segments: tuple[Segment, ...] = expression.segments
        self._accept = len(self._segments)

    # -- core NFA operations -----------------------------------------------------

    def initial(self) -> StateSet:
        """The ε-closure of the start state."""
        return self._closure({0})

    def _closure(self, states: Iterable[int]) -> StateSet:
        """ε-closure: skip over ``*`` segments without consuming."""
        result = set(states)
        stack = list(result)
        while stack:
            state = stack.pop()
            if state < self._accept and isinstance(
                self._segments[state], AnyPathSegment
            ):
                target = state + 1
                if target not in result:
                    result.add(target)
                    stack.append(target)
        return frozenset(result)

    def step(self, states: StateSet, label: str) -> StateSet:
        """Consume one *label* from every state in *states*."""
        moved: set[int] = set()
        for state in states:
            if state >= self._accept:
                continue
            segment = self._segments[state]
            if isinstance(segment, AnyPathSegment):
                moved.add(state)  # self-loop consumes the label
            elif segment.matches(label):
                moved.add(state + 1)
        return self._closure(moved)

    def is_accepting(self, states: StateSet) -> bool:
        return self._accept in states

    def is_dead(self, states: StateSet) -> bool:
        return not states

    def accepts(self, labels: Sequence[str]) -> bool:
        """Instance test: does the label sequence match the expression?"""
        states = self.initial()
        for label in labels:
            states = self.step(states, label)
            if not states:
                return False
        return self.is_accepting(states)

    def residual(self, labels: Sequence[str]) -> StateSet:
        """State set after consuming *labels* from the start."""
        states = self.initial()
        for label in labels:
            states = self.step(states, label)
            if not states:
                break
        return states

    # -- graph evaluation ---------------------------------------------------------

    def evaluate(
        self,
        store: ObjectStore,
        start: str,
        *,
        from_states: StateSet | None = None,
    ) -> set[str]:
        """Return ``start.e`` — every object reached along an instance.

        With *from_states*, evaluation continues an already-consumed
        prefix (the residual trick used for incremental maintenance of
        wildcard views).  The start object itself is included when the
        (residual) expression accepts the empty path.

        Cycle-safe: each (object, state-set) pair is expanded once.
        """
        initial = self.initial() if from_states is None else from_states
        if not initial:
            return set()
        results: set[str] = set()
        if self.is_accepting(initial):
            results.add(start)
        seen: set[tuple[str, StateSet]] = {(start, initial)}
        stack: list[tuple[str, StateSet]] = [(start, initial)]
        while stack:
            oid, states = stack.pop()
            obj = store.get_optional(oid)
            if obj is None or not obj.is_set:
                continue
            for child in obj.children():
                store.counters.edge_traversals += 1
                child_obj = store.get_optional(child)
                if child_obj is None:
                    continue
                next_states = self.step(states, child_obj.label)
                if not next_states:
                    continue
                if self.is_accepting(next_states):
                    results.add(child)
                key = (child, next_states)
                if key not in seen:
                    seen.add(key)
                    stack.append(key)
        return results

    def evaluate_with_paths(
        self, store: ObjectStore, start: str, *, max_depth: int = 64
    ) -> dict[str, list[tuple[str, ...]]]:
        """Like :meth:`evaluate` but also reports matching label paths.

        Used by tests to cross-check NFA evaluation against brute-force
        instance enumeration, and by the DAG maintainer to count
        derivations.  *max_depth* bounds exploration on cyclic graphs
        (each matched path is simple in states but may revisit objects).
        """
        results: dict[str, list[tuple[str, ...]]] = {}
        initial = self.initial()
        if self.is_accepting(initial):
            results.setdefault(start, []).append(())

        def _walk(oid: str, states: StateSet, labels: tuple[str, ...]) -> None:
            if len(labels) >= max_depth:
                return
            obj = store.get_optional(oid)
            if obj is None or not obj.is_set:
                return
            for child in sorted(obj.children()):
                store.counters.edge_traversals += 1
                child_obj = store.get_optional(child)
                if child_obj is None:
                    continue
                next_states = self.step(states, child_obj.label)
                if not next_states:
                    continue
                next_labels = labels + (child_obj.label,)
                if self.is_accepting(next_states):
                    paths = results.setdefault(child, [])
                    if next_labels not in paths:
                        paths.append(next_labels)
                _walk(child, next_states, next_labels)

        _walk(start, initial, ())
        return results


@lru_cache(maxsize=512)
def _compile_cached(expression: PathExpression) -> PathNFA:
    return PathNFA(expression)


def compile_expression(expression: PathExpression) -> PathNFA:
    """Compile (with caching — expressions are immutable and hashable)."""
    return _compile_cached(expression)


def evaluate_expression(
    store: ObjectStore, start: str, expression: PathExpression
) -> set[str]:
    """Convenience: ``start.expression`` on *store* (paper's ``N.e``)."""
    return compile_expression(expression).evaluate(store, start)
