"""Paths and path expressions (paper Section 2).

* :class:`~repro.paths.path.Path` — constant dotted-label paths.
* :class:`~repro.paths.expression.PathExpression` — regular expressions
  of paths with ``?`` and ``*`` wildcards (plus ``|`` alternation).
* :mod:`~repro.paths.automaton` — NFA compilation and ``N.e`` evaluation.
* :mod:`~repro.paths.containment` — instance/containment decision
  procedures needed by the Section 6 extended maintainers.
"""

from repro.paths.automaton import (
    PathNFA,
    compile_expression,
    evaluate_expression,
)
from repro.paths.containment import (
    are_equivalent,
    containment_counterexample,
    intersection_witness,
    is_contained,
    is_empty_intersection,
    shortest_instance,
)
from repro.paths.kernel import (
    evaluate_many_on_snapshot,
    evaluate_on_snapshot,
    reachable_on_snapshot,
    reaches_on_snapshot,
)
from repro.paths.expression import (
    AnyLabelSegment,
    AnyPathSegment,
    LabelSegment,
    PathExpression,
)
from repro.paths.path import EMPTY_PATH, Path

__all__ = [
    "AnyLabelSegment",
    "AnyPathSegment",
    "EMPTY_PATH",
    "LabelSegment",
    "Path",
    "PathExpression",
    "PathNFA",
    "are_equivalent",
    "compile_expression",
    "containment_counterexample",
    "evaluate_expression",
    "evaluate_many_on_snapshot",
    "evaluate_on_snapshot",
    "intersection_witness",
    "is_contained",
    "is_empty_intersection",
    "reachable_on_snapshot",
    "reaches_on_snapshot",
    "shortest_instance",
]
