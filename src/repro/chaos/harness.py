"""The end-to-end chaos harness (experiment E15).

One :class:`ChaosHarness` is one fully seeded run: a random labelled
tree at a source, a warehouse view over it (optionally cached), a
:class:`~repro.chaos.channel.FaultyChannel` between them, and a random
update workload.  Setup happens with the channel disarmed (so chaos
starts from a consistent steady state); the run then drives updates
through the faulty channel — per-update (:meth:`ChaosHarness.run`) or
through the coalescing batch path (:meth:`ChaosHarness.run_batches`) —
after which :meth:`ChaosHarness.settle` drains the channel and calls
:meth:`~repro.warehouse.warehouse.Warehouse.heal` to a fixed point, and
the quiescence oracle audits every view against source truth.

Everything — tree, workload, and fault schedule — derives from one
seed, so a failing run replays exactly and hypothesis can shrink over
it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.channel import ChannelStats, FaultyChannel
from repro.chaos.faults import FaultRates, FaultSchedule
from repro.chaos.oracle import ViewAudit, check_quiescence
from repro.gsdb.updates import Delete, Insert, Modify, Update
from repro.instrumentation.counters import CostCounters
from repro.warehouse.caching import CachePolicy
from repro.warehouse.protocol import ReportingLevel
from repro.warehouse.source import Source
from repro.warehouse.warehouse import IngressStats, Warehouse
from repro.warehouse.wrapper import RetryPolicy
from repro.workloads.generators import random_labelled_tree
from repro.workloads.updates import UpdateStream

#: The property-suite view: same shape as the warehouse equivalence
#: tests, so chaos failures compare directly against fault-free runs.
DEFAULT_DEFINITION = "define mview V as: SELECT root0.a X WHERE X.b > 50"

#: Bail out of the heal loop after this many rounds — with injected
#: query timeouts a resync can fail repeatedly; the report then shows
#: ``settled=False`` instead of looping forever.
MAX_HEAL_ROUNDS = 10


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    seed: int
    steps: int
    level: int
    applied: int  # workload updates that reached the source store
    channel: ChannelStats
    ingress: IngressStats
    recovery: CostCounters  # counter delta across workload + settle
    released: int  # held messages flushed by drain
    heal_rounds: int
    view_resyncs: int
    settled: bool
    audits: dict[str, ViewAudit] = field(default_factory=dict)

    @property
    def quiescent(self) -> bool:
        """Did every view pass the byte-equality oracle?"""
        return self.settled and all(
            audit.consistent for audit in self.audits.values()
        )

    def recovery_actions(self) -> int:
        """Total recovery events: retries + dedups + replays + resyncs."""
        r = self.recovery
        return (
            r.query_retries
            + r.notifications_deduped
            + r.notifications_replayed
            + r.view_resyncs
        )

    def describe(self) -> str:
        verdict = "QUIESCENT" if self.quiescent else "DIVERGED"
        return (
            f"seed={self.seed} steps={self.steps} level={self.level}: "
            f"{verdict} — sent={self.channel.sent} "
            f"dropped={self.channel.dropped} "
            f"duplicated={self.channel.duplicated} "
            f"delayed={self.channel.delayed} "
            f"crashes={self.channel.crashes} "
            f"timeouts={self.channel.query_timeouts} | "
            f"retries={self.recovery.query_retries} "
            f"deduped={self.recovery.notifications_deduped} "
            f"replayed={self.recovery.notifications_replayed} "
            f"resyncs={self.recovery.view_resyncs} "
            f"staleness={self.ingress.max_lag}"
        )


class ChaosHarness:
    """One seeded source + warehouse + faulty channel + workload."""

    def __init__(
        self,
        *,
        seed: int = 0,
        nodes: int = 30,
        labels: tuple[str, ...] = ("a", "b", "c"),
        level: int | ReportingLevel = ReportingLevel.WITH_CONTENTS,
        rates: FaultRates | None = None,
        definition: str = DEFAULT_DEFINITION,
        cache_policy: CachePolicy = CachePolicy.NONE,
        retry: RetryPolicy | None = None,
        history_limit: int = 256,
        max_hold: int = 4,
        downtime: float = 2.0,
        shards: int | None = None,
    ) -> None:
        """*shards* > 1 runs the warehouse over an OID-hash-partitioned
        view store (see :class:`~repro.gsdb.sharding.ShardedStore`), so
        the quiescence oracle also guards sharded delegate placement —
        the CI ``sharded-stress`` job drives this."""
        self.seed = seed
        self.labels = labels
        self.level = ReportingLevel(level)
        self.rates = rates if rates is not None else FaultRates(
            drop=0.1, duplicate=0.1, reorder=0.1
        )
        self.store, self.root = random_labelled_tree(
            nodes=nodes, labels=labels, seed=seed
        )
        self.source = Source("S1", self.store, self.root)
        self.schedule = FaultSchedule(
            self.rates, seed=seed, max_hold=max_hold, downtime=downtime
        )
        self.channel = FaultyChannel(self.schedule)
        self.channel.armed = False  # setup runs fault-free
        self.warehouse = Warehouse(shards=shards)
        self.warehouse.connect(
            self.source,
            level=self.level,
            channel=self.channel,
            retry=retry if retry is not None else RetryPolicy(),
        )
        self.warehouse.monitors["S1"].history_limit = history_limit
        self.view = self.warehouse.define_view(
            definition, "S1", cache_policy=cache_policy
        )
        self.channel.armed = True
        self._fresh = 0
        self._batch_rng = random.Random(seed + 7)

    # -- workloads --------------------------------------------------------------

    def run(self, steps: int) -> ChaosReport:
        """Per-update workload: every source update ships one
        notification through the faulty channel; then settle + audit."""
        before = self.warehouse.counters.snapshot()
        stream = UpdateStream(
            self.store,
            seed=self.seed + 1,
            protected=frozenset({self.root}),
            labels_for_new=self.labels,
        )
        applied = stream.run(steps)
        return self._finish(steps, len(applied), before)

    def run_batches(self, batches: int, batch_size: int) -> ChaosReport:
        """Batch workload: updates flow through
        :meth:`~repro.warehouse.warehouse.Warehouse.process_batch`
        (screen → apply → coalesce → ship through the channel)."""
        before = self.warehouse.counters.snapshot()
        applied = 0
        for _ in range(batches):
            batch = self._generate_batch(batch_size)
            if not batch:
                break
            applied += len(
                self.warehouse.process_batch("S1", batch)
            )
        return self._finish(batches * batch_size, applied, before)

    def _generate_batch(self, size: int) -> list[Update]:
        """A valid not-yet-applied update batch against the current
        source state (with an overlay so intra-batch ops compose)."""
        store = self.store
        rng = self._batch_rng
        children_of: dict[str, set[str]] = {}

        def kids(oid: str) -> set[str]:
            if oid not in children_of:
                obj = store.peek(oid)
                children_of[oid] = (
                    set(obj.children())
                    if obj is not None and obj.is_set
                    else set()
                )
            return children_of[oid]

        values: dict[str, object] = {}

        def value_of(oid: str) -> object:
            if oid not in values:
                values[oid] = store.peek(oid).atomic_value()
            return values[oid]

        set_oids = [
            oid
            for oid in store.oids()
            if (obj := store.peek(oid)) is not None and obj.is_set
        ]
        atom_oids = [
            oid
            for oid in store.oids()
            if (obj := store.peek(oid)) is not None
            and obj.is_atomic
            and isinstance(obj.atomic_value(), int)
        ]
        updates: list[Update] = []
        for _ in range(size):
            kind = rng.choice(("insert", "delete", "modify"))
            if kind == "insert" and set_oids:
                parent = rng.choice(set_oids)
                self._fresh += 1
                child = f"chaos{self._fresh}"
                store.add_atomic(
                    child, rng.choice(self.labels), rng.randint(0, 100)
                )
                atom_oids.append(child)
                updates.append(Insert(parent, child))
                kids(parent).add(child)
            elif kind == "delete":
                edges = [
                    (parent, child)
                    for parent in set_oids
                    if parent != self.root
                    for child in sorted(kids(parent))
                ]
                if not edges:
                    continue
                parent, child = rng.choice(edges)
                updates.append(Delete(parent, child))
                kids(parent).discard(child)
            elif atom_oids:
                oid = rng.choice(atom_oids)
                new_value = rng.randint(0, 100)
                updates.append(Modify(oid, value_of(oid), new_value))
                values[oid] = new_value
        return updates

    # -- settling ---------------------------------------------------------------

    def settle(self) -> tuple[int, int, int, bool]:
        """Drain the channel, then heal to a fixed point.

        Returns ``(released, heal_rounds, view_resyncs, settled)``.
        """
        released = self.channel.drain()
        rounds = 0
        resyncs = 0
        settled = False
        while rounds < MAX_HEAL_ROUNDS:
            rounds += 1
            resyncs += self.warehouse.heal()
            if self._settled():
                settled = True
                break
        return released, rounds, resyncs, settled

    def _settled(self) -> bool:
        if not self.channel.idle:
            return False
        for source_id, ingress in self.warehouse.ingress.items():
            monitor = self.warehouse.monitors[source_id]
            if ingress.pending:
                return False
            if ingress.next_expected <= monitor.last_sequence:
                return False
        return not any(
            wview.needs_resync for wview in self.warehouse.views.values()
        )

    def _finish(
        self, steps: int, applied: int, before: CostCounters
    ) -> ChaosReport:
        released, rounds, resyncs, settled = self.settle()
        recovery = self.warehouse.counters.delta_since(before)
        report = ChaosReport(
            seed=self.seed,
            steps=steps,
            level=int(self.level),
            applied=applied,
            channel=self.channel.stats,
            ingress=self.warehouse.ingress["S1"].stats,
            recovery=recovery,
            released=released,
            heal_rounds=rounds,
            view_resyncs=resyncs,
            settled=settled,
        )
        report.audits = check_quiescence(self.warehouse)
        return report
