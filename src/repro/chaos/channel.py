"""The faulty transport between a source monitor and the warehouse.

:class:`FaultyChannel` sits on the two paths the warehouse protocol
uses (paper Figure 6):

* **notifications** (monitor → warehouse): :meth:`FaultyChannel.send`
  registers as the monitor's sink and forwards to the warehouse's
  ingress, applying one drawn :class:`~repro.chaos.faults.FaultEvent`
  per message — drop, duplicate, delay (reorder), or a source crash;
* **queries** (warehouse → source → warehouse):
  :meth:`FaultyChannel.attach_link` installs the channel as the link's
  ``fault_injector`` (answers may be lost *after* the source served the
  query) and as its ``clock`` (backoff waits advance simulated time, so
  crashed sources can come back while the link retries).

Everything is synchronous and deterministic: "time" is a float the
channel owns, advanced only by retry backoff and by :meth:`drain`.
Held messages are released after a *message count*, not a time, which
keeps reordering schedules independent of the retry policy in use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import QueryTimeoutError
from repro.chaos.faults import FaultKind
from repro.warehouse.monitor import Monitor
from repro.warehouse.protocol import SourceQuery, UpdateNotification
from repro.warehouse.source import Source
from repro.warehouse.wrapper import SourceLink


@dataclass
class ChannelStats:
    """What the channel did to the traffic that crossed it."""

    sent: int = 0  # notifications the monitor handed to the channel
    delivered: int = 0  # deliveries to the warehouse (incl. duplicates)
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    released: int = 0  # held messages that reached the warehouse late
    crashes: int = 0
    recoveries: int = 0
    query_timeouts: int = 0  # answers lost after the source served


class FaultyChannel:
    """A deterministic fault injector for one source's traffic.

    Args:
        schedule: anything with ``message_fault()`` / ``query_fault()``
            (:class:`~repro.chaos.faults.FaultSchedule` or
            :class:`~repro.chaos.faults.RecordedSchedule`).
    """

    def __init__(self, schedule) -> None:
        self.schedule = schedule
        self.monitor: Monitor | None = None
        self.sink: Callable[..., None] | None = None
        self.stats = ChannelStats()
        self.clock = 0.0
        #: while False the channel is a clean pipe (no fault draws) —
        #: harnesses disarm it during setup (view definition, cache
        #: seeding) so chaos starts from a consistent steady state.
        self.armed = True
        self._held: list[list] = []  # [sends-remaining, notification]
        self._down: list[tuple[Source, float]] = []  # (source, recover_at)

    # -- wiring (the Warehouse.connect duck-type contract) ---------------------

    def bind(self, monitor: Monitor, sink: Callable[..., None]) -> None:
        """Interpose on the monitor→warehouse path: the monitor ships
        into the channel, the channel forwards (or not) to *sink*."""
        self.monitor = monitor
        self.sink = sink
        monitor.register(self.send)

    def attach_link(self, link: SourceLink) -> None:
        """Interpose on the query path and drive the link's clock."""
        link.fault_injector = self.on_query
        link.clock = self.advance

    # -- notification path -----------------------------------------------------

    def send(self, notification: UpdateNotification) -> None:
        """Carry one notification, applying the next scheduled fault."""
        self.stats.sent += 1
        if not self.armed:
            self._deliver(notification)
            return
        self._tick_holds()
        event = self.schedule.message_fault()
        kind = event.kind
        if kind is FaultKind.DROP:
            self.stats.dropped += 1
            return
        if kind is FaultKind.DELAY:
            self.stats.delayed += 1
            self._held.append([event.hold, notification])
            return
        if kind is FaultKind.CRASH:
            # The update committed before the crash, so its notification
            # still gets out; only query service stops.
            self.stats.crashes += 1
            source = self.monitor.source if self.monitor is not None else None
            if source is not None and not source.crashed:
                source.crash()
                self._down.append((source, self.clock + event.downtime))
            self._deliver(notification)
            return
        if kind is FaultKind.DUPLICATE:
            self.stats.duplicated += 1
            self._deliver(notification)
        self._deliver(notification)

    def _deliver(self, notification: UpdateNotification, *, late: bool = False) -> None:
        self.stats.delivered += 1
        if self.sink is not None:
            self.sink(notification, late=late)

    def _tick_holds(self) -> None:
        """One send elapsed: age held messages, release the due ones."""
        due: list[UpdateNotification] = []
        remaining: list[list] = []
        for item in self._held:
            item[0] -= 1
            if item[0] <= 0:
                due.append(item[1])
            else:
                remaining.append(item)
        self._held = remaining
        for notification in due:
            self.stats.released += 1
            self._deliver(notification, late=True)

    # -- query path ------------------------------------------------------------

    def on_query(self, query: SourceQuery) -> None:
        """Link hook, called after every *served* query: may lose the
        answer (the timeout-then-late-reply race; the source-side work
        already happened and is charged)."""
        if not self.armed:
            return
        if self.schedule.query_fault():
            self.stats.query_timeouts += 1
            raise QueryTimeoutError(
                f"answer to {query.kind.value}({query.target!r}) lost in flight"
            )

    # -- simulated time ----------------------------------------------------------

    def advance(self, seconds: float) -> None:
        """Let *seconds* of simulated time pass (backoff waits route
        here), recovering any source whose downtime has elapsed."""
        self.clock += seconds
        still_down: list[tuple[Source, float]] = []
        for source, recover_at in self._down:
            if recover_at <= self.clock:
                source.recover()
                self.stats.recoveries += 1
            else:
                still_down.append((source, recover_at))
        self._down = still_down

    # -- quiescing ---------------------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when nothing is in flight: no held messages, no downed
        sources."""
        return not self._held and not self._down

    def drain(self) -> int:
        """Quiesce the channel: let enough time pass for every downed
        source to recover, then release every held message (late).
        Returns the number of messages released."""
        if self._down:
            horizon = max(recover_at for _, recover_at in self._down)
            self.advance(horizon - self.clock)
        held, self._held = self._held, []
        for _, notification in held:
            self.stats.released += 1
            self._deliver(notification, late=True)
        return len(held)
