"""Fault injection for the warehouse protocol (experiment E15).

The paper's Section 5 architecture assumes a reliable channel between
source monitors and the warehouse.  This package removes that
assumption so the recovery machinery in :mod:`repro.warehouse` can be
exercised and audited:

* :mod:`repro.chaos.faults` — deterministic, seeded fault schedules
  (drop / duplicate / reorder / delay / source crash / query timeout),
  recorded as they are drawn so any run can be replayed exactly.
* :mod:`repro.chaos.channel` — :class:`~repro.chaos.channel.FaultyChannel`,
  the transport wrapping the monitor→warehouse path and the
  query/answer exchange, with a simulated clock for time-based
  recovery.
* :mod:`repro.chaos.oracle` — the quiescence consistency oracle: after
  the channel drains, every materialized view must be byte-equal to a
  fresh recomputation against the current source truth.
* :mod:`repro.chaos.harness` — :class:`~repro.chaos.harness.ChaosHarness`,
  a seeded end-to-end run: random tree, random update workload, faulty
  channel, drain + heal, oracle audit, recovery-cost report.
"""

from repro.chaos.channel import ChannelStats, FaultyChannel
from repro.chaos.faults import (
    FaultEvent,
    FaultKind,
    FaultRates,
    FaultSchedule,
    RecordedSchedule,
)
from repro.chaos.harness import ChaosHarness, ChaosReport
from repro.chaos.oracle import (
    ViewAudit,
    assert_quiescent,
    audit_view,
    check_catalog,
    check_quiescence,
)

__all__ = [
    "ChannelStats",
    "ChaosHarness",
    "ChaosReport",
    "FaultEvent",
    "FaultKind",
    "FaultRates",
    "FaultSchedule",
    "FaultyChannel",
    "RecordedSchedule",
    "ViewAudit",
    "assert_quiescent",
    "audit_view",
    "check_catalog",
    "check_quiescence",
]
