"""The quiescence consistency oracle.

After the channel drains and :meth:`~repro.warehouse.warehouse.
Warehouse.heal` reaches a fixed point, every materialized view must be
indistinguishable from a fresh recomputation against the current source
truth — membership *and* delegate values.  The oracle renders both
sides to a canonical byte string (sorted ``oid=value`` lines) and
compares for byte equality, so any divergence — a missed eviction, a
stale delegate value, a phantom member — fails loudly and reports
exactly what differs.

Truth is always evaluated against the **source's own store** (or the
catalog's base store), never through the warehouse's remote shims or
caches: a corrupted auxiliary cache must not be allowed to corrupt the
reference it is audited against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuiescenceError
from repro.gsdb.object import Object
from repro.gsdb.store import ObjectStore
from repro.views.materialized import MaterializedView, SwizzleMode
from repro.views.recompute import compute_view_members


@dataclass(frozen=True)
class ViewAudit:
    """One view's oracle verdict."""

    name: str
    missing: tuple[str, ...]  # in truth, absent from the view
    extra: tuple[str, ...]  # in the view, absent from truth
    stale: tuple[str, ...]  # members whose delegate value differs
    expected: bytes  # canonical fresh-recomputation state
    actual: bytes  # canonical maintained state

    @property
    def consistent(self) -> bool:
        """Byte equality of maintained vs recomputed state."""
        return self.expected == self.actual

    def describe(self) -> str:
        if self.consistent:
            return f"{self.name}: consistent"
        parts = []
        if self.missing:
            parts.append(f"missing={sorted(self.missing)}")
        if self.extra:
            parts.append(f"extra={sorted(self.extra)}")
        if self.stale:
            parts.append(f"stale={sorted(self.stale)}")
        return f"{self.name}: INCONSISTENT ({', '.join(parts)})"


def _canonical(value: object) -> object:
    """Order-free canonical form: sets of OIDs become sorted tuples."""
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value))
    return value


def _fingerprint(pairs: list[tuple[str, object]]) -> bytes:
    return "\n".join(f"{oid}={value!r}" for oid, value in pairs).encode()


def _truth_value(
    view: MaterializedView,
    obj: Object,
    truth_members: set[str],
) -> object:
    """What *obj*'s delegate value should be, given the swizzle mode."""
    if not obj.is_set:
        return obj.atomic_value()
    children = set(obj.children())
    if view.swizzle is SwizzleMode.EAGER:
        children = {
            view.delegate_oid(child) if child in truth_members else child
            for child in children
        }
    return _canonical(children)


def audit_view(
    view: MaterializedView,
    truth_store: ObjectStore,
    *,
    registry=None,
) -> ViewAudit:
    """Compare one materialized view against fresh recomputation.

    *truth_store* must be the authoritative base (a source's own store,
    or a catalog's store) — reads go through its uncharged ``peek``
    where available so auditing does not distort cost measurements.
    """
    truth_members = compute_view_members(
        view.definition, truth_store, registry=registry
    )
    peek = getattr(truth_store, "peek", None) or truth_store.get_optional
    expected_pairs: list[tuple[str, object]] = []
    for oid in sorted(truth_members):
        obj = peek(oid)
        if obj is None:  # pragma: no cover - membership implies presence
            continue
        expected_pairs.append((oid, _truth_value(view, obj, truth_members)))
    view_members = view.members()
    actual_pairs: list[tuple[str, object]] = []
    stale: list[str] = []
    expected_by_oid = dict(expected_pairs)
    for oid in sorted(view_members):
        delegate = view.delegate(oid)
        if delegate is None:  # pragma: no cover - membership implies delegate
            actual_pairs.append((oid, None))
            continue
        value = _canonical(
            set(delegate.children()) if delegate.is_set
            else delegate.atomic_value()
        )
        actual_pairs.append((oid, value))
        if oid in expected_by_oid and expected_by_oid[oid] != value:
            stale.append(oid)
    return ViewAudit(
        name=view.definition.name,
        missing=tuple(sorted(truth_members - view_members)),
        extra=tuple(sorted(view_members - truth_members)),
        stale=tuple(stale),
        expected=_fingerprint(expected_pairs),
        actual=_fingerprint(actual_pairs),
    )


def check_quiescence(warehouse) -> dict[str, ViewAudit]:
    """Audit every warehouse view against its source's current truth."""
    audits: dict[str, ViewAudit] = {}
    for name, wview in warehouse.views.items():
        source = warehouse.monitors[wview.source_id].source
        audits[name] = audit_view(wview.view, source.store)
    return audits


def check_catalog(catalog) -> dict[str, ViewAudit]:
    """Audit every dispatcher-routed materialized view in a
    :class:`~repro.views.catalog.ViewCatalog` the same way."""
    return {
        name: audit_view(view, catalog.store, registry=catalog.registry)
        for name, view in catalog.materialized_views.items()
    }


@dataclass(frozen=True)
class ServingAudit:
    """One served query's oracle verdict (experiment E16)."""

    query: str
    stale: tuple[str, ...]  # served but absent from fresh truth
    missing: tuple[str, ...]  # in fresh truth, absent from the answer
    expected: bytes  # canonical fresh, uncached evaluation
    actual: bytes  # canonical served (possibly cached) answer

    @property
    def consistent(self) -> bool:
        """Byte equality of served vs freshly evaluated answer."""
        return self.expected == self.actual

    def describe(self) -> str:
        if self.consistent:
            return f"{self.query}: consistent"
        parts = []
        if self.stale:
            parts.append(f"stale={sorted(self.stale)}")
        if self.missing:
            parts.append(f"missing={sorted(self.missing)}")
        return f"{self.query}: INCONSISTENT ({', '.join(parts)})"


def _answer_fingerprint(store, oids: set[str]) -> bytes:
    """Canonical bytes of an answer: sorted members with their values."""
    peek = getattr(store, "peek", None) or store.get_optional
    pairs: list[tuple[str, object]] = []
    for oid in sorted(oids):
        obj = peek(oid)
        value = None if obj is None else _canonical(
            set(obj.children()) if obj.is_set else obj.atomic_value()
        )
        pairs.append((oid, value))
    return _fingerprint(pairs)


def audit_serving(server, queries) -> list[ServingAudit]:
    """Compare served answers against fresh uncached evaluation.

    For each query, the server's (possibly cached) answer is rendered
    to canonical bytes next to a fresh :class:`~repro.query.evaluator.
    QueryEvaluator` run over the same registry — a stale cached read,
    a missed invalidation, or a frontier/classic divergence all break
    byte equality and report exactly which members differ.
    """
    from repro.query.evaluator import QueryEvaluator
    from repro.query.parser import parse_query

    reference = QueryEvaluator(server.registry)
    audits: list[ServingAudit] = []
    for text in queries:
        query = parse_query(text) if isinstance(text, str) else text
        actual_oids = server.evaluate_oids(query)
        expected_oids = reference.evaluate_oids(query)
        audits.append(
            ServingAudit(
                query=str(query),
                stale=tuple(sorted(actual_oids - expected_oids)),
                missing=tuple(sorted(expected_oids - actual_oids)),
                expected=_answer_fingerprint(server.store, expected_oids),
                actual=_answer_fingerprint(server.store, actual_oids),
            )
        )
    return audits


def assert_serving_consistent(server, queries) -> list[ServingAudit]:
    """Run the serving oracle; raise on any stale read."""
    audits = audit_serving(server, queries)
    broken = [audit for audit in audits if not audit.consistent]
    if broken:
        raise QuiescenceError(
            "; ".join(audit.describe() for audit in broken)
        )
    return audits


def assert_quiescent(target) -> dict[str, ViewAudit]:
    """Run the oracle and raise :class:`~repro.errors.QuiescenceError`
    when any view diverges.  *target* is a Warehouse or a ViewCatalog;
    returns the audits when all views pass."""
    if hasattr(target, "views"):
        audits = check_quiescence(target)
    else:
        audits = check_catalog(target)
    broken = [a for a in audits.values() if not a.consistent]
    if broken:
        raise QuiescenceError(
            "; ".join(audit.describe() for audit in broken)
        )
    return audits
