"""Deterministic fault schedules for the warehouse protocol.

A schedule answers two questions the :class:`~repro.chaos.channel.
FaultyChannel` asks: *what happens to this notification?* (``
message_fault``) and *is this query's answer lost?* (``query_fault``).
Draws come from one seeded RNG and every answer is appended to
:attr:`FaultSchedule.record`, so a run can be replayed exactly with
:class:`RecordedSchedule` — the property suite shrinks over seeds, the
regression suite scripts exact event sequences.

Message faults:

``DROP``       the notification vanishes; the warehouse sees a gap and
               must replay it from the monitor's history at heal time.
``DUPLICATE``  delivered twice; the warehouse's sequence-number dedup
               must drop the second copy.
``DELAY``      held back for ``hold`` subsequent sends, then released —
               the reordering fault (the warehouse parks newer
               notifications until the gap fills).
``CRASH``      the source crashes right after committing the update
               (mid-batch from the workload's point of view); the
               notification is still delivered, but every source query
               fails until ``downtime`` simulated seconds pass.
``DELIVER``    no fault.

Query faults are booleans: ``True`` means the answer was lost in flight
*after* the source served the query (the timeout-then-late-reply race —
the source did the work, the warehouse must retry).
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass
from typing import Iterable


class FaultKind(enum.Enum):
    """What happens to one monitor→warehouse message."""

    DELIVER = "deliver"
    DROP = "drop"
    DUPLICATE = "duplicate"
    DELAY = "delay"
    CRASH = "crash"


@dataclass(frozen=True)
class FaultEvent:
    """One drawn message fault.

    ``hold`` (DELAY) is how many subsequent sends pass before release;
    ``downtime`` (CRASH) is simulated seconds until the source recovers.
    """

    kind: FaultKind
    hold: int = 0
    downtime: float = 0.0


DELIVER = FaultEvent(FaultKind.DELIVER)


@dataclass(frozen=True)
class FaultRates:
    """Per-message (and per-query) fault probabilities.

    ``drop``/``duplicate``/``reorder``/``crash`` partition the message
    draw; their sum must stay ≤ 1 (the rest delivers cleanly).
    ``timeout`` is the independent per-query answer-loss probability.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    crash: float = 0.0
    timeout: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "crash", "timeout"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate {name}={rate} outside [0, 1]")
        if self.message_total() > 1.0:
            raise ValueError(
                f"message fault rates sum to {self.message_total()} > 1"
            )

    def message_total(self) -> float:
        return self.drop + self.duplicate + self.reorder + self.crash


class FaultSchedule:
    """Seeded fault draws, recorded for exact replay.

    Determinism: two schedules with equal *rates*, *seed*, *max_hold*
    and *downtime* answer identical query/message sequences with
    identical events — the property suite's shrinking and the CI's
    fixed-seed runs both rely on it.
    """

    def __init__(
        self,
        rates: FaultRates,
        seed: int = 0,
        *,
        max_hold: int = 4,
        downtime: float = 2.0,
    ) -> None:
        self.rates = rates
        self.seed = seed
        self.max_hold = max_hold
        self.downtime = downtime
        self._rng = random.Random(seed)
        #: every draw, in order: ``("message", FaultEvent)`` or
        #: ``("query", bool)`` — feed to :class:`RecordedSchedule`.
        self.record: list[tuple[str, object]] = []

    def message_fault(self) -> FaultEvent:
        """Draw the fate of one notification."""
        rates = self.rates
        draw = self._rng.random()
        if draw < rates.drop:
            event = FaultEvent(FaultKind.DROP)
        elif draw < rates.drop + rates.duplicate:
            event = FaultEvent(FaultKind.DUPLICATE)
        elif draw < rates.drop + rates.duplicate + rates.reorder:
            event = FaultEvent(
                FaultKind.DELAY, hold=self._rng.randint(1, self.max_hold)
            )
        elif draw < rates.message_total():
            event = FaultEvent(FaultKind.CRASH, downtime=self.downtime)
        else:
            event = DELIVER
        self.record.append(("message", event))
        return event

    def query_fault(self) -> bool:
        """Draw whether one query's answer is lost in flight."""
        lost = self._rng.random() < self.rates.timeout
        self.record.append(("query", lost))
        return lost


class RecordedSchedule:
    """Replays a recorded (or hand-scripted) fault sequence.

    Message and query events are kept in separate queues so a replay
    does not depend on the exact interleaving of draws; once a queue is
    exhausted the schedule behaves fault-free.
    """

    def __init__(self, record: Iterable[tuple[str, object]] = ()) -> None:
        self._messages: deque[FaultEvent] = deque()
        self._queries: deque[bool] = deque()
        for tag, event in record:
            if tag == "message":
                self._messages.append(event)  # type: ignore[arg-type]
            elif tag == "query":
                self._queries.append(bool(event))
            else:
                raise ValueError(f"unknown fault record tag {tag!r}")
        self.record: list[tuple[str, object]] = []

    @classmethod
    def scripted(
        cls,
        messages: Iterable[FaultEvent] = (),
        queries: Iterable[bool] = (),
    ) -> "RecordedSchedule":
        """Build a schedule from explicit per-message / per-query lists."""
        schedule = cls()
        schedule._messages = deque(messages)
        schedule._queries = deque(queries)
        return schedule

    def message_fault(self) -> FaultEvent:
        event = self._messages.popleft() if self._messages else DELIVER
        self.record.append(("message", event))
        return event

    def query_fault(self) -> bool:
        lost = bool(self._queries.popleft()) if self._queries else False
        self.record.append(("query", lost))
        return lost
