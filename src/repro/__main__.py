"""``python -m repro`` — the interactive GSDB shell."""

from repro.cli import main

raise SystemExit(main())
