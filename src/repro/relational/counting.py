"""Counting-based incremental maintenance of SPJ views [GMS93-style].

A :class:`CountingView` materializes a conjunctive query with per-tuple
derivation counts.  For each single-row delta ±Δ to a base table, the
view delta is the classic rule

    ΔV = Σ_i  R1 ⋈ ... ⋈ Δ_i ⋈ ... ⋈ Rn      (atom i pinned to Δ)

summed over the atoms referencing the changed table.  A tuple leaves
the materialization when its count reaches zero — this is exactly the
mechanism the paper's Section 4.4 discussion presumes when it considers
"directly using the relational algorithms on graph data".

Correctness note on self-joins: the rule above, evaluated against the
*post-update* database, is exact when no single derivation uses the
delta row at two different atom positions.  For our flattened GSDB
queries that would require a path to traverse the same edge twice —
impossible on the acyclic bases the paper's views assume — so each
single-row delta needs exactly one pinned evaluation per occurrence.

The *invocation count* (one per single-table delta per view) is the
headline metric of experiment E4: the paper points out that one logical
GSDB update (insert an atomic object) explodes into several table
deltas, each triggering the relational algorithm, "and could lead to
inconsistencies while only some of the updates are reflected".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.engine import (
    ConjunctiveQuery,
    evaluate,
    evaluate_delta,
)
from repro.relational.table import Database, Row


@dataclass
class DeltaOutcome:
    """What one delta application did to the view."""

    inserted: set[tuple] = field(default_factory=set)
    deleted: set[tuple] = field(default_factory=set)
    count_changes: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.inserted or self.deleted or self.count_changes)


class CountingView:
    """A materialized conjunctive query with derivation counting."""

    def __init__(self, name: str, query: ConjunctiveQuery, db: Database) -> None:
        self.name = name
        self.query = query
        self.db = db
        self.counts: dict[tuple, int] = {}
        self.invocations = 0

    def initialize(self) -> None:
        """Full evaluation (used once, and by consistency checks)."""
        self.counts = {
            head: count
            for head, count in evaluate(self.query, self.db).items()
            if count
        }

    # -- access ------------------------------------------------------------

    def support(self) -> set[tuple]:
        """Tuples currently in the view (count > 0)."""
        return {head for head, count in self.counts.items() if count > 0}

    def count(self, head: tuple) -> int:
        return self.counts.get(head, 0)

    def __len__(self) -> int:
        return len(self.support())

    # -- maintenance ----------------------------------------------------------

    def apply_delta(self, table: str, row: Row, count: int) -> DeltaOutcome:
        """Propagate one single-table delta (already applied to *table*).

        Args:
            table: name of the changed table.
            row: the inserted/deleted row.
            count: +k for insertion, -k for deletion.
        """
        self.invocations += 1
        outcome = DeltaOutcome()
        positions = self.query.atoms_over(table)
        if not positions:
            return outcome
        delta: dict[tuple, int] = {}
        for position in positions:
            partial = evaluate_delta(self.query, self.db, position, row, count)
            for head, c in partial.items():
                delta[head] = delta.get(head, 0) + c
        for head, c in delta.items():
            if not c:
                continue
            old = self.counts.get(head, 0)
            new = old + c
            outcome.count_changes += 1
            if new == 0:
                self.counts.pop(head, None)
                if old > 0:
                    outcome.deleted.add(head)
            else:
                self.counts[head] = new
                if old == 0 and new > 0:
                    outcome.inserted.add(head)
                elif old > 0 and new <= 0:  # pragma: no cover - defensive
                    outcome.deleted.add(head)
        return outcome

    def check_against_full_evaluation(self) -> bool:
        """True when maintained counts equal a fresh evaluation."""
        fresh = {
            head: count
            for head, count in evaluate(self.query, self.db).items()
            if count
        }
        return fresh == self.counts
