"""Flattening a GSDB into three relations (paper Example 8).

The paper's relational representation:

* ``OBJ(oid, label)`` — OIDs and labels of all objects;
* ``CHILD(parent, child)`` — set-object membership edges;
* ``ATOM(oid, type, value)`` — atomic objects and their values (the
  VALUE attribute "can hold different data types (it is a union type)"
  — Python is obliging).

A :class:`Flattener` builds the tables from a store and translates each
GSDB-level event into *single-table deltas*.  The unit-of-work mismatch
the paper criticizes is visible right here: creating an atomic object
and hanging it under a parent — one conceptual operation — becomes
three single-table deltas (``+OBJ``, ``+ATOM``, ``+CHILD``), each of
which separately invokes the relational maintenance algorithm, "and
could lead to inconsistencies while only some of the updates are
reflected on the materialized view".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.gsdb.object import Object
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Delete, Insert, Modify, Update
from repro.relational.table import Database, Row, Table

OBJ = "OBJ"
CHILD = "CHILD"
ATOM = "ATOM"


@dataclass(frozen=True, slots=True)
class TableDelta:
    """One single-table change: ``(table, row, ±count)``."""

    table: str
    row: Row
    count: int

    def __str__(self) -> str:
        sign = "+" if self.count > 0 else "-"
        return f"{sign}{self.table}{self.row}"


def create_schema(db: Database) -> tuple[Table, Table, Table]:
    """Create the three tables of Example 8 in *db*."""
    obj = db.create_table(OBJ, ("oid", "label"))
    child = db.create_table(CHILD, ("parent", "child"))
    atom = db.create_table(ATOM, ("oid", "type", "value"))
    return obj, child, atom


class Flattener:
    """Maintains the three-table image of an object store.

    Construct it, then either call :meth:`load` for a one-shot snapshot
    or :meth:`attach` to mirror the store continuously.  GSDB updates
    stream out of :meth:`deltas_for` as single-table deltas; callers
    (see :mod:`repro.relational.maintenance`) decide what to do with
    them — typically apply each to the tables and to every registered
    :class:`~repro.relational.counting.CountingView`.
    """

    def __init__(self, store: ObjectStore, db: Database | None = None) -> None:
        self.store = store
        self.db = db if db is not None else Database()
        self._ignored: set[str] = set()
        self._ignored_prefixes: list[str] = []
        if OBJ not in self.db:
            create_schema(self.db)

    # -- exclusions ---------------------------------------------------------

    def ignore_oid(self, oid: str) -> None:
        """Exclude one object (e.g. a view object) from the image."""
        self._ignored.add(oid)

    def ignore_prefix(self, prefix: str) -> None:
        """Exclude all OIDs with *prefix* (a view's delegates)."""
        self._ignored_prefixes.append(prefix)

    def ignore_view(self, view_oid: str) -> None:
        """Exclude a materialized view object and its delegates.

        View-internal objects mutate outside the basic-update protocol
        (delegate values are rewritten in place), so mirroring them
        would desynchronize; they are not base data anyway.
        """
        self.ignore_oid(view_oid)
        self.ignore_prefix(view_oid + ".")

    def is_ignored(self, oid: str) -> bool:
        return oid in self._ignored or any(
            oid.startswith(prefix) for prefix in self._ignored_prefixes
        )

    # -- snapshot --------------------------------------------------------------

    def load(self) -> int:
        """Populate the tables from the store's current contents."""
        loaded = 0
        for obj in self.store.scan():
            if self.is_ignored(obj.oid):
                continue
            for delta in self.creation_deltas(obj):
                self.apply_delta(delta)
            loaded += 1
        return loaded

    # -- delta translation --------------------------------------------------------

    def creation_deltas(self, obj: Object) -> Iterator[TableDelta]:
        """Deltas for a newly created object (rows for OBJ/ATOM/CHILD)."""
        yield TableDelta(OBJ, (obj.oid, obj.label), +1)
        if obj.is_set:
            for child in obj.sorted_children():
                yield TableDelta(CHILD, (obj.oid, child), +1)
        else:
            yield TableDelta(ATOM, (obj.oid, obj.type, obj.value), +1)

    def removal_deltas(self, obj: Object) -> Iterator[TableDelta]:
        """Deltas for garbage-collecting an object."""
        yield TableDelta(OBJ, (obj.oid, obj.label), -1)
        if obj.is_set:
            for child in obj.sorted_children():
                yield TableDelta(CHILD, (obj.oid, child), -1)
        else:
            yield TableDelta(ATOM, (obj.oid, obj.type, obj.value), -1)

    def deltas_for(self, update: Update) -> list[TableDelta]:
        """Single-table deltas for one basic GSDB update.

        ``modify`` is two ATOM deltas (delete old row, insert new); the
        object's type tag is read from the store (already updated).
        Updates touching ignored (view-internal) objects yield nothing.
        """
        for oid in update.directly_affected:
            if self.is_ignored(oid):
                return []
        if isinstance(update, Insert):
            return [TableDelta(CHILD, (update.parent, update.child), +1)]
        if isinstance(update, Delete):
            return [TableDelta(CHILD, (update.parent, update.child), -1)]
        if isinstance(update, Modify):
            obj = self.store.get(update.oid)
            return [
                TableDelta(ATOM, (update.oid, obj.type, update.old_value), -1),
                TableDelta(ATOM, (update.oid, obj.type, update.new_value), +1),
            ]
        raise TypeError(f"unknown update: {update!r}")

    # -- application ------------------------------------------------------------------

    def apply_delta(self, delta: TableDelta) -> None:
        """Apply one delta to the table image."""
        self.db.table(delta.table).insert(delta.row, delta.count)

    def verify_against_store(self) -> bool:
        """True when the tables exactly mirror the store (for tests)."""
        expected = Database()
        fresh = Flattener(self.store, expected)
        fresh._ignored = set(self._ignored)
        fresh._ignored_prefixes = list(self._ignored_prefixes)
        fresh.load()
        for name in (OBJ, CHILD, ATOM):
            if expected.table(name).snapshot() != self.db.table(name).snapshot():
                return False
        return True
