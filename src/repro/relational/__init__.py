"""Relational substrate — the Section 4.4 / Example 8 baseline.

Flattens a GSDB into ``OBJ``/``CHILD``/``ATOM`` tables, compiles simple
views into self-join SPJ queries, and maintains them with a counting
incremental algorithm, so the native Algorithm 1 can be compared
against "directly using the relational algorithms on graph data".
"""

from repro.relational.counting import CountingView, DeltaOutcome
from repro.relational.engine import (
    Atom,
    ConjunctiveQuery,
    Filter,
    Var,
    evaluate,
    evaluate_delta,
)
from repro.relational.flatten import (
    ATOM,
    CHILD,
    OBJ,
    Flattener,
    TableDelta,
    create_schema,
)
from repro.relational.maintenance import MirrorStats, RelationalMirror
from repro.relational.table import Database, Table
from repro.relational.views import compile_simple_view, join_count

__all__ = [
    "ATOM",
    "Atom",
    "CHILD",
    "ConjunctiveQuery",
    "CountingView",
    "Database",
    "DeltaOutcome",
    "Filter",
    "Flattener",
    "MirrorStats",
    "OBJ",
    "RelationalMirror",
    "Table",
    "TableDelta",
    "Var",
    "compile_simple_view",
    "create_schema",
    "evaluate",
    "evaluate_delta",
    "join_count",
]
