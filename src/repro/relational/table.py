"""Multiset (bag) tables with per-column hash indexes.

The relational substrate exists to reproduce the paper's Section 4.4
comparison: represent the GSDB in three flat tables (Example 8) and
maintain path views with a relational counting algorithm [GMS93].
Counting IVM requires bag semantics, so rows carry multiplicities.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchemaError

Row = tuple


class Table:
    """A named bag of fixed-arity rows with hash indexes on columns.

    Args:
        name: table name.
        columns: column names (arity is enforced on every mutation).
        counters: optional shared cost counters; rows read through the
            index charge ``index_probes``, full scans charge
            ``object_scans`` (one per row visited) so experiments can
            compare relational and native costs in the same units.
    """

    def __init__(
        self,
        name: str,
        columns: Iterable[str],
        *,
        counters: "CostCounters | None" = None,
    ) -> None:
        from repro.instrumentation.counters import CostCounters

        self.name = name
        self.columns = tuple(columns)
        if not self.columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        self.counters = counters if counters is not None else CostCounters()
        self._rows: dict[Row, int] = {}
        self._indexes: dict[int, dict[object, set[Row]]] = {}

    # -- schema helpers ------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.columns)

    def column_position(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise SchemaError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def _check(self, row: Row) -> Row:
        row = tuple(row)
        if len(row) != self.arity:
            raise SchemaError(
                f"table {self.name!r} expects {self.arity} columns, "
                f"row has {len(row)}"
            )
        return row

    # -- mutation ---------------------------------------------------------------

    def insert(self, row: Row, count: int = 1) -> None:
        """Add *count* copies of *row* (count may be negative to remove)."""
        row = self._check(row)
        if count == 0:
            return
        new = self._rows.get(row, 0) + count
        if new < 0:
            raise SchemaError(
                f"table {self.name!r}: multiplicity of {row!r} would become "
                f"{new}"
            )
        if new == 0:
            del self._rows[row]
            self._unindex(row)
        else:
            if row not in self._rows:
                self._index(row)
            self._rows[row] = new
        self.counters.object_writes += 1

    def delete(self, row: Row, count: int = 1) -> None:
        """Remove *count* copies of *row*."""
        self.insert(row, -count)

    # -- indexing -----------------------------------------------------------------

    def ensure_index(self, position: int) -> None:
        """Build (idempotently) a hash index on column *position*."""
        if position in self._indexes:
            return
        index: dict[object, set[Row]] = {}
        for row in self._rows:
            index.setdefault(row[position], set()).add(row)
        self._indexes[position] = index

    def _index(self, row: Row) -> None:
        for position, index in self._indexes.items():
            index.setdefault(row[position], set()).add(row)

    def _unindex(self, row: Row) -> None:
        for position, index in self._indexes.items():
            bucket = index.get(row[position])
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[row[position]]

    # -- access --------------------------------------------------------------------

    def count(self, row: Row) -> int:
        """Multiplicity of *row* (0 when absent)."""
        return self._rows.get(tuple(row), 0)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._rows

    def __len__(self) -> int:
        """Number of distinct rows."""
        return len(self._rows)

    def total_count(self) -> int:
        """Total multiplicity across all rows."""
        return sum(self._rows.values())

    def rows(self) -> Iterator[tuple[Row, int]]:
        """Iterate (row, count) pairs in sorted order, charging a scan."""
        for row in sorted(self._rows, key=repr):
            self.counters.object_scans += 1
            yield row, self._rows[row]

    def rows_with(self, position: int, value: object) -> list[tuple[Row, int]]:
        """Rows whose column *position* equals *value*, via the index."""
        self.ensure_index(position)
        self.counters.index_probes += 1
        bucket = self._indexes[position].get(value, ())
        return [(row, self._rows[row]) for row in sorted(bucket, key=repr)]

    def snapshot(self) -> dict[Row, int]:
        """A copy of the bag (for tests)."""
        return dict(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={self.columns}, rows={len(self)})"


class Database:
    """A named collection of tables sharing one counters instance."""

    def __init__(self, counters: "CostCounters | None" = None) -> None:
        from repro.instrumentation.counters import CostCounters

        self.counters = counters if counters is not None else CostCounters()
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, columns: Iterable[str]) -> Table:
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, columns, counters=self.counters)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> list[str]:
        return sorted(self._tables)
