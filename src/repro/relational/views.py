"""Compiling simple GSDB views into relational SPJ queries.

The simple view

    define mview MV as: SELECT ROOT.l1.l2...lk X WHERE cond(X.c1...cm)

flattens (paper Section 4.4) into the conjunctive query::

    V(x_k) :- CHILD(ROOT, x_1), OBJ(x_1, l1),
              CHILD(x_1, x_2),  OBJ(x_2, l2),
              ...,
              CHILD(x_{k-1}, x_k), OBJ(x_k, lk),
              CHILD(x_k, y_1), OBJ(y_1, c1),
              ...,
              CHILD(y_{m-1}, y_m), OBJ(y_m, cm),
              ATOM(y_m, t, v),  v θ literal

— ``2(k+m)+1`` atoms, i.e. ``k+m`` self-joins of CHILD with OBJ lookups,
plus the ATOM selection.  The "path semantics are hidden in the
relations", which is exactly the point the paper makes about why this
representation is awkward; experiment E4 quantifies it.

Views without a WHERE clause stop at ``OBJ(x_k, lk)``.  Note the head
projects the *selected object's OID* with bag semantics; the GSDB view
is the support (distinct OIDs).
"""

from __future__ import annotations

from repro.errors import ViewDefinitionError
from repro.query.ast import Comparison
from repro.relational.engine import Atom, ConjunctiveQuery, Filter, Var
from repro.relational.flatten import ATOM, CHILD, OBJ
from repro.views.definition import ViewDefinition


def compile_simple_view(definition: ViewDefinition) -> ConjunctiveQuery:
    """Compile a simple view definition into a conjunctive query.

    Raises:
        ViewDefinitionError: for non-simple definitions (the relational
            baseline exists to mirror exactly the Algorithm 1 class).
    """
    definition.require_simple()
    root = definition.entry
    sel_labels = list(definition.sel_path().labels)
    cond_labels = list(definition.cond_path().labels)
    if not sel_labels:
        raise ViewDefinitionError(
            f"view {definition.name!r}: relational compilation requires a "
            "non-empty select path (the head variable must be bound by a "
            "CHILD atom)"
        )

    atoms: list[Atom] = []
    previous: object = root  # constant ROOT, then variables
    select_vars = [Var(f"x{i + 1}") for i in range(len(sel_labels))]
    for var, label in zip(select_vars, sel_labels):
        atoms.append(Atom(CHILD, (previous, var)))
        atoms.append(Atom(OBJ, (var, label)))
        previous = var
    head_var = select_vars[-1]

    filters: list[Filter] = []
    condition = definition.condition
    if condition is not None:
        assert isinstance(condition, Comparison)  # require_simple ensures
        cond_vars = [Var(f"y{j + 1}") for j in range(len(cond_labels))]
        for var, label in zip(cond_vars, cond_labels):
            atoms.append(Atom(CHILD, (previous, var)))
            atoms.append(Atom(OBJ, (var, label)))
            previous = var
        value_var = Var("v")
        type_var = Var("t")
        atoms.append(Atom(ATOM, (previous, type_var, value_var)))
        filters.append(
            Filter(
                var=value_var,
                predicate=condition.predicate(),
                description=f"{condition.op} {condition.literal!r}",
            )
        )

    return ConjunctiveQuery(
        head=(head_var,), atoms=tuple(atoms), filters=tuple(filters)
    )


def join_count(definition: ViewDefinition) -> int:
    """Number of joins in the compiled SPJ (reported by experiment E4)."""
    query = compile_simple_view(definition)
    return len(query.atoms) - 1
