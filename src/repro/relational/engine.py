"""A small conjunctive-query (select-project-join) engine.

Path views flattened to relations become SPJ queries with long self-join
chains over the ``CHILD`` table (paper Section 4.4: "a view defined
using paths ... needs to be defined by a Select-Project-Join expression
with (many) self-joins").  This module evaluates such queries with bag
semantics and — crucially for counting IVM — evaluates *delta* queries
where one atom is pinned to a changed row.

A query is a conjunction of :class:`Atom` s over variables/constants,
a list of value filters, and a head (projection) variable list::

    V(x1) :- CHILD('ROOT', x1), OBJ(x1, 'professor'),
             CHILD(x1, y1), OBJ(y1, 'age'),
             ATOM(y1, t, v), v <= 45

Evaluation is an index-backed nested-loop join: atoms are processed in
order; each atom either probes a column index (when some argument is
already bound or constant) or scans.  Multiplicities multiply along a
join path and accumulate per head tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import RelationalError
from repro.relational.table import Database, Row, Table


@dataclass(frozen=True, slots=True)
class Var:
    """A query variable (anything that is not a Var is a constant)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = object  # Var or a constant value


@dataclass(frozen=True)
class Atom:
    """One positive literal: ``table(terms...)``."""

    table: str
    terms: tuple[Term, ...]

    def __str__(self) -> str:
        inner = ", ".join(
            repr(t) if not isinstance(t, Var) else f"?{t.name}"
            for t in self.terms
        )
        return f"{self.table}({inner})"


@dataclass(frozen=True)
class Filter:
    """A selection predicate on one variable's bound value."""

    var: Var
    predicate: Callable[[object], bool]
    description: str = "<predicate>"

    def __str__(self) -> str:
        return f"?{self.var.name} satisfies {self.description}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``head :- atoms, filters`` with bag semantics."""

    head: tuple[Var, ...]
    atoms: tuple[Atom, ...]
    filters: tuple[Filter, ...] = ()

    def __str__(self) -> str:
        head = ", ".join(f"?{v.name}" for v in self.head)
        body = ", ".join(str(a) for a in self.atoms)
        if self.filters:
            body += ", " + ", ".join(str(f) for f in self.filters)
        return f"({head}) :- {body}"

    def atoms_over(self, table: str) -> list[int]:
        """Positions of atoms referencing *table* (for delta rules)."""
        return [i for i, atom in enumerate(self.atoms) if atom.table == table]


Bindings = dict[str, object]


def _match_row(
    atom: Atom, row: Row, bindings: Bindings
) -> Bindings | None:
    """Try to unify *row* with *atom* under *bindings*; None on clash."""
    new = dict(bindings)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Var):
            bound = new.get(term.name, _UNSET)
            if bound is _UNSET:
                new[term.name] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return new


class _Unset:
    __slots__ = ()


_UNSET = _Unset()


def _candidate_rows(
    table: Table, atom: Atom, bindings: Bindings
) -> Iterator[tuple[Row, int]]:
    """Rows of *table* possibly matching *atom*: prefer an index probe on
    the first bound/constant argument, else scan."""
    for position, term in enumerate(atom.terms):
        if isinstance(term, Var):
            value = bindings.get(term.name, _UNSET)
            if value is not _UNSET:
                yield from table.rows_with(position, value)
                return
        else:
            yield from table.rows_with(position, term)
            return
    yield from table.rows()


def _passes_filters(
    query: ConjunctiveQuery, bindings: Bindings, *, final: bool
) -> bool:
    """Apply every filter whose variable is bound (all must be, at the
    end)."""
    for f in query.filters:
        value = bindings.get(f.var.name, _UNSET)
        if value is _UNSET:
            if final:
                raise RelationalError(
                    f"filter variable ?{f.var.name} never bound in {query}"
                )
            continue
        if not f.predicate(value):
            return False
    return True


def evaluate(
    query: ConjunctiveQuery, db: Database
) -> dict[tuple, int]:
    """Evaluate with bag semantics: head tuple → multiplicity."""
    return _evaluate_from(query, db, 0, {}, 1, skip_atom=None)


def evaluate_delta(
    query: ConjunctiveQuery,
    db: Database,
    atom_index: int,
    row: Row,
    count: int,
) -> dict[tuple, int]:
    """The counting-IVM delta rule: pin atom *atom_index* to *row* (with
    multiplicity *count*) and join the remaining atoms against the
    current database state.

    The classic rule ΔV = R1 ⋈ ... ⋈ ΔRi ⋈ ... ⋈ Rn, evaluated with
    the delta first for index-driven efficiency.
    """
    atom = query.atoms[atom_index]
    bindings = _match_row(atom, row, {})
    if bindings is None:
        return {}
    if not _passes_filters(query, bindings, final=False):
        return {}
    return _evaluate_from(
        query, db, 0, bindings, count, skip_atom=atom_index
    )


def _evaluate_from(
    query: ConjunctiveQuery,
    db: Database,
    atom_index: int,
    bindings: Bindings,
    multiplicity: int,
    *,
    skip_atom: int | None,
) -> dict[tuple, int]:
    while atom_index == skip_atom:
        atom_index += 1
    if atom_index >= len(query.atoms):
        if not _passes_filters(query, bindings, final=True):
            return {}
        head = tuple(bindings[v.name] for v in query.head)
        return {head: multiplicity}
    atom = query.atoms[atom_index]
    table = db.table(atom.table)
    results: dict[tuple, int] = {}
    for row, count in _candidate_rows(table, atom, bindings):
        new_bindings = _match_row(atom, row, bindings)
        if new_bindings is None:
            continue
        if not _passes_filters(query, new_bindings, final=False):
            continue
        partial = _evaluate_from(
            query,
            db,
            atom_index + 1,
            new_bindings,
            multiplicity * count,
            skip_atom=skip_atom,
        )
        for head, c in partial.items():
            results[head] = results.get(head, 0) + c
    return results
