"""The relational mirror: GSDB updates driving relational IVM.

:class:`RelationalMirror` is the full Section 4.4 baseline pipeline:

    GSDB store ──updates──▶ Flattener ──single-table deltas──▶ tables
                                        └──▶ CountingView(s)  (one IVM
                                             invocation per delta per view)

Subscribe it to an :class:`~repro.gsdb.store.ObjectStore` and register
compiled views; it keeps the tables and every view's counts in sync and
records the metrics experiment E4 reports: deltas produced, IVM
invocations, and the transient *inconsistency windows* — moments where
only part of a multi-delta GSDB update has been propagated (the paper:
"it would be incorrect to have a tuple (A,B) in the PARENT-CHILD table
without having both A and B in the OID-LABEL table").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gsdb.object import Object
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Update
from repro.relational.counting import CountingView
from repro.relational.flatten import Flattener, TableDelta
from repro.relational.table import Database
from repro.relational.views import compile_simple_view
from repro.views.definition import ViewDefinition


@dataclass
class MirrorStats:
    """Cumulative accounting for experiment E4."""

    gsdb_updates: int = 0
    object_creations: int = 0
    table_deltas: int = 0
    ivm_invocations: int = 0
    view_tuple_changes: int = 0
    inconsistency_windows: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class RelationalMirror:
    """Keeps a relational image + counting views in sync with a store."""

    def __init__(self, store: ObjectStore, *, subscribe: bool = True) -> None:
        self.store = store
        self.db = Database()
        self.flattener = Flattener(store, self.db)
        self.flattener.load()
        self.views: dict[str, CountingView] = {}
        self.definitions: dict[str, ViewDefinition] = {}
        self.stats = MirrorStats()
        if subscribe:
            store.subscribe(self.on_update)
            store.subscribe_creations(self.on_creation)

    # -- view registration ------------------------------------------------------

    def register_view(self, definition: ViewDefinition) -> CountingView:
        """Compile a simple view and materialize it over the tables."""
        query = compile_simple_view(definition)
        view = CountingView(definition.name, query, self.db)
        view.initialize()
        self.views[definition.name] = view
        self.definitions[definition.name] = definition
        return view

    def members(self, name: str) -> set[str]:
        """The view's member OIDs (support of the counted relation)."""
        return {head[0] for head in self.views[name].support()}

    # -- event handlers -------------------------------------------------------------

    def ignore_view(self, view_oid: str) -> None:
        """Exclude a co-located materialized view's internal objects."""
        self.flattener.ignore_view(view_oid)

    def on_creation(self, obj: Object) -> None:
        """A new object appeared in the store: 1-or-more table deltas."""
        if self.flattener.is_ignored(obj.oid):
            return
        self.stats.object_creations += 1
        deltas = list(self.flattener.creation_deltas(obj))
        self._apply_deltas(deltas)

    def on_update(self, update: Update) -> None:
        """A basic GSDB update: translate and propagate."""
        self.stats.gsdb_updates += 1
        deltas = self.flattener.deltas_for(update)
        self._apply_deltas(deltas)

    def _apply_deltas(self, deltas: list[TableDelta]) -> None:
        # Every delta after the first leaves the image momentarily
        # inconsistent with object-level semantics until the batch ends.
        if len(deltas) > 1:
            self.stats.inconsistency_windows += len(deltas) - 1
        for delta in deltas:
            self.flattener.apply_delta(delta)
            self.stats.table_deltas += 1
            for view in self.views.values():
                outcome = view.apply_delta(delta.table, delta.row, delta.count)
                self.stats.ivm_invocations += 1
                self.stats.view_tuple_changes += outcome.count_changes

    # -- verification ------------------------------------------------------------------

    def verify(self) -> bool:
        """Tables mirror the store and every view matches re-evaluation."""
        if not self.flattener.verify_against_store():
            return False
        return all(
            view.check_against_full_evaluation()
            for view in self.views.values()
        )
