"""Object identifiers (OIDs) and semantic delegate OIDs.

The paper (Section 2) treats an OID as a universally unique identifier;
Section 3.2 introduces *semantic OIDs* for delegates in materialized
views: the delegate of base object ``P1`` in view ``MVJ`` has OID
``MVJ.P1``.  Because views can be defined over views, delegate OIDs nest
(``MV2.MVJ.P1``); splitting on the *first* separator recovers the view
OID and the (possibly itself composite) base OID.

OIDs in this library are plain strings, which keeps stores easy to
serialize and interoperable with source-assigned identifiers.  The
helpers in this module centralize the delegate-OID convention so that no
other module hard-codes the separator.
"""

from __future__ import annotations

import itertools
from typing import Iterator

#: Separator used to build delegate OIDs (paper Figure 3 uses ``MVJ.P1``).
DELEGATE_SEPARATOR = "."


def delegate_oid(view_oid: str, base_oid: str) -> str:
    """Return the semantic OID of *base_oid*'s delegate in *view_oid*.

    >>> delegate_oid("MVJ", "P1")
    'MVJ.P1'
    """
    return f"{view_oid}{DELEGATE_SEPARATOR}{base_oid}"


def split_delegate_oid(oid: str) -> tuple[str, str]:
    """Split a delegate OID into ``(view_oid, base_oid)``.

    Splitting happens at the first separator so views-of-views nest:

    >>> split_delegate_oid("MV2.MVJ.P1")
    ('MV2', 'MVJ.P1')

    Raises:
        ValueError: if *oid* contains no separator.
    """
    view, sep, base = oid.partition(DELEGATE_SEPARATOR)
    if not sep or not view or not base:
        raise ValueError(f"not a delegate OID: {oid!r}")
    return view, base


def is_delegate_of(oid: str, view_oid: str) -> bool:
    """Return True if *oid* is a delegate OID belonging to *view_oid*."""
    prefix = view_oid + DELEGATE_SEPARATOR
    return oid.startswith(prefix) and len(oid) > len(prefix)


def base_of_delegate(oid: str, view_oid: str) -> str:
    """Return the base OID encoded in delegate *oid* of *view_oid*.

    Raises:
        ValueError: if *oid* is not a delegate of *view_oid*.
    """
    if not is_delegate_of(oid, view_oid):
        raise ValueError(f"{oid!r} is not a delegate OID of view {view_oid!r}")
    return oid[len(view_oid) + len(DELEGATE_SEPARATOR):]


class OidGenerator:
    """Deterministic generator of fresh OIDs with a common prefix.

    The paper assumes OIDs can be arbitrary; workload generators and
    query answers need fresh identifiers that are reproducible across
    runs, so we use a simple counter rather than UUIDs.

    >>> gen = OidGenerator("ans")
    >>> gen.fresh(), gen.fresh()
    ('ans1', 'ans2')
    """

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    @property
    def prefix(self) -> str:
        return self._prefix

    def fresh(self) -> str:
        """Return the next unused OID."""
        return f"{self._prefix}{next(self._counter)}"

    def fresh_many(self, count: int) -> Iterator[str]:
        """Yield *count* fresh OIDs."""
        for _ in range(count):
            yield self.fresh()
