"""Basic updates on a GSDB and the update log.

Section 4.1 of the paper defines three basic updates:

* ``insert(N1, N2)`` — add OID ``N2`` to ``value(N1)`` (``N1`` must be a
  set object); ``N2`` becomes a child of ``N1``.
* ``delete(N1, N2)`` — remove OID ``N2`` from ``value(N1)``.
* ``modify(N, oldv, newv)`` — change the value of atomic object ``N``.

Other operations reduce to these: creating an unreferenced object has no
effect on queries; adding object ``O`` to database ``DB`` is
``insert(DB, O)``; replacing a set value is a series of inserts and
deletes.  Update records are immutable so they can be logged, shipped to
a warehouse (Section 5), and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Union

from repro.gsdb.object import AtomicValue


@dataclass(frozen=True, slots=True)
class Insert:
    """``insert(parent, child)`` — add an edge parent → child."""

    parent: str
    child: str

    @property
    def directly_affected(self) -> tuple[str, str]:
        """OIDs directly involved in this update (paper Section 5.1)."""
        return (self.parent, self.child)

    def inverse(self) -> "Delete":
        """Return the update that undoes this one."""
        return Delete(self.parent, self.child)

    def __str__(self) -> str:
        return f"insert({self.parent}, {self.child})"


@dataclass(frozen=True, slots=True)
class Delete:
    """``delete(parent, child)`` — remove the edge parent → child."""

    parent: str
    child: str

    @property
    def directly_affected(self) -> tuple[str, str]:
        return (self.parent, self.child)

    def inverse(self) -> "Insert":
        return Insert(self.parent, self.child)

    def __str__(self) -> str:
        return f"delete({self.parent}, {self.child})"


@dataclass(frozen=True, slots=True)
class Modify:
    """``modify(oid, old_value, new_value)`` on an atomic object."""

    oid: str
    old_value: AtomicValue
    new_value: AtomicValue

    @property
    def directly_affected(self) -> tuple[str]:
        return (self.oid,)

    def inverse(self) -> "Modify":
        return Modify(self.oid, self.new_value, self.old_value)

    def __str__(self) -> str:
        return f"modify({self.oid}, {self.old_value!r}, {self.new_value!r})"


#: A basic update, as defined in paper Section 4.1.
Update = Union[Insert, Delete, Modify]

#: Signature of an update listener: called after the update is applied.
UpdateListener = Callable[[Update], None]


@dataclass
class UpdateLog:
    """An append-only log of applied updates.

    Source monitors (Section 5) read this log to report changes to the
    warehouse; tests replay it to reproduce store states.
    """

    entries: list[Update] = field(default_factory=list)

    def append(self, update: Update) -> None:
        self.entries.append(update)

    def extend(self, updates: Iterable[Update]) -> None:
        self.entries.extend(updates)

    def since(self, position: int) -> list[Update]:
        """Return all updates appended at or after *position*."""
        return self.entries[position:]

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Update]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> Update:
        return self.entries[index]
