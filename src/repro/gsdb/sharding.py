"""Sharded object stores: OID-hash partitioning with a border index.

The paper's warehouse (Section 5) assumes one source feeding one store.
Serving heavy multi-view traffic demands partitioning the GSDB so
maintenance can proceed shard-by-shard (MV4PG shows materialized graph
views pay off exactly when maintenance parallelizes over partitions;
Szárnyas demonstrates incremental property-graph maintenance decomposes
over edge-partitioned workloads).  This module supplies the storage
half of that story; :mod:`repro.views.parallel` supplies the dispatch
half.

:class:`ShardedStore`
    N independent :class:`~repro.gsdb.store.ObjectStore` shards behind
    the exact read/write surface of a single store.  Objects are placed
    by a *deterministic* OID hash (CRC-32, never Python's seeded
    ``hash``), so placement — and every benchmark count derived from it
    — is identical across processes and ``PYTHONHASHSEED`` values.
    Edge updates are applied at the shard owning the **parent** (the
    edge lives in the parent's value), so each shard's update log is
    exactly the sub-stream a per-shard maintenance worker consumes;
    per-shard sequence numbers stamp that sub-stream.  Each shard
    charges its own :class:`~repro.instrumentation.counters.
    CostCounters`, which is what lets experiment E17 report the
    *critical path* (the busiest shard) rather than just total work.

:class:`BorderIndex`
    The cross-shard edge catalogue: every edge whose parent and child
    hash to different shards, in both directions.  Upward resolution
    (``path(ROOT, N)``, the hot evaluation function of Algorithm 1)
    cannot stay inside one shard when a chain crosses a border — the
    child's shard has no record of the edge — so border lookups are the
    routing step between per-shard parent indexes.  Lookups charge the
    dedicated ``border_probes`` counter.

:class:`ShardedParentIndex`
    The inverse index of Section 4.4, decomposed: one
    :class:`~repro.gsdb.indexes.ParentIndex` per shard (each sees only
    its own shard's edges) stitched together through the border index,
    plus a memoized stitched chain cache mirroring the single-store
    index's.  Duck-types everything maintainers and the serving
    invalidator use (``parent`` / ``parents`` / ``memoized_path`` /
    ``memoized_chain`` / ``chain_to_top`` / ``ignore_*``).

Semantics are bit-for-bit those of the single store: the same updates
are legal, the same update log order is produced, and
``oids()``/``scan()`` iterate in the same global sorted order.  The
stateful oracle suite (``tests/property/test_sharded_model.py``) pins
``ShardedStore(n) ≡ ObjectStore`` byte-equality for every operation
interleaving it can generate.
"""

from __future__ import annotations

import zlib
from typing import Callable, Iterable, Iterator

from repro.errors import (
    DuplicateObjectError,
    InvalidUpdateError,
    UnknownObjectError,
)
from repro.gsdb.indexes import ParentIndex
from repro.gsdb.object import AtomicValue, Object
from repro.gsdb.store import ObjectStore, TreeSpec
from repro.gsdb.updates import (
    Delete,
    Insert,
    Modify,
    Update,
    UpdateListener,
    UpdateLog,
)


def shard_of(oid: str, shards: int) -> int:
    """The home shard of *oid*: CRC-32 of the OID, mod *shards*.

    Deliberately not Python's ``hash`` — that is salted per process
    (``PYTHONHASHSEED``), and shard placement must be stable so logs,
    benchmarks, and replicas agree on ownership.
    """
    return zlib.crc32(oid.encode("utf-8")) % shards


class BorderIndex:
    """Cross-shard parent/child edges, indexed in both directions.

    Maintained by :class:`ShardedStore` as edges are applied (and as
    pre-built set objects are registered), never consulted for
    same-shard edges.  ``parents_across``/``children_across`` charge
    ``border_probes`` on the sharded store's global counters — they are
    the metered routing hops of cross-shard path evaluation.
    """

    def __init__(self, counters) -> None:
        self._counters = counters
        #: child OID -> parents living on a *different* shard.
        self._parents: dict[str, set[str]] = {}
        #: parent OID -> children living on a *different* shard.
        self._children: dict[str, set[str]] = {}
        self._edges = 0

    # -- maintenance (driven by ShardedStore) -------------------------------

    def add_edge(self, parent: str, child: str) -> None:
        self._parents.setdefault(child, set()).add(parent)
        self._children.setdefault(parent, set()).add(child)
        self._edges += 1

    def remove_edge(self, parent: str, child: str) -> None:
        parents = self._parents.get(child)
        if parents is not None and parent in parents:
            parents.discard(parent)
            if not parents:
                del self._parents[child]
            self._edges -= 1
        children = self._children.get(parent)
        if children is not None:
            children.discard(child)
            if not children:
                del self._children[parent]

    def forget(self, oid: str) -> None:
        """Drop every border edge adjacent to a removed object."""
        for child in sorted(self._children.pop(oid, ())):
            parents = self._parents.get(child)
            if parents is not None and oid in parents:
                parents.discard(oid)
                if not parents:
                    del self._parents[child]
                self._edges -= 1
        for parent in sorted(self._parents.pop(oid, ())):
            children = self._children.get(parent)
            if children is not None:
                children.discard(oid)
                if not children:
                    del self._children[parent]
            self._edges -= 1

    # -- lookup --------------------------------------------------------------

    def parents_across(self, oid: str) -> set[str]:
        """Parents of *oid* that live on another shard (one probe)."""
        self._counters.border_probes += 1
        return set(self._parents.get(oid, ()))

    def children_across(self, oid: str) -> set[str]:
        """Children of *oid* that live on another shard (one probe)."""
        self._counters.border_probes += 1
        return set(self._children.get(oid, ()))

    def has_cross_parents(self, oid: str) -> bool:
        """Uncharged membership test (internal screening/bookkeeping)."""
        return bool(self._parents.get(oid))

    def is_border(self, parent: str, child: str) -> bool:
        """Uncharged: is ``parent -> child`` a recorded border edge?"""
        return child in self._children.get(parent, ())

    def peek_parents(self, oid: str) -> set[str]:
        """Uncharged ``parents_across`` for metadata maintenance."""
        return set(self._parents.get(oid, ()))

    def __len__(self) -> int:
        return self._edges

    def edges(self) -> list[tuple[str, str]]:
        """All border edges, sorted (introspection for tests/benches)."""
        return sorted(
            (parent, child)
            for parent, children in self._children.items()
            for child in children
        )


class ShardedStore:
    """N :class:`ObjectStore` shards behind one store-shaped surface.

    Args:
        shards: partition count (>= 1).
        counters: optional shared *global* counters for store-level
            work (border probes, index charges by global subscribers);
            per-shard base accesses are charged to each shard's own
            counters — see :meth:`shard_counters` /
            :meth:`combined_counters`.
        check_references: as for :class:`ObjectStore`; the check runs
            globally here (a child may live on any shard), and the
            shards themselves run unchecked.
    """

    def __init__(
        self,
        shards: int = 4,
        *,
        counters: "CostCounters | None" = None,
        check_references: bool = True,
    ) -> None:
        from repro.instrumentation.counters import CostCounters

        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.counters = counters if counters is not None else CostCounters()
        self.check_references = check_references
        self._shards = [
            ObjectStore(check_references=False) for _ in range(shards)
        ]
        self.border = BorderIndex(self.counters)
        self.log = UpdateLog()
        self._shard_seq = [0] * shards
        self._listeners: list[UpdateListener] = []
        self._creation_listeners: list[Callable[[Object], None]] = []
        self._removal_listeners: list[Callable[[Object], None]] = []
        self._sorted_oids: list[str] | None = None

    # -- partitioning ---------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_of(self, oid: str) -> int:
        """The shard that owns *oid* (pure function of the OID)."""
        return shard_of(oid, len(self._shards))

    def shard_stores(self) -> list[ObjectStore]:
        """The per-shard stores, in shard order (do not mutate directly
        — all writes must go through the sharded surface so the border
        index and the global log stay consistent)."""
        return list(self._shards)

    def shard_counters(self, shard: int) -> "CostCounters":
        """Shard *shard*'s private cost counters."""
        return self._shards[shard].counters

    def shard_sequences(self) -> tuple[int, ...]:
        """Per-shard update sequence numbers (count of updates applied
        at each shard; an update's home shard is its anchor's shard)."""
        return tuple(self._shard_seq)

    def owner(self, update: Update) -> int:
        """The shard an update is applied at: the edge's parent shard
        for insert/delete (the edge lives in the parent's value), the
        object's shard for modify."""
        if isinstance(update, Modify):
            return self.shard_of(update.oid)
        return self.shard_of(update.parent)

    def combined_counters(self) -> "CostCounters":
        """Global counters plus every shard's, as one snapshot."""
        total = self.counters.snapshot()
        for shard in self._shards:
            total.add(shard.counters)
        return total

    # -- population -----------------------------------------------------------

    def add_object(self, obj: Object) -> Object:
        """Register a new object at its home shard.

        Mirrors :meth:`ObjectStore.add_object` exactly — including the
        absence of reference checking (creation is not a basic update;
        only :meth:`add_set` validates children).
        """
        home = self._shards[self.shard_of(obj.oid)]
        if obj.oid in home:
            raise DuplicateObjectError(obj.oid)
        home.add_object(obj)
        self._sorted_oids = None
        if obj.is_set:
            self._register_border_edges(obj)
        for listener in self._creation_listeners:
            listener(obj)
        return obj

    def _register_border_edges(self, obj: Object) -> None:
        home = self.shard_of(obj.oid)
        for child in obj.children():
            if self.shard_of(child) != home:
                self.border.add_edge(obj.oid, child)

    def add_atomic(
        self, oid: str, label: str, value: AtomicValue, type: str | None = None
    ) -> Object:
        return self.add_object(Object.atomic(oid, label, value, type))

    def add_set(
        self, oid: str, label: str, children: Iterable[str] = ()
    ) -> Object:
        children = list(children)
        if self.check_references:
            for child in children:
                if child not in self:
                    raise UnknownObjectError(child)
        return self.add_object(Object.set_object(oid, label, children))

    def remove_object(self, oid: str) -> Object:
        obj = self._shards[self.shard_of(oid)].remove_object(oid)
        self._sorted_oids = None
        self.border.forget(oid)
        for listener in self._removal_listeners:
            listener(obj)
        return obj

    # -- lookup ---------------------------------------------------------------

    def get(self, oid: str) -> Object:
        return self._shards[self.shard_of(oid)].get(oid)

    def get_optional(self, oid: str) -> Object | None:
        return self._shards[self.shard_of(oid)].get_optional(oid)

    def peek(self, oid: str) -> Object | None:
        return self._shards[self.shard_of(oid)].peek(oid)

    def __contains__(self, oid: str) -> bool:
        return oid in self._shards[self.shard_of(oid)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def _sorted_order(self) -> list[str]:
        if self._sorted_oids is None:
            merged: list[str] = []
            for shard in self._shards:
                merged.extend(shard._sorted_order())
            merged.sort()
            self._sorted_oids = merged
        return self._sorted_oids

    def oids(self) -> Iterator[str]:
        """All OIDs in global sorted order (same order as one store)."""
        return iter(self._sorted_order())

    def scan(self) -> Iterator[Object]:
        """Full scan in global sorted order; each object charges one
        ``object_scans`` on its *owning shard*."""
        for oid in self._sorted_order():
            shard = self._shards[self.shard_of(oid)]
            shard.counters.object_scans += 1
            obj = shard.peek(oid)
            if obj is not None:
                yield obj

    def label(self, oid: str) -> str:
        return self.get(oid).label

    def value(self, oid: str):
        obj = self.get(oid)
        return set(obj.value) if obj.is_set else obj.value

    # -- listeners ------------------------------------------------------------

    def subscribe(self, listener: UpdateListener) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: UpdateListener) -> None:
        self._listeners.remove(listener)

    def subscribe_creations(self, listener: Callable[[Object], None]) -> None:
        self._creation_listeners.append(listener)

    def subscribe_removals(self, listener: Callable[[Object], None]) -> None:
        self._removal_listeners.append(listener)

    # -- basic updates --------------------------------------------------------

    def apply(self, update: Update) -> None:
        """Validate, route to the owning shard, log, and notify.

        The global reference check runs here (the child of an insert
        may live on any shard); everything else is delegated to the
        owning shard's ordinary ``apply``, so per-shard logs, listener
        streams, and write charges are exactly those of a single store
        restricted to its partition.  Cross-shard edges additionally
        register in the border index *before* global listeners run, so
        subscribed indexes observe a consistent border.
        """
        if isinstance(update, Insert):
            home = self.shard_of(update.parent)
            # Pre-validate in ObjectStore's order (parent exists, parent
            # is a set, child exists) so error behavior is byte-equal to
            # the unsharded store; the owning shard re-validates edges.
            parent = self._shards[home].peek(update.parent)
            if parent is None:
                raise InvalidUpdateError(
                    f"unknown object: {update.parent!r}"
                )
            if not parent.is_set:
                raise InvalidUpdateError(
                    f"insert parent {update.parent!r} is not a set object"
                )
            if self.check_references and update.child not in self:
                raise InvalidUpdateError(
                    f"insert child {update.child!r} does not exist"
                )
            self._shards[home].apply(update)
            if self.shard_of(update.child) != home:
                self.border.add_edge(update.parent, update.child)
        elif isinstance(update, Delete):
            home = self.shard_of(update.parent)
            self._shards[home].apply(update)
            if self.shard_of(update.child) != home:
                self.border.remove_edge(update.parent, update.child)
        elif isinstance(update, Modify):
            home = self.shard_of(update.oid)
            self._shards[home].apply(update)
        else:  # pragma: no cover - defensive
            raise InvalidUpdateError(f"unknown update type: {update!r}")
        self._shard_seq[home] += 1
        self.log.append(update)
        for listener in self._listeners:
            listener(update)

    def apply_all(self, updates: Iterable[Update]) -> int:
        count = 0
        for update in updates:
            self.apply(update)
            count += 1
        return count

    def insert_edge(self, parent: str, child: str) -> Insert:
        update = Insert(parent, child)
        self.apply(update)
        return update

    def delete_edge(self, parent: str, child: str) -> Delete:
        update = Delete(parent, child)
        self.apply(update)
        return update

    def modify_value(self, oid: str, new_value: AtomicValue) -> Modify:
        obj = self.get(oid)
        if obj.is_set:
            raise InvalidUpdateError(
                f"modify target {oid!r} is a set object"
            )
        update = Modify(oid, obj.atomic_value(), new_value)
        self.apply(update)
        return update

    # -- bulk helpers ---------------------------------------------------------

    def add_tree(self, spec: TreeSpec, *, parent: str | None = None) -> str:
        oid, label, value = spec
        if isinstance(value, list):
            child_oids = [self.add_tree(child) for child in value]
            self.add_set(oid, label, child_oids)
        else:
            self.add_atomic(oid, label, value)
        if parent is not None:
            self.insert_edge(parent, oid)
        return oid

    def copy_into(self, other, oids: Iterable[str]) -> None:
        for oid in oids:
            other.add_object(self.get(oid).copy())

    # -- introspection --------------------------------------------------------

    def shard_sizes(self) -> tuple[int, ...]:
        """Object count per shard (placement balance check)."""
        return tuple(len(shard) for shard in self._shards)

    def describe(self) -> str:
        """One-line shard summary for the CLI's ``shards`` command."""
        sizes = ", ".join(
            f"shard{i}={n}" for i, n in enumerate(self.shard_sizes())
        )
        return (
            f"{len(self._shards)} shards: {sizes}; "
            f"{len(self.border)} border edges; "
            f"sequences={list(self._shard_seq)}"
        )


class ShardedParentIndex:
    """Per-shard inverse indexes stitched through the border index.

    Each shard gets its own :class:`~repro.gsdb.indexes.ParentIndex`
    subscribed to that shard's update/creation stream — the index a
    per-shard maintenance worker would own on its own machine.  An edge
    is recorded where it is applied (the parent's shard), so a child
    whose parent lives on another shard finds no intra-shard parent;
    the walk then *routes through the border index* and continues on
    the parent's shard.  This is how ``path(ROOT, N)``/``chain(ROOT,
    N)`` — Algorithm 1's hot evaluation functions, and the serving
    invalidator's ancestry screen — stay exact across shard borders.

    Chain memoization mirrors the single-store
    :class:`~repro.gsdb.indexes.ParentIndex`: stitched chains (and all
    their suffixes) are cached and invalidated on any structural
    change, charging ``chain_cache_hits``/``chain_cache_misses`` on the
    sharded store's global counters.  Per-node reads on a cold walk are
    charged to each node's *owning shard*, so the critical-path
    accounting of E17 sees upward resolution where it really happens.

    Args:
        store: the :class:`ShardedStore` to index.
        chain_cache: memoize stitched chains (on by default); the
            per-shard indexes never cache (stitching happens here).
        stitch_borders: when False, walks *stop* at shard borders
            instead of routing through the border index — the degraded
            deployment the serving invalidator's
            ``failopen_cross_shard`` counter (E17) measures.
    """

    DEFAULT_IGNORED_LABELS = ParentIndex.DEFAULT_IGNORED_LABELS

    def __init__(
        self,
        store: ShardedStore,
        *,
        chain_cache: bool = True,
        stitch_borders: bool = True,
    ) -> None:
        self._store = store
        self._border = store.border
        self.stitch_borders = stitch_borders
        self._indexes = [
            ParentIndex(shard, chain_cache=False)
            for shard in store.shard_stores()
        ]
        self._ignored: set[str] = set()
        self._ignored_prefixes: list[str] = []
        self._chain_caching = chain_cache
        self._chain_cache: dict[
            str, tuple[tuple[tuple[str, str], ...], bool]
        ] = {}
        store.subscribe(self._on_update)
        store.subscribe_creations(self._on_creation)

    # -- ignore plumbing (grouping edges are not structure) -------------------

    def _is_ignored(self, oid: str) -> bool:
        if oid in self._ignored or any(
            oid.startswith(prefix) for prefix in self._ignored_prefixes
        ):
            return True
        obj = self._store.peek(oid)
        return obj is not None and obj.label in self.DEFAULT_IGNORED_LABELS

    def ignore_parent(self, oid: str) -> None:
        if oid in self._ignored:
            return
        self._ignored.add(oid)
        self._chain_cache.clear()
        self._indexes[self._store.shard_of(oid)].ignore_parent(oid)

    def ignore_prefix(self, prefix: str) -> None:
        if prefix in self._ignored_prefixes:
            return
        self._ignored_prefixes.append(prefix)
        self._chain_cache.clear()
        for index in self._indexes:
            index.ignore_prefix(prefix)

    def ignore_view(self, view_oid: str) -> None:
        self.ignore_parent(view_oid)
        self.ignore_prefix(view_oid + ".")

    # -- cache invalidation ---------------------------------------------------

    def _on_update(self, update: Update) -> None:
        # The per-shard indexes have already seen this update via their
        # own shard subscription; only the stitched memo needs care.
        if isinstance(update, (Insert, Delete)) and not self._is_ignored(
            update.parent
        ):
            self._chain_cache.clear()

    def _on_creation(self, obj: Object) -> None:
        if obj.is_set and self._chain_cache:
            if obj.oid in self._chain_cache or (
                obj.children() and not self._is_ignored(obj.oid)
            ):
                self._chain_cache.clear()

    # -- lookup ---------------------------------------------------------------

    def _raw_parents(self, oid: str, *, charged: bool = True) -> set[str]:
        """Parents of *oid* across all shards, ignore-filtered.

        The intra-shard probe asks only *oid*'s own shard (an edge is
        recorded where its parent lives, and a same-shard edge's parent
        lives with the child); the cross-shard probe is one border
        lookup.  With ``stitch_borders`` off the border is not
        consulted — the caller sees the walk end at the border.
        """
        shard = self._store.shard_of(oid)
        if charged:
            intra = self._indexes[shard].parents(oid)
        else:
            intra = set(self._indexes[shard]._parents.get(oid, ()))
        if self.stitch_borders:
            cross = (
                self._border.parents_across(oid)
                if charged
                else self._border.peek_parents(oid)
            )
            intra |= cross
        return {p for p in intra if not self._is_ignored(p)}

    def parents(self, oid: str) -> set[str]:
        """All recorded parents of *oid* (border-stitched)."""
        return self._raw_parents(oid)

    def parent(self, oid: str) -> str | None:
        """The unique parent of *oid*; loud on non-tree structure."""
        parents = self._raw_parents(oid)
        if not parents:
            return None
        if len(parents) > 1:
            raise ValueError(
                f"object {oid!r} has {len(parents)} parents; "
                "base is not a tree"
            )
        return next(iter(parents))

    def has_parent(self, oid: str) -> bool:
        return bool(self._raw_parents(oid))

    # -- stitched chain memo --------------------------------------------------

    def _upward_chain(
        self, oid: str
    ) -> tuple[tuple[tuple[str, str], ...], bool]:
        counters = self._store.counters
        cached = self._chain_cache.get(oid)
        if cached is not None:
            counters.index_probes += 1
            counters.chain_cache_hits += 1
            return cached
        counters.chain_cache_misses += 1
        entries: list[tuple[str, str]] = []
        stopped_at_multi = False
        current = oid
        while True:
            obj = self._store.get_optional(current)  # charges owner shard
            if obj is None:
                break
            entries.append((current, obj.label))
            parents = self._raw_parents(current)
            if not parents:
                break
            if len(parents) > 1:
                stopped_at_multi = True
                break
            counters.edge_traversals += 1
            current = next(iter(parents))
        result = (tuple(entries), stopped_at_multi)
        if self._chain_caching:
            self._chain_cache[oid] = result
            for i in range(1, len(entries)):
                self._chain_cache.setdefault(
                    entries[i][0], (result[0][i:], stopped_at_multi)
                )
        return result

    def _scan_chain(
        self, ancestor: str, descendant: str
    ) -> tuple[tuple[tuple[str, str], ...], int] | None:
        chain, stopped_at_multi = self._upward_chain(descendant)
        if not chain or chain[0][0] != descendant:
            return None
        for i, (oid, _label) in enumerate(chain):
            if oid == ancestor:
                return chain, i
        if stopped_at_multi:
            top = chain[-1][0]
            raise ValueError(
                f"object {top!r} has multiple parents; base is not a tree"
            )
        return None

    def memoized_path(
        self, ancestor: str, descendant: str
    ) -> list[str] | None:
        located = self._scan_chain(ancestor, descendant)
        if located is None:
            return None
        chain, i = located
        labels = [label for (_oid, label) in chain[:i]]
        labels.reverse()
        return labels

    def memoized_chain(
        self, ancestor: str, descendant: str
    ) -> list[str] | None:
        located = self._scan_chain(ancestor, descendant)
        if located is None:
            return None
        chain, i = located
        oids = [entry_oid for (entry_oid, _lab) in chain[: i + 1]]
        oids.reverse()
        return oids

    def chain_to_top(self, oid: str) -> tuple[tuple[str, ...], bool]:
        chain, stopped_at_multi = self._upward_chain(oid)
        return (
            tuple(entry_oid for entry_oid, _label in chain),
            stopped_at_multi,
        )

    def chain_top(self, oid: str) -> str | None:
        """The last OID on *oid*'s upward chain (fail-open forensics:
        the serving invalidator asks whether the walk died at a shard
        border)."""
        chain, _stopped = self._upward_chain(oid)
        return chain[-1][0] if chain else None

    def chain_cache_size(self) -> int:
        return len(self._chain_cache)

    def shard_indexes(self):
        """The per-shard parent indexes (introspection/workers)."""
        return list(self._indexes)
