"""Structural validation of a GSDB: referential integrity and shape.

Algorithm 1 (paper Section 4) assumes tree-structured bases; the
Section 6 relaxations cover DAGs.  This module classifies a store's
structure so maintainers can check their preconditions, and verifies
referential integrity (every OID appearing in a set value resolves).

Grouping objects — databases and view objects — are excluded from shape
analysis because their edges are membership, not parent-child structure
(see :mod:`repro.gsdb.database`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import IntegrityError
from repro.gsdb.store import ObjectStore


class Shape(enum.Enum):
    """Structural classification of the parent-child graph."""

    TREE = "tree"  # every node has <= 1 parent, no cycles
    FOREST = "forest"  # trees with multiple roots
    DAG = "dag"  # multiple parents allowed, no cycles
    CYCLIC = "cyclic"  # at least one directed cycle


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_store`."""

    shape: Shape
    dangling: dict[str, set[str]] = field(default_factory=dict)
    multi_parent: dict[str, set[str]] = field(default_factory=dict)
    roots: set[str] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        """True when referential integrity holds (shape is informative)."""
        return not self.dangling

    def raise_on_dangling(self) -> None:
        if self.dangling:
            parent, children = next(iter(sorted(self.dangling.items())))
            raise IntegrityError(
                f"dangling reference: {parent!r} -> {sorted(children)[0]!r} "
                f"(and possibly more; {len(self.dangling)} parents affected)"
            )


def validate_store(
    store: ObjectStore, *, ignore: Iterable[str] = ()
) -> ValidationReport:
    """Check referential integrity and classify the store's shape.

    Args:
        store: the store to inspect.
        ignore: OIDs of grouping objects (databases, views) whose edges
            are skipped; typically ``registry.grouping_oids()``.
    """
    ignored = set(ignore)
    dangling: dict[str, set[str]] = {}
    parents: dict[str, set[str]] = {}
    set_oids: set[str] = set()

    for obj in store.scan():
        if not obj.is_set or obj.oid in ignored:
            continue
        set_oids.add(obj.oid)
        for child in obj.children():
            if child not in store:
                dangling.setdefault(obj.oid, set()).add(child)
            parents.setdefault(child, set()).add(obj.oid)

    multi_parent = {
        oid: ps for oid, ps in parents.items() if len(ps) > 1
    }
    roots = {
        oid
        for oid in set_oids
        if not parents.get(oid)
    }

    shape = _classify(store, ignored, parents, multi_parent, roots)
    return ValidationReport(
        shape=shape, dangling=dangling, multi_parent=multi_parent, roots=roots
    )


def _classify(
    store: ObjectStore,
    ignored: set[str],
    parents: dict[str, set[str]],
    multi_parent: dict[str, set[str]],
    roots: set[str],
) -> Shape:
    if _has_cycle(store, ignored):
        return Shape.CYCLIC
    if multi_parent:
        return Shape.DAG
    if len(roots) > 1:
        return Shape.FOREST
    return Shape.TREE


def _has_cycle(store: ObjectStore, ignored: set[str]) -> bool:
    """Detect a directed cycle among parent-child edges (iterative)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {}

    for start in store.oids():
        if color.get(start, WHITE) != WHITE or start in ignored:
            continue
        stack: list[tuple[str, iter]] = []
        color[start] = GRAY
        obj = store.get_optional(start)
        if obj is None or not obj.is_set:
            color[start] = BLACK
            continue
        stack.append((start, iter(sorted(obj.children()))))
        while stack:
            oid, children = stack[-1]
            advanced = False
            for child in children:
                state = color.get(child, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE and child not in ignored:
                    child_obj = store.get_optional(child)
                    color[child] = GRAY
                    if child_obj is not None and child_obj.is_set:
                        stack.append(
                            (child, iter(sorted(child_obj.children())))
                        )
                        advanced = True
                        break
                    color[child] = BLACK
            if not advanced:
                color[oid] = BLACK
                stack.pop()
    return False


def assert_tree_below(
    store: ObjectStore, root: str, *, ignore: Iterable[str] = ()
) -> None:
    """Raise :class:`IntegrityError` unless the subgraph reachable from
    *root* is a tree (Algorithm 1's precondition).

    Grouping objects in *ignore* are treated as absent.
    """
    ignored = set(ignore)
    parent_seen: dict[str, str] = {}
    stack = [root]
    visited = {root}
    while stack:
        oid = stack.pop()
        if oid in ignored:
            continue
        obj = store.get_optional(oid)
        if obj is None or not obj.is_set:
            continue
        for child in obj.children():
            if child in parent_seen and parent_seen[child] != oid:
                raise IntegrityError(
                    f"not a tree: {child!r} reachable from both "
                    f"{parent_seen[child]!r} and {oid!r}"
                )
            if child in visited and child not in parent_seen:
                # child == root reached again -> cycle through root
                raise IntegrityError(f"not a tree: cycle through {child!r}")
            parent_seen[child] = oid
            if child not in visited:
                visited.add(child)
                stack.append(child)
