"""Database objects and set operations on set objects.

Paper Section 2: "A graph-structured database (GSDB) is an object whose
set value contains the OIDs of all objects in this database."  A
database object is a *conceptual aid* — grouping objects that are
semantically related, frequently co-accessed, or co-located — not a
special object type.  Queries use databases as entry points (``DB.?``)
and as scopes (``WITHIN DB``, ``ANS INT DB``).

Because a database object points at *every* member, its edges are not
parent-child edges and must be excluded from tree traversal; the
:class:`DatabaseRegistry` tracks which OIDs play this grouping role so
indexes and validators can ignore them.

This module also implements the paper's ``union``/``int`` operations on
set objects (Section 2), which "are mainly used to manipulate database
objects and query answers".
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import TypeMismatchError, UnknownDatabaseError
from repro.gsdb.object import Object
from repro.gsdb.oid import OidGenerator
from repro.gsdb.store import ObjectStore

#: Default label for database objects (Example 2 uses ``database``).
DATABASE_LABEL = "database"


class DatabaseRegistry:
    """Tracks which set objects in a store act as databases or views.

    The registry answers two questions: "what OIDs does name X map to?"
    (query scope resolution) and "which objects' edges should graph
    algorithms ignore?" (grouping objects).
    """

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        self._databases: dict[str, str] = {}  # name -> database object OID

    @property
    def store(self) -> ObjectStore:
        return self._store

    def create_database(
        self,
        name: str,
        members: Iterable[str] = (),
        *,
        label: str = DATABASE_LABEL,
    ) -> Object:
        """Create and register a database object named *name*.

        The database object's OID is the name itself (the paper refers
        to databases by name, e.g. ``PERSON``).
        """
        obj = self._store.add_set(name, label, members)
        self._databases[name] = name
        return obj

    def register(self, name: str, oid: str) -> None:
        """Register an existing set object *oid* as database *name*.

        View objects are registered this way so queries can use a view
        as a scope or entry point (paper Section 3.1).
        """
        obj = self._store.get(oid)
        if not obj.is_set:
            raise TypeMismatchError(
                f"database object {oid!r} must be a set object"
            )
        self._databases[name] = oid

    def unregister(self, name: str) -> None:
        self._databases.pop(name, None)

    def resolve(self, name: str) -> Object:
        """Return the database object for *name*.

        Raises:
            UnknownDatabaseError: if not registered.
        """
        oid = self._databases.get(name)
        if oid is None:
            raise UnknownDatabaseError(name)
        return self._store.get(oid)

    def members(self, name: str) -> set[str]:
        """Return the member OIDs of database *name*."""
        return set(self.resolve(name).children())

    def contains(self, name: str, oid: str) -> bool:
        """True if *oid* is a member of database *name*."""
        return oid in self.resolve(name).children()

    def names(self) -> set[str]:
        return set(self._databases)

    def grouping_oids(self) -> set[str]:
        """OIDs whose outgoing edges are grouping, not parent-child."""
        return set(self._databases.values())

    def add_member(self, name: str, oid: str) -> None:
        """Add *oid* to database *name* via a normal ``insert`` update.

        The paper: "Adding a new object O to a database DB can be
        modeled as insert(DB, O)."
        """
        db = self.resolve(name)
        if oid not in db.children():
            self._store.insert_edge(db.oid, oid)

    def remove_member(self, name: str, oid: str) -> None:
        db = self.resolve(name)
        if oid in db.children():
            self._store.delete_edge(db.oid, oid)


_result_oids = OidGenerator("setop")


def union(
    store: ObjectStore, first: Object, second: Object, *, oid: str | None = None
) -> Object:
    """The paper's ``union(S1, S2)``.

    Returns a new set object whose value is ``value(S1) ∪ value(S2)``,
    with an arbitrary unique OID and the label of S1 (Section 2).
    """
    _require_sets(first, second)
    result = Object.set_object(
        oid or _result_oids.fresh(),
        first.label,
        first.children() | second.children(),
    )
    store.add_object(result)
    return result


def intersect(
    store: ObjectStore, first: Object, second: Object, *, oid: str | None = None
) -> Object:
    """The paper's ``int(S1, S2)``: value is ``value(S1) ∩ value(S2)``."""
    _require_sets(first, second)
    result = Object.set_object(
        oid or _result_oids.fresh(),
        first.label,
        first.children() & second.children(),
    )
    store.add_object(result)
    return result


def difference(
    store: ObjectStore, first: Object, second: Object, *, oid: str | None = None
) -> Object:
    """Set difference — not in the paper but needed to *remove* scopes
    (e.g. revoking a view from a user's authorized union, Section 3.1).
    """
    _require_sets(first, second)
    result = Object.set_object(
        oid or _result_oids.fresh(),
        first.label,
        first.children() - second.children(),
    )
    store.add_object(result)
    return result


def _require_sets(*objects: Object) -> None:
    for obj in objects:
        if not obj.is_set:
            raise TypeMismatchError(
                f"set operation on atomic object {obj.oid!r}"
            )
