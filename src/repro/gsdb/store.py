"""The object store: holds OEM objects and applies basic updates.

An :class:`ObjectStore` is the physical home of a collection of objects.
Databases and views (paper Sections 2 and 3) are *objects in* a store,
not stores themselves: a GSDB is a set object whose value lists the OIDs
of the database's members, so one store can hold many databases, views,
and free-standing objects.

The store is the single mutation point.  All changes go through
:meth:`apply` (or the convenience wrappers :meth:`insert_edge`,
:meth:`delete_edge`, :meth:`modify_value`), which validates the update,
applies it, appends it to the update log, and notifies listeners.
Indexes (:mod:`repro.gsdb.indexes`) and source monitors
(:mod:`repro.warehouse.monitor`) are listeners.

Cost accounting: every object lookup charges ``object_reads`` on the
store's :class:`~repro.instrumentation.counters.CostCounters`, scans
charge ``object_scans``, and writes charge ``object_writes``.  Pass a
shared counters instance to meter several stores together.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.errors import (
    DuplicateObjectError,
    InvalidUpdateError,
    TypeMismatchError,
    UnknownObjectError,
)
from repro.gsdb.object import AtomicValue, Object
from repro.gsdb.updates import (
    Delete,
    Insert,
    Modify,
    Update,
    UpdateListener,
    UpdateLog,
)


class ObjectStore:
    """A mutable collection of OEM objects with logged updates.

    Args:
        counters: optional shared cost counters; a private instance is
            created when omitted.
        check_references: when True (default), ``insert`` requires the
            child object to already exist in the store.  Sources that
            ship partially-built subtrees can disable this.
    """

    def __init__(
        self,
        counters: "CostCounters | None" = None,
        *,
        check_references: bool = True,
    ) -> None:
        from repro.instrumentation.counters import CostCounters

        self._objects: dict[str, Object] = {}
        #: Cached sorted OID list for oids()/scan(); rebuilt lazily
        #: after add_object/remove_object instead of on every call.
        self._sorted_oids: list[str] | None = None
        self._listeners: list[UpdateListener] = []
        self._creation_listeners: list[Callable[[Object], None]] = []
        self._removal_listeners: list[Callable[[Object], None]] = []
        self.log = UpdateLog()
        self.counters = counters if counters is not None else CostCounters()
        self.check_references = check_references

    # -- population --------------------------------------------------------

    def add_object(self, obj: Object) -> Object:
        """Register a new object.

        Creating an object is not one of the paper's basic updates (an
        unreferenced object affects no query, Section 4.1), so this does
        not go through the update log; it does notify creation
        listeners so indexes can register edges of pre-built set
        objects.

        Raises:
            DuplicateObjectError: if the OID is already present.
        """
        if obj.oid in self._objects:
            raise DuplicateObjectError(obj.oid)
        self._objects[obj.oid] = obj
        self._sorted_oids = None
        self.counters.object_writes += 1
        for listener in self._creation_listeners:
            listener(obj)
        return obj

    def add_atomic(
        self, oid: str, label: str, value: AtomicValue, type: str | None = None
    ) -> Object:
        """Create and register an atomic object."""
        return self.add_object(Object.atomic(oid, label, value, type))

    def add_set(
        self, oid: str, label: str, children: Iterable[str] = ()
    ) -> Object:
        """Create and register a set object.

        Children must already exist when ``check_references`` is on.
        """
        children = list(children)
        if self.check_references:
            for child in children:
                if child not in self._objects:
                    raise UnknownObjectError(child)
        return self.add_object(Object.set_object(oid, label, children))

    def remove_object(self, oid: str) -> Object:
        """Unregister an object (garbage collection; not a basic update).

        The caller is responsible for having removed incoming edges
        first; :mod:`repro.gsdb.validation` will flag dangling OIDs
        otherwise.
        """
        try:
            obj = self._objects.pop(oid)
        except KeyError:
            raise UnknownObjectError(oid) from None
        self._sorted_oids = None
        self.counters.object_writes += 1
        for listener in self._removal_listeners:
            listener(obj)
        return obj

    # -- lookup -------------------------------------------------------------

    def get(self, oid: str) -> Object:
        """Return the object with *oid*, charging one read.

        Raises:
            UnknownObjectError: if absent.
        """
        self.counters.object_reads += 1
        try:
            return self._objects[oid]
        except KeyError:
            raise UnknownObjectError(oid) from None

    def get_optional(self, oid: str) -> Object | None:
        """Return the object with *oid*, or None, charging one read."""
        self.counters.object_reads += 1
        return self._objects.get(oid)

    def peek(self, oid: str) -> Object | None:
        """Uncharged lookup for internal bookkeeping (index upkeep),
        so metadata maintenance does not skew base-access metrics."""
        return self._objects.get(oid)

    def __contains__(self, oid: str) -> bool:
        return oid in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def _sorted_order(self) -> list[str]:
        """The sorted OID list, re-sorted only after membership changed.

        Callers iterate the returned list directly; because
        ``add_object``/``remove_object`` *replace* the cache (set it to
        None) rather than mutating the list, in-flight iterators keep
        the snapshot they started with — same semantics as the old
        sort-per-call implementation.
        """
        if self._sorted_oids is None:
            self._sorted_oids = sorted(self._objects)
        return self._sorted_oids

    def oids(self) -> Iterator[str]:
        """Iterate all OIDs in sorted (deterministic) order."""
        return iter(self._sorted_order())

    def scan(self) -> Iterator[Object]:
        """Iterate all objects in sorted OID order, charging scans.

        This models the expensive full-database pass the paper contrasts
        with index-assisted access (Section 4.4).
        """
        for oid in self._sorted_order():
            self.counters.object_scans += 1
            yield self._objects[oid]

    def label(self, oid: str) -> str:
        """Shorthand for ``label(O)`` from the paper."""
        return self.get(oid).label

    def value(self, oid: str):
        """Shorthand for ``value(O)`` from the paper."""
        obj = self.get(oid)
        return set(obj.value) if obj.is_set else obj.value

    # -- listeners ----------------------------------------------------------

    def subscribe(self, listener: UpdateListener) -> None:
        """Register a callback invoked after each applied update."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: UpdateListener) -> None:
        self._listeners.remove(listener)

    def subscribe_creations(self, listener: Callable[[Object], None]) -> None:
        """Register a callback invoked after each ``add_object``."""
        self._creation_listeners.append(listener)

    def subscribe_removals(self, listener: Callable[[Object], None]) -> None:
        """Register a callback invoked after each ``remove_object``.

        Creations and removals bypass the update log (they are not basic
        updates, Section 4.1), so derived structures that track store
        membership — e.g. the columnar snapshot — need this hook to stay
        sound; log position alone cannot witness them.
        """
        self._removal_listeners.append(listener)

    # -- basic updates (paper Section 4.1) -----------------------------------

    def apply(self, update: Update) -> None:
        """Validate and apply a basic update, then log and notify.

        Raises:
            InvalidUpdateError: when the update does not apply (missing
                objects, wrong object kind, absent/duplicate edge, or a
                ``modify`` whose old value disagrees with the store).
        """
        if isinstance(update, Insert):
            self._apply_insert(update)
        elif isinstance(update, Delete):
            self._apply_delete(update)
        elif isinstance(update, Modify):
            self._apply_modify(update)
        else:  # pragma: no cover - defensive
            raise InvalidUpdateError(f"unknown update type: {update!r}")
        self.log.append(update)
        for listener in self._listeners:
            listener(update)

    def apply_all(self, updates: Iterable[Update]) -> int:
        """Apply a sequence of updates; return how many were applied."""
        count = 0
        for update in updates:
            self.apply(update)
            count += 1
        return count

    def insert_edge(self, parent: str, child: str) -> Insert:
        """Apply and return ``insert(parent, child)``."""
        update = Insert(parent, child)
        self.apply(update)
        return update

    def delete_edge(self, parent: str, child: str) -> Delete:
        """Apply and return ``delete(parent, child)``."""
        update = Delete(parent, child)
        self.apply(update)
        return update

    def modify_value(self, oid: str, new_value: AtomicValue) -> Modify:
        """Apply and return ``modify(oid, current, new_value)``."""
        obj = self.get(oid)
        if obj.is_set:
            raise InvalidUpdateError(
                f"modify target {oid!r} is a set object"
            )
        update = Modify(oid, obj.atomic_value(), new_value)
        self.apply(update)
        return update

    # -- internal update application -----------------------------------------

    def _require(self, oid: str) -> Object:
        try:
            return self._objects[oid]
        except KeyError:
            raise InvalidUpdateError(f"unknown object: {oid!r}") from None

    def _apply_insert(self, update: Insert) -> None:
        parent = self._require(update.parent)
        if not parent.is_set:
            raise InvalidUpdateError(
                f"insert parent {update.parent!r} is not a set object"
            )
        if self.check_references and update.child not in self._objects:
            raise InvalidUpdateError(
                f"insert child {update.child!r} does not exist"
            )
        if update.child in parent.children():
            raise InvalidUpdateError(
                f"edge {update.parent!r} -> {update.child!r} already exists"
            )
        parent.children().add(update.child)
        self.counters.object_writes += 1

    def _apply_delete(self, update: Delete) -> None:
        parent = self._require(update.parent)
        if not parent.is_set:
            raise InvalidUpdateError(
                f"delete parent {update.parent!r} is not a set object"
            )
        if update.child not in parent.children():
            raise InvalidUpdateError(
                f"edge {update.parent!r} -> {update.child!r} does not exist"
            )
        parent.children().discard(update.child)
        self.counters.object_writes += 1

    def _apply_modify(self, update: Modify) -> None:
        obj = self._require(update.oid)
        if obj.is_set:
            raise InvalidUpdateError(
                f"modify target {update.oid!r} is a set object"
            )
        if obj.value != update.old_value:
            raise InvalidUpdateError(
                f"modify({update.oid!r}): expected old value "
                f"{update.old_value!r}, store has {obj.value!r}"
            )
        obj.value = update.new_value
        self.counters.object_writes += 1

    # -- bulk helpers ---------------------------------------------------------

    def add_tree(
        self, spec: "TreeSpec", *, parent: str | None = None
    ) -> str:
        """Register a nested tree of objects given as plain tuples.

        ``spec`` is ``(oid, label, value)`` where *value* is either an
        atomic Python value or a list of child specs.  Returns the root
        OID.  Children are added before parents so reference checking
        passes.  If *parent* is given, an ``insert`` edge from it to the
        new root is applied through the normal update path.
        """
        oid, label, value = spec
        if isinstance(value, list):
            child_oids = [self.add_tree(child) for child in value]
            self.add_set(oid, label, child_oids)
        else:
            self.add_atomic(oid, label, value)
        if parent is not None:
            self.insert_edge(parent, oid)
        return oid

    def copy_into(self, other: "ObjectStore", oids: Iterable[str]) -> None:
        """Copy the given objects (by value) into *other* store."""
        for oid in oids:
            other.add_object(self.get(oid).copy())


#: Nested tuple shape accepted by :meth:`ObjectStore.add_tree`.
TreeSpec = tuple[str, str, object]
