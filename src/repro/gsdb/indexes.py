"""Store indexes: the parent (inverse) index and the label index.

Section 4.4 of the paper observes that the cost of ``ancestor(N, p)``
hinges on whether the base database has an "inverse index" from each
node to its parent; without one, evaluation "may require a traversal
from ROOT to N".  :class:`ParentIndex` is that inverse index.
:class:`LabelIndex` additionally maps labels to OIDs, which sources use
to answer ``fetch``-style queries (Section 5.1) without scanning.

Indexes subscribe to a store's update and creation streams and stay
consistent automatically.  Lookups charge ``index_probes`` to the
store's counters so experiment E8 can compare indexed and unindexed
evaluation.

:class:`ParentIndex` additionally memoizes *upward chains* — the
``[N, parent(N), ...]`` walk to the top of the tree, together with the
labels along it.  ``path(ROOT, N)`` and ``chain(ROOT, N)`` are the hot
evaluation functions of Algorithm 1 (every maintainer computes them for
every update), so once one maintainer has paid for the walk, every
other view maintained over the same store answers the same question
from the memo at zero base-access cost (experiment E14).  The memo is
invalidated on any structural change (edge insert/delete, indexed set
creation); labels are immutable, so ``modify`` never invalidates.
"""

from __future__ import annotations

from repro.gsdb.object import Object
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Delete, Insert, Update

#: Shared empty adjacency returned for parents with no indexed edges.
_NO_CHILDREN: dict[str, set[str]] = {}


class ParentIndex:
    """Maps each OID to the set of parents that point at it.

    In a tree every object has at most one parent (besides database or
    view objects, which are excluded via *ignore_parents*); in a DAG it
    may have several, which is exactly what the extended maintainer of
    :mod:`repro.views.dag` needs.

    Args:
        store: the store to index; the index registers itself.
        ignore_parents: OIDs (e.g. database objects, paper Section 2)
            whose outgoing edges are *not* parent-child edges and must
            not appear in the index.
        ignore_labels: labels marking grouping artifacts whose edges are
            membership, not structure.  Defaults to query ``answer``
            objects (Section 2) and virtual ``view`` objects (Section
            3.1), both of which hold member OIDs of objects that keep
            their real parents elsewhere.
        chain_cache: memoize upward chains (on by default).  Pass False
            to model the pre-memoization per-view subscription cost
            (the E14 baseline).
    """

    #: Labels of grouping artifacts ignored by default.
    DEFAULT_IGNORED_LABELS = frozenset({"answer", "view"})

    def __init__(
        self,
        store: ObjectStore,
        *,
        ignore_parents: set[str] | None = None,
        ignore_labels: frozenset[str] | None = None,
        chain_cache: bool = True,
    ) -> None:
        self._store = store
        self._ignored = set(ignore_parents or ())
        self._ignored_prefixes: list[str] = []
        self._ignored_labels = (
            ignore_labels
            if ignore_labels is not None
            else self.DEFAULT_IGNORED_LABELS
        )
        self._parents: dict[str, set[str]] = {}
        self._chain_caching = chain_cache
        #: oid -> (((oid, label), ..., (top, label)), stopped_at_multi);
        #: truncated where an object is missing from the store, or where
        #: a node has several parents (stopped_at_multi records that).
        self._chain_cache: dict[
            str, tuple[tuple[tuple[str, str], ...], bool]
        ] = {}
        self._rebuild()
        store.subscribe(self._on_update)
        store.subscribe_creations(self._on_creation)

    def _is_ignored(self, oid: str) -> bool:
        if oid in self._ignored or any(
            oid.startswith(prefix) for prefix in self._ignored_prefixes
        ):
            return True
        obj = self._store.peek(oid)
        return obj is not None and obj.label in self._ignored_labels

    # -- construction --------------------------------------------------------

    def _rebuild(self) -> None:
        self._parents.clear()
        for oid in list(self._store.oids()):
            obj = self._store.get_optional(oid)
            if obj is not None and obj.is_set:
                self._index_object(obj)

    def _index_object(self, obj: Object) -> None:
        if self._is_ignored(obj.oid):
            return
        for child in obj.children():
            self._parents.setdefault(child, set()).add(obj.oid)

    def ignore_parent(self, oid: str) -> None:
        """Exclude *oid*'s outgoing edges (e.g. a new database object)."""
        if oid in self._ignored:
            return
        self._ignored.add(oid)
        self._drop_ignored_entries()

    def ignore_prefix(self, prefix: str) -> None:
        """Exclude every OID starting with *prefix* as a parent.

        Materialized views living in the same store as their base use
        this: the view object and its delegates (``MVJ``, ``MVJ.P1``,
        ...) carry membership/copy edges, not base structure.
        """
        if prefix in self._ignored_prefixes:
            return
        self._ignored_prefixes.append(prefix)
        self._drop_ignored_entries()

    def ignore_view(self, view_oid: str) -> None:
        """Exclude a materialized view's object and all its delegates."""
        self.ignore_parent(view_oid)
        self.ignore_prefix(view_oid + ".")

    def _drop_ignored_entries(self) -> None:
        self._chain_cache.clear()
        for child in list(self._parents):
            parents = self._parents[child]
            drop = {p for p in parents if self._is_ignored(p)}
            if drop:
                parents -= drop
                if not parents:
                    del self._parents[child]

    # -- maintenance ----------------------------------------------------------

    def _on_creation(self, obj: Object) -> None:
        if obj.is_set:
            self._index_object(obj)
            # A newly created set with children changes structure, as
            # does a creation filling in a previously-missing OID that a
            # truncated chain recorded.  Ignored creations (delegates of
            # centralized views) change no indexed structure and must
            # not evict chains mid-maintenance.
            if self._chain_cache and (
                obj.oid in self._chain_cache
                or (obj.children() and not self._is_ignored(obj.oid))
            ):
                self._chain_cache.clear()

    def _on_update(self, update: Update) -> None:
        if isinstance(update, Insert):
            if not self._is_ignored(update.parent):
                self._chain_cache.clear()
                self._parents.setdefault(update.child, set()).add(
                    update.parent
                )
        elif isinstance(update, Delete):
            if not self._is_ignored(update.parent):
                self._chain_cache.clear()
                parents = self._parents.get(update.child)
                if parents is not None:
                    parents.discard(update.parent)
                    if not parents:
                        del self._parents[update.child]
        # Modify does not change edges (or labels), so chains survive.

    # -- lookup -----------------------------------------------------------------

    def parents(self, oid: str) -> set[str]:
        """Return the parents of *oid* (empty set if none)."""
        self._store.counters.index_probes += 1
        return set(self._parents.get(oid, ()))

    def parent(self, oid: str) -> str | None:
        """Return the unique parent of *oid*, or None if it has none.

        Raises:
            ValueError: if *oid* has more than one parent (the base is
                not a tree); callers relying on tree structure should
                surface this loudly rather than pick arbitrarily.
        """
        self._store.counters.index_probes += 1
        parents = self._parents.get(oid)
        if not parents:
            return None
        if len(parents) > 1:
            raise ValueError(
                f"object {oid!r} has {len(parents)} parents; base is not a tree"
            )
        return next(iter(parents))

    def has_parent(self, oid: str) -> bool:
        self._store.counters.index_probes += 1
        return bool(self._parents.get(oid))

    # -- memoized upward chains (shared across view maintainers) --------------

    def _upward_chain(
        self, oid: str
    ) -> tuple[tuple[tuple[str, str], ...], bool]:
        """The chain ``((oid, label), ..., (top, label))`` walking up,
        plus whether the walk stopped at a multi-parent node.

        A memo hit charges one ``index_probes`` (and a
        ``chain_cache_hits``); a miss performs the ordinary upward walk
        — one ``object_reads`` + ``index_probes`` per node and one
        ``edge_traversals`` per hop, exactly what the unmemoized
        :func:`~repro.gsdb.traversal.path_between` charges — and caches
        the chain plus all its suffixes.  The walk stops where an
        object is missing from the store (truncated chain), at a
        parentless node, or at a node with several parents (the
        flag, so callers can preserve :meth:`parent`'s loud non-tree
        failure mode).
        """
        counters = self._store.counters
        cached = self._chain_cache.get(oid)
        if cached is not None:
            counters.index_probes += 1
            counters.chain_cache_hits += 1
            return cached
        counters.chain_cache_misses += 1
        entries: list[tuple[str, str]] = []
        stopped_at_multi = False
        current = oid
        while True:
            obj = self._store.get_optional(current)
            if obj is None:
                break
            entries.append((current, obj.label))
            counters.index_probes += 1
            parents = self._parents.get(current)
            if not parents:
                break
            if len(parents) > 1:
                stopped_at_multi = True
                break
            counters.edge_traversals += 1
            current = next(iter(parents))
        result = (tuple(entries), stopped_at_multi)
        if self._chain_caching:
            self._chain_cache[oid] = result
            for i in range(1, len(entries)):
                self._chain_cache.setdefault(
                    entries[i][0], (result[0][i:], stopped_at_multi)
                )
        return result

    def _scan_chain(
        self, ancestor: str, descendant: str
    ) -> tuple[tuple[tuple[str, str], ...], int] | None:
        """Locate *ancestor* in *descendant*'s upward chain.

        Returns ``(chain, index_of_ancestor)``, or None when *ancestor*
        is not on the chain.  Raises ValueError when the walk hit a
        multi-parent node before finding *ancestor* — the same loud
        non-tree failure an unmemoized upward walk via :meth:`parent`
        produces.
        """
        chain, stopped_at_multi = self._upward_chain(descendant)
        if not chain or chain[0][0] != descendant:
            return None
        for i, (oid, _label) in enumerate(chain):
            if oid == ancestor:
                return chain, i
        if stopped_at_multi:
            top = chain[-1][0]
            raise ValueError(
                f"object {top!r} has multiple parents; base is not a tree"
            )
        return None

    def memoized_path(
        self, ancestor: str, descendant: str
    ) -> list[str] | None:
        """``path(ancestor, descendant)`` answered from the chain memo.

        Same contract as :func:`~repro.gsdb.traversal.path_between`
        with a parent index: the label path from *ancestor* down to
        *descendant*, or None when *ancestor* is not an ancestor.
        """
        located = self._scan_chain(ancestor, descendant)
        if located is None:
            return None
        chain, i = located
        labels = [label for (_oid, label) in chain[:i]]
        labels.reverse()
        return labels

    def memoized_chain(
        self, ancestor: str, descendant: str
    ) -> list[str] | None:
        """``[ancestor, ..., descendant]`` OID chain from the memo, or
        None when *ancestor* is not an ancestor of *descendant*."""
        located = self._scan_chain(ancestor, descendant)
        if located is None:
            return None
        chain, i = located
        oids = [entry_oid for (entry_oid, _lab) in chain[: i + 1]]
        oids.reverse()
        return oids

    def chain_to_top(self, oid: str) -> tuple[tuple[str, ...], bool]:
        """OIDs on the upward walk from *oid* to the top of its tree.

        Returns ``(oids, stopped_at_multi)``: the chain starting at
        *oid* (empty when *oid* is absent from the store) and whether
        the walk stopped at a multi-parent node before reaching a root
        — callers screening by ancestry must fail open in that case.
        Served from the memoized chain cache (one warm probe); the
        read-path invalidator (:mod:`repro.serving`) is the main
        consumer.
        """
        chain, stopped_at_multi = self._upward_chain(oid)
        return tuple(entry_oid for entry_oid, _label in chain), stopped_at_multi

    def chain_cache_size(self) -> int:
        """Number of memoized chains (introspection for tests/benches)."""
        return len(self._chain_cache)

    def roots(self) -> set[str]:
        """Return all set-object OIDs with no recorded parent.

        Database objects (ignored parents) are not counted as parents,
        so a database's members with no other parent show up as roots.
        """
        roots: set[str] = set()
        for oid in self._store.oids():
            if self._is_ignored(oid):
                continue
            if not self._parents.get(oid):
                roots.add(oid)
        return roots


class LabelIndex:
    """Maps each label to the set of OIDs carrying it.

    The paper's labels are non-unique (Section 2), so lookups return
    sets.  Used by source wrappers to answer ``fetch X where
    label(X) = l`` efficiently and by the warehouse screening step of
    Section 5.1 (scenario 2).

    The index also maintains a *children-by-label adjacency*: for each
    set object, its out-edges grouped by the child's label.  Frontier
    evaluation (:meth:`~repro.paths.automaton.PathNFA.
    evaluate_frontier`) probes it to touch only the out-edges whose
    label has an automaton transition, instead of scanning and
    discarding the rest.  The adjacency is maintained incrementally
    from the store's creation and update streams; labels are immutable,
    so ``modify`` never dirties it.  An edge inserted before its child
    object exists (``check_references`` off) is parked until the
    creation arrives and the label becomes known.
    """

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        self._by_label: dict[str, set[str]] = {}
        #: parent OID → {child label → child OIDs} (out-edge adjacency).
        self._children: dict[str, dict[str, set[str]]] = {}
        #: dangling child OID → parents awaiting its creation.
        self._pending: dict[str, set[str]] = {}
        for oid in list(store.oids()):
            obj = store.get_optional(oid)
            if obj is not None:
                self._by_label.setdefault(obj.label, set()).add(oid)
        # Second pass so every child's label is already indexed.
        for oid in list(store.oids()):
            obj = store.peek(oid)
            if obj is not None and obj.is_set:
                for child in obj.children():
                    self._link(oid, child)
        store.subscribe_creations(self._on_creation)
        store.subscribe(self._on_update)

    def _link(self, parent: str, child: str) -> None:
        child_obj = self._store.peek(child)
        if child_obj is None:
            self._pending.setdefault(child, set()).add(parent)
            return
        self._children.setdefault(parent, {}).setdefault(
            child_obj.label, set()
        ).add(child)

    def _unlink(self, parent: str, child: str) -> None:
        pending = self._pending.get(child)
        if pending is not None:
            pending.discard(parent)
            if not pending:
                del self._pending[child]
        child_obj = self._store.peek(child)
        if child_obj is None:
            return
        by_label = self._children.get(parent)
        if by_label is None:
            return
        children = by_label.get(child_obj.label)
        if children is not None:
            children.discard(child)
            if not children:
                del by_label[child_obj.label]
                if not by_label:
                    del self._children[parent]

    def _on_creation(self, obj: Object) -> None:
        self._by_label.setdefault(obj.label, set()).add(obj.oid)
        if obj.is_set:
            for child in obj.children():
                self._link(obj.oid, child)
        parents = self._pending.pop(obj.oid, None)
        if parents:
            for parent in parents:
                self._children.setdefault(parent, {}).setdefault(
                    obj.label, set()
                ).add(obj.oid)

    def _on_update(self, update: Update) -> None:
        if isinstance(update, Insert):
            self._link(update.parent, update.child)
        elif isinstance(update, Delete):
            self._unlink(update.parent, update.child)
        # Modify changes neither labels nor edges.

    def forget(self, oid: str, label: str) -> None:
        """Drop a removed object from the index (garbage collection).

        The adjacency drops *oid*'s out-edges; edges pointing *at* the
        removed object are left behind and screened out by readers (a
        missing object is invisible to traversal anyway).
        """
        oids = self._by_label.get(label)
        if oids is not None:
            oids.discard(oid)
            if not oids:
                del self._by_label[label]
        self._children.pop(oid, None)
        self._pending.pop(oid, None)

    def children_by_label(self, parent: str) -> dict[str, set[str]]:
        """Out-edges of *parent* grouped by child label (one probe).

        Returns the internal grouping — callers must not mutate it.
        Children whose object has since been removed may linger; readers
        must confirm existence (the uncharged ``peek``), mirroring how
        traversal treats dangling edges.
        """
        self._store.counters.index_probes += 1
        return self._children.get(parent, _NO_CHILDREN)

    def with_label(self, label: str) -> set[str]:
        """Return all OIDs whose label equals *label*."""
        self._store.counters.index_probes += 1
        return set(self._by_label.get(label, ()))

    def labels(self) -> set[str]:
        """Return every label present in the store."""
        return set(self._by_label)
