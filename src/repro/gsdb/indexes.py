"""Store indexes: the parent (inverse) index and the label index.

Section 4.4 of the paper observes that the cost of ``ancestor(N, p)``
hinges on whether the base database has an "inverse index" from each
node to its parent; without one, evaluation "may require a traversal
from ROOT to N".  :class:`ParentIndex` is that inverse index.
:class:`LabelIndex` additionally maps labels to OIDs, which sources use
to answer ``fetch``-style queries (Section 5.1) without scanning.

Indexes subscribe to a store's update and creation streams and stay
consistent automatically.  Lookups charge ``index_probes`` to the
store's counters so experiment E8 can compare indexed and unindexed
evaluation.
"""

from __future__ import annotations

from repro.gsdb.object import Object
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Delete, Insert, Update


class ParentIndex:
    """Maps each OID to the set of parents that point at it.

    In a tree every object has at most one parent (besides database or
    view objects, which are excluded via *ignore_parents*); in a DAG it
    may have several, which is exactly what the extended maintainer of
    :mod:`repro.views.dag` needs.

    Args:
        store: the store to index; the index registers itself.
        ignore_parents: OIDs (e.g. database objects, paper Section 2)
            whose outgoing edges are *not* parent-child edges and must
            not appear in the index.
        ignore_labels: labels marking grouping artifacts whose edges are
            membership, not structure.  Defaults to query ``answer``
            objects (Section 2) and virtual ``view`` objects (Section
            3.1), both of which hold member OIDs of objects that keep
            their real parents elsewhere.
    """

    #: Labels of grouping artifacts ignored by default.
    DEFAULT_IGNORED_LABELS = frozenset({"answer", "view"})

    def __init__(
        self,
        store: ObjectStore,
        *,
        ignore_parents: set[str] | None = None,
        ignore_labels: frozenset[str] | None = None,
    ) -> None:
        self._store = store
        self._ignored = set(ignore_parents or ())
        self._ignored_prefixes: list[str] = []
        self._ignored_labels = (
            ignore_labels
            if ignore_labels is not None
            else self.DEFAULT_IGNORED_LABELS
        )
        self._parents: dict[str, set[str]] = {}
        self._rebuild()
        store.subscribe(self._on_update)
        store.subscribe_creations(self._on_creation)

    def _is_ignored(self, oid: str) -> bool:
        if oid in self._ignored or any(
            oid.startswith(prefix) for prefix in self._ignored_prefixes
        ):
            return True
        obj = self._store.peek(oid)
        return obj is not None and obj.label in self._ignored_labels

    # -- construction --------------------------------------------------------

    def _rebuild(self) -> None:
        self._parents.clear()
        for oid in list(self._store.oids()):
            obj = self._store.get_optional(oid)
            if obj is not None and obj.is_set:
                self._index_object(obj)

    def _index_object(self, obj: Object) -> None:
        if self._is_ignored(obj.oid):
            return
        for child in obj.children():
            self._parents.setdefault(child, set()).add(obj.oid)

    def ignore_parent(self, oid: str) -> None:
        """Exclude *oid*'s outgoing edges (e.g. a new database object)."""
        if oid in self._ignored:
            return
        self._ignored.add(oid)
        self._drop_ignored_entries()

    def ignore_prefix(self, prefix: str) -> None:
        """Exclude every OID starting with *prefix* as a parent.

        Materialized views living in the same store as their base use
        this: the view object and its delegates (``MVJ``, ``MVJ.P1``,
        ...) carry membership/copy edges, not base structure.
        """
        if prefix in self._ignored_prefixes:
            return
        self._ignored_prefixes.append(prefix)
        self._drop_ignored_entries()

    def ignore_view(self, view_oid: str) -> None:
        """Exclude a materialized view's object and all its delegates."""
        self.ignore_parent(view_oid)
        self.ignore_prefix(view_oid + ".")

    def _drop_ignored_entries(self) -> None:
        for child in list(self._parents):
            parents = self._parents[child]
            drop = {p for p in parents if self._is_ignored(p)}
            if drop:
                parents -= drop
                if not parents:
                    del self._parents[child]

    # -- maintenance ----------------------------------------------------------

    def _on_creation(self, obj: Object) -> None:
        if obj.is_set:
            self._index_object(obj)

    def _on_update(self, update: Update) -> None:
        if isinstance(update, Insert):
            if not self._is_ignored(update.parent):
                self._parents.setdefault(update.child, set()).add(
                    update.parent
                )
        elif isinstance(update, Delete):
            if not self._is_ignored(update.parent):
                parents = self._parents.get(update.child)
                if parents is not None:
                    parents.discard(update.parent)
                    if not parents:
                        del self._parents[update.child]
        # Modify does not change edges.

    # -- lookup -----------------------------------------------------------------

    def parents(self, oid: str) -> set[str]:
        """Return the parents of *oid* (empty set if none)."""
        self._store.counters.index_probes += 1
        return set(self._parents.get(oid, ()))

    def parent(self, oid: str) -> str | None:
        """Return the unique parent of *oid*, or None if it has none.

        Raises:
            ValueError: if *oid* has more than one parent (the base is
                not a tree); callers relying on tree structure should
                surface this loudly rather than pick arbitrarily.
        """
        self._store.counters.index_probes += 1
        parents = self._parents.get(oid)
        if not parents:
            return None
        if len(parents) > 1:
            raise ValueError(
                f"object {oid!r} has {len(parents)} parents; base is not a tree"
            )
        return next(iter(parents))

    def has_parent(self, oid: str) -> bool:
        self._store.counters.index_probes += 1
        return bool(self._parents.get(oid))

    def roots(self) -> set[str]:
        """Return all set-object OIDs with no recorded parent.

        Database objects (ignored parents) are not counted as parents,
        so a database's members with no other parent show up as roots.
        """
        roots: set[str] = set()
        for oid in self._store.oids():
            if self._is_ignored(oid):
                continue
            if not self._parents.get(oid):
                roots.add(oid)
        return roots


class LabelIndex:
    """Maps each label to the set of OIDs carrying it.

    The paper's labels are non-unique (Section 2), so lookups return
    sets.  Used by source wrappers to answer ``fetch X where
    label(X) = l`` efficiently and by the warehouse screening step of
    Section 5.1 (scenario 2).
    """

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        self._by_label: dict[str, set[str]] = {}
        for oid in list(store.oids()):
            obj = store.get_optional(oid)
            if obj is not None:
                self._by_label.setdefault(obj.label, set()).add(oid)
        store.subscribe_creations(self._on_creation)

    def _on_creation(self, obj: Object) -> None:
        self._by_label.setdefault(obj.label, set()).add(obj.oid)

    def forget(self, oid: str, label: str) -> None:
        """Drop a removed object from the index (garbage collection)."""
        oids = self._by_label.get(label)
        if oids is not None:
            oids.discard(oid)
            if not oids:
                del self._by_label[label]

    def with_label(self, label: str) -> set[str]:
        """Return all OIDs whose label equals *label*."""
        self._store.counters.index_probes += 1
        return set(self._by_label.get(label, ()))

    def labels(self) -> set[str]:
        """Return every label present in the store."""
        return set(self._by_label)
