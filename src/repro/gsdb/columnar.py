"""Epoch-versioned columnar snapshots: CSR adjacency over dense rows.

The interpreted read path walks Python dict-of-set structures one
OID-string at a time.  MV4PG's materialized property-graph views (and
Szárnyas's relational IVM encodings) get their throughput from compact
adjacency layouts instead; this module is that layout for the repro's
GSDB, built with the stdlib only:

* a dense ``OID ↔ int`` row mapping (``oid_of`` list / ``row_of`` dict,
  rows assigned in sorted-OID order at build time),
* per-label CSR adjacency — for each label, an ``array('I')`` offsets
  column of length ``rows+1`` and an ``array('I')`` targets column, so
  "children of row r carrying label l" is one C-level slice,
* a combined all-labels CSR for label-blind sweeps (GC mark), and
* a ``bytearray`` alive bitset tombstoning removed rows.

Snapshots are **epoch-versioned and refreshed by delta**.  A snapshot
remembers the store's update-log position it reflects; ``refresh()``
replays only ``log.since(position)``.  Creations and removals bypass
the update log (they are not basic updates, paper Section 4.1), so the
snapshot also subscribes to the store's creation/removal listeners and
stamps each such event with the log position at which it happened;
delta replay merges the two streams in log order.  When the pending
delta (or the accumulated patch overlay) grows past
``rebuild_threshold`` × rows, the snapshot rebuilds from scratch
instead — delta cost is proportional to the delta, rebuild cost to the
graph, and the threshold picks whichever is cheaper.

Soundness (the staleness guard): every reader goes through
:meth:`current`, which either brings the snapshot fully up to date
(one atomic synchronous refresh; the store cannot change mid-refresh
in this single-threaded design) or returns ``None`` — and a ``None``
makes the caller fall back to the interpreted path, charging
``kernel_fallbacks``.  There is no code path that serves rows from a
snapshot whose ``log_position`` trails the store's log or that has
unapplied creation/removal events.  Re-creating a previously removed
OID is the one event delta replay refuses to patch (old CSR edges
reference the tombstoned row); it flags a full rebuild instead.

Sharding: :class:`ShardedColumnarSnapshot` keeps one per-shard snapshot
(each seeing only its shard's objects and intra-shard edges; edges to
other shards are *not* pended) and stitches them into a global-row
:class:`ShardedSnapshotView` using the store's
:class:`~repro.gsdb.sharding.BorderIndex` for cross-shard edges.  Any
border mutation bumps at least one shard's event/log stream, so the
tuple of shard epochs fingerprints the stitched view.  With
``stitch_borders=False`` the facade refuses to serve
(``current() is None``) and every reader degrades fail-open to the
interpreted path, exactly as the unstitched parent index does.

Work is charged in the kernel's own currency: ``snapshot_refreshes``
per epoch advanced, ``snapshot_rows_scanned`` per row touched by
builds, deltas, and :meth:`gather` sweeps.  Columnar rows are copies,
not base objects, so none of it lands in ``total_base_accesses`` —
experiment E18 reports the two currencies side by side.

MVCC-by-epoch (experiment E20): :meth:`ColumnarSnapshot.freeze`
captures the snapshot's exact current state as an immutable
:class:`EpochView` — columns that only ever grow or get replaced
(``oid_of``/``label_of``/``row_of``/CSR arrays) are shared with a row
clamp, columns mutated in place (the alive bitset, the patch overlay,
the value column) are copied — so concurrent readers can keep
evaluating on a frozen epoch while the live snapshot refreshes
underneath them.  Atomic *values* are imaged alongside structure
(``value_of``; ``modify`` replay writes the cell in place, uncharged —
a column write, not a row scan) so WHERE conditions evaluate on the
frozen epoch without touching the live store.
:class:`SnapshotRetention` keeps a ring of recently published epochs
with pin-counted reclamation: a pinned epoch is never reclaimed
(explicit reclaim raises :class:`~repro.errors.PinnedEpochError`;
capacity eviction skips it and retries when the pin drops).
"""

from __future__ import annotations

import threading
from array import array
from typing import Callable, Iterable, Sequence

from repro.errors import PinnedEpochError
from repro.gsdb.object import Object
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Delete, Insert, Modify, Update

#: Queued creation/removal event: (kind, oid, label, is_set, children,
#: atomic value, log position at event time).  Removals carry no
#: label/children/value; set objects carry ``_SET_VALUE``.
_Event = tuple[str, str, str, bool, tuple[str, ...], object, int]

#: Sentinel stored in the value column for set-typed rows (atomic
#: values can legitimately be any scalar, including falsy ones).
_SET_VALUE = object()


class ColumnarSnapshot:
    """A single store's columnar image, refreshed by delta.

    Implements the *snapshot view protocol* consumed by
    :mod:`repro.paths.kernel`: ``nrows``, :meth:`row`, :meth:`oid`,
    :meth:`label_names`, :meth:`gather`, plus ``counters``.

    Args:
        store: the :class:`~repro.gsdb.store.ObjectStore` to image.
        rebuild_threshold: rebuild from scratch when the pending delta
            (or the patch overlay + tombstones) exceeds this fraction
            of the row count.
        auto_refresh: when True (default) :meth:`current` refreshes a
            stale snapshot in place; when False a stale snapshot
            answers ``current() -> None`` and readers fall back to the
            interpreted path until :meth:`refresh` is called.
        external: predicate marking OIDs that live outside this store
            (another shard); edges to external children are omitted —
            the sharded facade supplies them from the border index.
        counters: where snapshot work is charged; defaults to the
            store's counters.
    """

    def __init__(
        self,
        store: ObjectStore,
        *,
        rebuild_threshold: float = 0.25,
        auto_refresh: bool = True,
        external: Callable[[str], bool] | None = None,
        counters=None,
    ) -> None:
        if rebuild_threshold <= 0:
            raise ValueError("rebuild_threshold must be positive")
        self._store = store
        self.rebuild_threshold = rebuild_threshold
        self.auto_refresh = auto_refresh
        self._external = external
        self.counters = counters if counters is not None else store.counters
        self.enabled = True
        #: Epoch counter: bumped once per refresh that changed anything.
        self.epoch = 0
        self.refreshes = 0
        self.full_rebuilds = 0
        self.delta_refreshes = 0
        # -- columnar state (populated by _rebuild) -----------------------
        self.oid_of: list[str] = []
        self.row_of: dict[str, int] = {}
        self.label_of: list[str] = []
        self.value_of: list = []
        self._alive = bytearray()
        self._dead = 0
        self._labels: set[str] = set()
        self._label_csr: dict[str, tuple[array, array]] = {}
        self._all_csr: tuple[array, array] | None = None
        self._csr_rows = 0
        #: row -> {label -> set of child rows}: full adjacency override
        #: for rows touched since the last CSR build.
        self._patched: dict[int, dict[str, set[int]]] = {}
        #: rowless child OID -> parent rows whose value references it.
        self._pending: dict[str, set[int]] = {}
        # -- staleness bookkeeping ----------------------------------------
        self._built = False
        self._needs_rebuild = False
        self._log_pos = 0
        self._events: list[_Event] = []
        store.subscribe_creations(self._on_creation)
        store.subscribe_removals(self._on_removal)

    # -- event capture (creations/removals bypass the update log) ---------

    def _on_creation(self, obj: Object) -> None:
        if not self._built:
            return
        children = tuple(sorted(obj.children())) if obj.is_set else ()
        value = _SET_VALUE if obj.is_set else obj.atomic_value()
        self._events.append(
            (
                "c",
                obj.oid,
                obj.label,
                obj.is_set,
                children,
                value,
                len(self._store.log),
            )
        )

    def _on_removal(self, obj: Object) -> None:
        if not self._built:
            return
        self._events.append(
            ("r", obj.oid, "", False, (), None, len(self._store.log))
        )

    # -- freshness ---------------------------------------------------------

    @property
    def nrows(self) -> int:
        return len(self.oid_of)

    def is_fresh(self) -> bool:
        """Does the snapshot reflect the store's exact current state?"""
        return (
            self._built
            and not self._needs_rebuild
            and not self._events
            and self._log_pos == len(self._store.log)
        )

    def current(self) -> "ColumnarSnapshot | None":
        """The snapshot to read from, or None to force a fallback.

        Never returns a stale snapshot: either the refresh runs here
        (``auto_refresh``) or staleness yields ``None``.
        """
        if not self.enabled:
            return None
        if self.is_fresh():
            return self
        if not self.auto_refresh:
            return None
        self.refresh()
        return self

    def disable(self) -> None:
        """Stop serving; every reader falls back until re-enabled."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    # -- refresh -----------------------------------------------------------

    def refresh(self) -> "ColumnarSnapshot":
        """Bring the snapshot up to date (delta replay or full rebuild)."""
        if self.is_fresh():
            return self
        delta = (len(self._store.log) - self._log_pos) + len(self._events)
        threshold = self.rebuild_threshold * max(1, self.nrows)
        if self._needs_rebuild or not self._built or delta > threshold:
            self._rebuild()
            self.full_rebuilds += 1
        else:
            self._apply_delta()
            self.delta_refreshes += 1
            # Compact when the overlay outgrows the threshold: gather
            # stays slice-speed only while patches/tombstones are rare.
            if len(self._patched) + self._dead > threshold:
                self._rebuild()
                self.full_rebuilds += 1
        self.epoch += 1
        self.refreshes += 1
        self.counters.snapshot_refreshes += 1
        return self

    def _is_external(self, oid: str) -> bool:
        return self._external is not None and self._external(oid)

    def _rebuild(self) -> None:
        store = self._store
        peek = store.peek
        oids = list(store.oids())
        nrows = len(oids)
        self.oid_of = oids
        self.row_of = {oid: row for row, oid in enumerate(oids)}
        row_of = self.row_of
        label_of: list[str] = []
        value_of: list = []
        objs: list[Object] = []
        for oid in oids:
            obj = peek(oid)
            objs.append(obj)
            label_of.append(obj.label)
            value_of.append(_SET_VALUE if obj.is_set else obj.atomic_value())
        self.label_of = label_of
        self.value_of = value_of
        self._labels = set(label_of)
        self._alive = bytearray(b"\xff" * ((nrows + 7) >> 3))
        self._dead = 0
        self._patched = {}
        self._pending = {}
        # CSR build: count pass, prefix sums, fill pass — all array('I').
        zeros = bytes(4 * (nrows + 1))
        all_counts = array("I", zeros)
        label_counts: dict[str, array] = {}
        edges = 0
        pending = self._pending
        for row, obj in enumerate(objs):
            if not obj.is_set:
                continue
            for child in sorted(obj.children()):
                crow = row_of.get(child)
                if crow is None:
                    if not self._is_external(child):
                        pending.setdefault(child, set()).add(row)
                    continue
                all_counts[row + 1] += 1
                counts = label_counts.get(label_of[crow])
                if counts is None:
                    counts = label_counts[label_of[crow]] = array("I", zeros)
                counts[row + 1] += 1
                edges += 1
        for counts in label_counts.values():
            total = 0
            for i in range(1, nrows + 1):
                total += counts[i]
                counts[i] = total
        total = 0
        for i in range(1, nrows + 1):
            total += all_counts[i]
            all_counts[i] = total
        all_targets = array("I", bytes(4 * edges))
        label_targets = {
            label: array("I", bytes(4 * counts[nrows]))
            for label, counts in label_counts.items()
        }
        all_cursor = array("I", all_counts)
        label_cursor = {
            label: array("I", counts) for label, counts in label_counts.items()
        }
        for row, obj in enumerate(objs):
            if not obj.is_set:
                continue
            for child in sorted(obj.children()):
                crow = row_of.get(child)
                if crow is None:
                    continue
                pos = all_cursor[row]
                all_targets[pos] = crow
                all_cursor[row] = pos + 1
                cursor = label_cursor[label_of[crow]]
                pos = cursor[row]
                label_targets[label_of[crow]][pos] = crow
                cursor[row] = pos + 1
        self._all_csr = (all_counts, all_targets)
        self._label_csr = {
            label: (label_counts[label], label_targets[label])
            for label in label_counts
        }
        self._csr_rows = nrows
        self._built = True
        self._needs_rebuild = False
        self._events = []
        self._log_pos = len(store.log)
        self.counters.snapshot_rows_scanned += nrows + edges

    # -- delta replay ------------------------------------------------------

    def _apply_delta(self) -> None:
        updates = self._store.log.since(self._log_pos)
        events = self._events
        self._events = []
        ei = 0
        pos = self._log_pos
        for update in updates:
            while ei < len(events) and events[ei][6] <= pos:
                self._apply_event(events[ei])
                ei += 1
            self._apply_update(update)
            pos += 1
        while ei < len(events):
            self._apply_event(events[ei])
            ei += 1
        self._log_pos = len(self._store.log)

    def _adjacency_of(self, row: int) -> dict[str, set[int]]:
        """Materialize *row*'s adjacency into the patch overlay."""
        adj = self._patched.get(row)
        if adj is None:
            adj = {}
            if row < self._csr_rows:
                label_of = self.label_of
                off, tgt = self._all_csr
                for crow in tgt[off[row] : off[row + 1]]:
                    adj.setdefault(label_of[crow], set()).add(crow)
                self.counters.snapshot_rows_scanned += 1
            self._patched[row] = adj
        return adj

    def _apply_update(self, update: Update) -> None:
        if isinstance(update, Modify):
            # Structure is unchanged; patch the value cell in place.  A
            # missing row is another shard's object (its own snapshot
            # images the value) — never a rebuild trigger.  Uncharged:
            # a column write, not a row scan, so the charged shape of
            # delta refreshes (E18/E19) is unchanged.
            row = self.row_of.get(update.oid)
            if row is not None:
                self.value_of[row] = update.new_value
            return
        prow = self.row_of.get(update.parent)
        if prow is None:
            # The parent predates the snapshot's event stream (should be
            # impossible); refuse to guess and rebuild.
            self._needs_rebuild = True
            return
        crow = self.row_of.get(update.child)
        self.counters.snapshot_rows_scanned += 1
        if isinstance(update, Insert):
            if crow is None:
                if not self._is_external(update.child):
                    self._pending.setdefault(update.child, set()).add(prow)
                return
            adj = self._adjacency_of(prow)
            adj.setdefault(self.label_of[crow], set()).add(crow)
        elif isinstance(update, Delete):
            if crow is None:
                if not self._is_external(update.child):
                    parents = self._pending.get(update.child)
                    if parents is not None:
                        parents.discard(prow)
                        if not parents:
                            del self._pending[update.child]
                return
            adj = self._adjacency_of(prow)
            children = adj.get(self.label_of[crow])
            if children is not None:
                children.discard(crow)

    def _apply_event(self, event: _Event) -> None:
        kind, oid, label, is_set, children, value, _pos = event
        if kind == "c":
            if oid in self.row_of:
                # OID re-created after removal: stale CSR edges point at
                # the tombstoned row — only a rebuild re-links them.
                self._needs_rebuild = True
                return
            row = len(self.oid_of)
            self.oid_of.append(oid)
            self.label_of.append(label)
            self.value_of.append(value)
            self.row_of[oid] = row
            if (row >> 3) >= len(self._alive):
                self._alive.append(0)
            self._alive[row >> 3] |= 1 << (row & 7)
            self._labels.add(label)
            self.counters.snapshot_rows_scanned += 1
            if is_set:
                adj: dict[str, set[int]] = {}
                for child in children:
                    crow = self.row_of.get(child)
                    if crow is None:
                        if not self._is_external(child):
                            self._pending.setdefault(child, set()).add(row)
                        continue
                    adj.setdefault(self.label_of[crow], set()).add(crow)
                self._patched[row] = adj
            waiting = self._pending.pop(oid, None)
            if waiting:
                for prow in waiting:
                    padj = self._adjacency_of(prow)
                    padj.setdefault(label, set()).add(row)
        else:  # removal
            row = self.row_of.get(oid)
            if row is None:
                self._needs_rebuild = True
                return
            mask = 1 << (row & 7)
            if self._alive[row >> 3] & mask:
                self._alive[row >> 3] &= ~mask & 0xFF
                self._dead += 1
            self.counters.snapshot_rows_scanned += 1

    # -- snapshot view protocol -------------------------------------------

    def row(self, oid: str) -> int | None:
        """The live row of *oid*, or None (absent or tombstoned)."""
        row = self.row_of.get(oid)
        if row is None:
            return None
        if self._dead and not (self._alive[row >> 3] & (1 << (row & 7))):
            return None
        return row

    def oid(self, row: int) -> str:
        return self.oid_of[row]

    def label(self, row: int) -> str:
        """The label of *row* (uncharged — a column lookup)."""
        return self.label_of[row]

    def label_names(self) -> list[str]:
        """All labels present, sorted (the wildcard step alphabet)."""
        return sorted(self._labels)

    def atomic_value(self, row: int) -> object | None:
        """The imaged atomic value of *row*, or None for a set row
        (atomic values are scalars, never None — no ambiguity)."""
        value = self.value_of[row]
        return None if value is _SET_VALUE else value

    def gather(self, rows: Sequence[int], label: str | None = None) -> list[int]:
        """Child rows of *rows* (carrying *label*, or any when None).

        One C-level slice per CSR row, a dict lookup per patched row; a
        tombstone filter runs only while dead rows exist.  Charges one
        ``snapshot_rows_scanned`` per input row and per emitted child.
        """
        counters = self.counters
        counters.snapshot_rows_scanned += len(rows)
        out: list[int] = []
        patched = self._patched
        csr = self._all_csr if label is None else self._label_csr.get(label)
        ncsr = self._csr_rows
        alive = self._alive
        dead = self._dead
        for row in rows:
            adj = patched.get(row)
            if adj is not None:
                if label is None:
                    children: Iterable[int] = [
                        crow for bucket in adj.values() for crow in bucket
                    ]
                else:
                    children = adj.get(label, ())
            elif csr is not None and row < ncsr:
                off, tgt = csr
                children = tgt[off[row] : off[row + 1]]
            else:
                continue
            if dead:
                out.extend(
                    crow
                    for crow in children
                    if alive[crow >> 3] & (1 << (crow & 7))
                )
            else:
                out.extend(children)
        counters.snapshot_rows_scanned += len(out)
        return out

    # -- epoch freezing (MVCC, experiment E20) ------------------------------

    def freeze(self, counters=None) -> "EpochView":
        """An immutable image of the snapshot's exact current state.

        Refreshes first (writer-side; cheap when already fresh), then
        captures every column by the cheapest sound means: columns the
        live snapshot only appends to or wholesale-replaces
        (``oid_of``/``label_of``/``row_of``, the CSR arrays) are shared
        with an ``nrows`` clamp; columns mutated in place (the alive
        bitset, the patch overlay, the value column) are copied.
        Reader work on the frozen view is charged to *counters* (the
        serving tier's own currency), defaulting to the snapshot's.
        """
        self.refresh()
        return EpochView(self, counters if counters is not None else self.counters)

    # -- introspection -----------------------------------------------------

    def describe(self) -> str:
        state = "fresh" if self.is_fresh() else "stale"
        return (
            f"epoch {self.epoch} ({state}): {self.nrows} rows "
            f"({self._dead} dead), {len(self._label_csr)} label CSRs, "
            f"{len(self._patched)} patched rows, "
            f"{self.full_rebuilds} rebuilds / "
            f"{self.delta_refreshes} delta refreshes"
        )


class EpochView:
    """One store's columnar state frozen at a single epoch (immutable).

    Implements the snapshot view protocol (``nrows`` / :meth:`row` /
    :meth:`oid` / :meth:`label` / :meth:`label_names` / :meth:`gather`)
    plus :meth:`atomic_value`, so the PR 5 bitset kernels and the
    serving tier's condition evaluation run on it unchanged.  Sharing
    contract with the live :class:`ColumnarSnapshot` it was frozen
    from: ``oid_of``/``label_of`` only ever *append* between rebuilds
    and a rebuild *replaces* the list objects, so sharing them with an
    ``nrows`` clamp is sound; likewise ``row_of`` only gains keys
    (mapping to rows ≥ the frozen ``nrows``, filtered here) and CSR
    arrays are replaced, never mutated.  The alive bitset, patch
    overlay, and value column are mutated in place by delta refreshes,
    so those are copied at freeze time.
    """

    def __init__(self, snapshot: ColumnarSnapshot, counters) -> None:
        self.epoch = snapshot.epoch
        self.counters = counters
        self.nrows = snapshot.nrows
        self.oid_of = snapshot.oid_of
        self.label_of = snapshot.label_of
        self._row_of = snapshot.row_of
        self._value_of = list(snapshot.value_of)
        self._alive = bytes(snapshot._alive)
        self._dead = snapshot._dead
        self._labels = set(snapshot._labels)
        self._label_csr = snapshot._label_csr
        self._all_csr = snapshot._all_csr
        self._csr_rows = snapshot._csr_rows
        self._patched = {
            row: {label: set(bucket) for label, bucket in adj.items()}
            for row, adj in snapshot._patched.items()
        }

    def row(self, oid: str) -> int | None:
        row = self._row_of.get(oid)
        if row is None or row >= self.nrows:
            return None  # absent, or born after this epoch froze
        if self._dead and not (self._alive[row >> 3] & (1 << (row & 7))):
            return None
        return row

    def oid(self, row: int) -> str:
        return self.oid_of[row]

    def label(self, row: int) -> str:
        return self.label_of[row]

    def label_names(self) -> list[str]:
        return sorted(self._labels)

    def atomic_value(self, row: int) -> object | None:
        value = self._value_of[row]
        return None if value is _SET_VALUE else value

    def gather(self, rows: Sequence[int], label: str | None = None) -> list[int]:
        """Identical sweep to :meth:`ColumnarSnapshot.gather`, charged
        to the frozen view's own counters (the reader currency)."""
        counters = self.counters
        counters.snapshot_rows_scanned += len(rows)
        out: list[int] = []
        patched = self._patched
        csr = self._all_csr if label is None else self._label_csr.get(label)
        ncsr = self._csr_rows
        alive = self._alive
        dead = self._dead
        for row in rows:
            adj = patched.get(row)
            if adj is not None:
                if label is None:
                    children: Iterable[int] = [
                        crow for bucket in adj.values() for crow in bucket
                    ]
                else:
                    children = adj.get(label, ())
            elif csr is not None and row < ncsr:
                off, tgt = csr
                children = tgt[off[row] : off[row + 1]]
            else:
                continue
            if dead:
                out.extend(
                    crow
                    for crow in children
                    if alive[crow >> 3] & (1 << (crow & 7))
                )
            else:
                out.extend(children)
        counters.snapshot_rows_scanned += len(out)
        return out

    def describe(self) -> str:
        return (
            f"frozen epoch {self.epoch}: {self.nrows} rows "
            f"({self._dead} dead), {len(self._patched)} patched rows"
        )


class ShardedSnapshotView:
    """Per-shard snapshots stitched into one global row space.

    Shard *k*'s local row *r* appears as global row ``base[k] + r``;
    cross-shard edges come from the sharded store's border index,
    resolved to global rows when the view is stitched (one
    ``border_probes`` charge per border parent expanded by
    :meth:`gather`).  The view is immutable — the facade replaces it
    whenever any shard's epoch moves.
    """

    def __init__(
        self, store, snapshots: list[ColumnarSnapshot], counters
    ) -> None:
        self._store = store
        self._snapshots = snapshots
        self.counters = counters
        self._base: list[int] = []
        total = 0
        for snap in snapshots:
            self._base.append(total)
            total += snap.nrows
        self.nrows = total
        self.epochs = tuple(snap.epoch for snap in snapshots)
        #: Scalar fingerprint mirroring ShardedColumnarSnapshot.epoch,
        #: so retention/freshness code treats both view kinds alike.
        self.epoch = sum(self.epochs)
        labels: set[str] = set()
        for snap in snapshots:
            labels.update(snap._labels)
        self._labels = sorted(labels)
        #: global parent row -> {label -> [global child rows]}.
        self._border_children: dict[int, dict[str, list[int]]] = {}
        for parent, children in store.border._children.items():
            prow = self.row(parent)
            if prow is None:
                continue
            buckets: dict[str, list[int]] = {}
            for child in sorted(children):
                crow = self.row(child)
                if crow is None:
                    continue
                k = store.shard_of(child)
                label = snapshots[k].label_of[crow - self._base[k]]
                buckets.setdefault(label, []).append(crow)
            if buckets:
                self._border_children[prow] = buckets

    def row(self, oid: str) -> int | None:
        k = self._store.shard_of(oid)
        local = self._snapshots[k].row(oid)
        if local is None:
            return None
        return self._base[k] + local

    def oid(self, row: int) -> str:
        k = self._shard_of_row(row)
        return self._snapshots[k].oid_of[row - self._base[k]]

    def label(self, row: int) -> str:
        k = self._shard_of_row(row)
        return self._snapshots[k].label_of[row - self._base[k]]

    def _shard_of_row(self, row: int) -> int:
        from bisect import bisect_right

        return bisect_right(self._base, row) - 1

    def label_names(self) -> list[str]:
        return self._labels

    def atomic_value(self, row: int) -> object | None:
        k = self._shard_of_row(row)
        return self._snapshots[k].atomic_value(row - self._base[k])

    def gather(self, rows: Sequence[int], label: str | None = None) -> list[int]:
        base = self._base
        by_shard: dict[int, list[int]] = {}
        border = self._border_children
        out: list[int] = []
        counters = self.counters
        for row in rows:
            k = self._shard_of_row(row)
            by_shard.setdefault(k, []).append(row - base[k])
            buckets = border.get(row)
            if buckets is not None:
                counters.border_probes += 1
                if label is None:
                    for bucket in buckets.values():
                        out.extend(bucket)
                else:
                    out.extend(buckets.get(label, ()))
        counters.snapshot_rows_scanned += len(out)
        for k in sorted(by_shard):
            offset = base[k]
            local = self._snapshots[k].gather(by_shard[k], label)
            if offset:
                out.extend(crow + offset for crow in local)
            else:
                out.extend(local)
        return out


class ShardedColumnarSnapshot:
    """Snapshot facade for a :class:`~repro.gsdb.sharding.ShardedStore`.

    Holds one :class:`ColumnarSnapshot` per shard (intra-shard edges
    only; each shard's ``external`` predicate excludes foreign OIDs so
    cross-shard edges never pend) and serves a stitched
    :class:`ShardedSnapshotView`, cached until any shard's epoch moves.
    Every border mutation reaches some shard's log or event stream, so
    the epoch tuple is a sound view fingerprint.

    With ``stitch_borders=False`` the facade never serves
    (:meth:`current` is always None) and readers degrade fail-open to
    the interpreted path — the same contract as the unstitched
    :class:`~repro.gsdb.sharding.ShardedParentIndex`.
    """

    def __init__(
        self,
        store,
        *,
        rebuild_threshold: float = 0.25,
        auto_refresh: bool = True,
        stitch_borders: bool = True,
    ) -> None:
        self._store = store
        self.stitch_borders = stitch_borders
        self.auto_refresh = auto_refresh
        self.enabled = True
        self.counters = store.counters
        self._shard_snapshots = [
            ColumnarSnapshot(
                shard,
                rebuild_threshold=rebuild_threshold,
                auto_refresh=auto_refresh,
                external=(lambda oid, k=k: store.shard_of(oid) != k),
                counters=store.counters,
            )
            for k, shard in enumerate(store.shard_stores())
        ]
        self._view: ShardedSnapshotView | None = None

    @property
    def epoch(self) -> int:
        return sum(snap.epoch for snap in self._shard_snapshots)

    def shard_snapshots(self) -> list[ColumnarSnapshot]:
        return list(self._shard_snapshots)

    def is_fresh(self) -> bool:
        return all(snap.is_fresh() for snap in self._shard_snapshots)

    def refresh(self) -> None:
        for snap in self._shard_snapshots:
            snap.refresh()

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def current(self) -> ShardedSnapshotView | None:
        if not self.enabled or not self.stitch_borders:
            return None
        if not self.auto_refresh and not self.is_fresh():
            return None
        self.refresh()
        view = self._view
        epochs = tuple(snap.epoch for snap in self._shard_snapshots)
        if view is None or view.epochs != epochs:
            view = ShardedSnapshotView(
                self._store, self._shard_snapshots, self.counters
            )
            self._view = view
        return view

    def freeze(self, counters=None) -> ShardedSnapshotView:
        """An immutable stitched view of the current epoch tuple.

        Each shard snapshot freezes into an :class:`EpochView`; the
        stitched view captures border children at construction and is
        never re-stitched, so the whole object is immutable.  Requires
        ``stitch_borders`` (an unstitchable facade cannot serve frozen
        epochs any more than live ones).
        """
        if not self.stitch_borders:
            raise ValueError("cannot freeze an unstitched sharded snapshot")
        self.refresh()
        if counters is None:
            counters = self.counters
        return ShardedSnapshotView(
            self._store,
            [snap.freeze(counters) for snap in self._shard_snapshots],
            counters,
        )

    def describe(self) -> str:
        state = "fresh" if self.is_fresh() else "stale"
        rows = sum(snap.nrows for snap in self._shard_snapshots)
        return (
            f"epoch {self.epoch} ({state}): {rows} rows across "
            f"{len(self._shard_snapshots)} shard snapshots; "
            f"stitch_borders={self.stitch_borders}"
        )


class PublishedEpoch:
    """One retained publication: a frozen view plus pin accounting.

    ``seq`` is the ring's monotonically increasing publication number
    (the unit freshness lag is measured in — epochs of *published*
    history, not raw refresh counts).  ``cache`` is an opaque slot the
    serving tier hangs its per-epoch query-cache partition on.
    """

    __slots__ = ("seq", "epoch", "view", "pins", "cache", "reclaimed")

    def __init__(self, seq: int, epoch: int, view) -> None:
        self.seq = seq
        self.epoch = epoch
        self.view = view
        self.pins = 0
        self.cache = None
        self.reclaimed = False

    def __repr__(self) -> str:
        return (
            f"PublishedEpoch(seq={self.seq}, epoch={self.epoch}, "
            f"pins={self.pins})"
        )


class SnapshotRetention:
    """A ring of recently published frozen epochs with pinned reclamation.

    The write path calls :meth:`publish` after each maintenance batch
    (idempotent while nothing changed); readers list retained epochs,
    :meth:`pin` one, evaluate on its immutable view, and :meth:`unpin`.
    Capacity eviction drops the oldest *unpinned* superseded entries;
    an entry a reader still pins is retained past capacity and
    reclaimed lazily when its last pin drops.  Explicitly reclaiming a
    pinned epoch raises :class:`~repro.errors.PinnedEpochError` — there
    is no code path that frees a view a reader holds.

    All ring mutations happen under one small lock; the expensive parts
    (snapshot refresh, freezing) run outside it on the writer thread.
    Bookkeeping is charged to *counters*: ``epochs_published``,
    ``epochs_reclaimed``, and ``snapshot_pins`` per reader pin.
    """

    def __init__(self, manager, *, capacity: int = 4, counters=None) -> None:
        if capacity < 1:
            raise ValueError("retention capacity must be positive")
        self.manager = manager
        self.capacity = capacity
        self.counters = counters if counters is not None else manager.counters
        self._lock = threading.Lock()
        self._entries: list[PublishedEpoch] = []  # oldest .. newest
        self._next_seq = 0

    # -- write side ---------------------------------------------------------

    def publish(self) -> PublishedEpoch:
        """Freeze the store's current state as the newest retained epoch.

        Writer-side only (refresh/freeze read the live snapshot).  When
        nothing changed since the last publication the existing entry
        is returned and no new epoch is minted — publication sequence
        numbers advance only on real change, which is what makes
        ``max_lag_epochs`` a bound on *observed history*, not on time.
        """
        manager = self.manager
        manager.refresh()
        epoch = manager.epoch
        with self._lock:
            latest = self._entries[-1] if self._entries else None
            if latest is not None and latest.epoch == epoch:
                return latest
        view = manager.freeze(self.counters)
        with self._lock:
            entry = PublishedEpoch(self._next_seq, view.epoch, view)
            self._next_seq += 1
            self._entries.append(entry)
            self.counters.epochs_published += 1
            self._evict_locked()
            return entry

    def _evict_locked(self) -> None:
        while len(self._entries) > self.capacity:
            victim = next(
                (e for e in self._entries[:-1] if e.pins == 0), None
            )
            if victim is None:
                break  # every superseded epoch is pinned: retain them all
            self._entries.remove(victim)
            victim.reclaimed = True
            self.counters.epochs_reclaimed += 1

    def reclaim(self, seq: int) -> None:
        """Explicitly drop the publication numbered *seq*.

        Raises :class:`~repro.errors.PinnedEpochError` when a reader
        still pins it, and :class:`KeyError` when it is not retained.
        """
        with self._lock:
            for entry in self._entries:
                if entry.seq == seq:
                    if entry.pins:
                        raise PinnedEpochError(seq, entry.pins)
                    self._entries.remove(entry)
                    entry.reclaimed = True
                    self.counters.epochs_reclaimed += 1
                    return
        raise KeyError(f"no retained epoch publication {seq}")

    # -- read side ----------------------------------------------------------

    def latest(self) -> PublishedEpoch | None:
        with self._lock:
            return self._entries[-1] if self._entries else None

    def entries(self) -> list[PublishedEpoch]:
        """Retained publications, oldest first (a consistent copy)."""
        with self._lock:
            return list(self._entries)

    def pin(self, entry: PublishedEpoch) -> bool:
        """Take a reader pin on *entry*; False when it was already
        reclaimed (the caller re-selects from :meth:`entries`)."""
        with self._lock:
            if entry.reclaimed:
                return False
            entry.pins += 1
            self.counters.snapshot_pins += 1
            return True

    def unpin(self, entry: PublishedEpoch) -> None:
        """Drop a reader pin, lazily evicting over-capacity entries."""
        with self._lock:
            if entry.pins <= 0:
                raise ValueError(f"epoch publication {entry.seq} is not pinned")
            entry.pins -= 1
            self._evict_locked()

    # -- freshness ----------------------------------------------------------

    def store_dirty(self) -> bool:
        """Has the store moved past the newest publication?

        True when there is no publication yet, when the live snapshot
        trails the store, or when the snapshot was refreshed past the
        published epoch without a publish.  Contributes one epoch of
        lag: the next publication is at most one batch away.
        """
        with self._lock:
            latest = self._entries[-1] if self._entries else None
        if latest is None:
            return True
        manager = self.manager
        return not manager.is_fresh() or latest.epoch != manager.epoch

    def lag_of(self, entry: PublishedEpoch) -> int:
        """How many published epochs behind the store *entry* is."""
        with self._lock:
            latest = self._entries[-1] if self._entries else None
        behind = 0 if latest is None else latest.seq - entry.seq
        return behind + (1 if self.store_dirty() else 0)

    def describe(self) -> str:
        with self._lock:
            entries = list(self._entries)
        pins = sum(e.pins for e in entries)
        seqs = ", ".join(str(e.seq) for e in entries)
        return (
            f"{len(entries)} retained epoch(s) [{seqs}] "
            f"(capacity {self.capacity}, {pins} pin(s))"
        )


def enable_columnar(
    store,
    *,
    rebuild_threshold: float = 0.25,
    auto_refresh: bool = True,
    stitch_borders: bool = True,
):
    """Attach a columnar snapshot manager to *store* as ``.columnar``.

    Readers discover it with ``getattr(store, "columnar", None)`` and
    consult ``manager.current()``; a None answer (disabled, stale with
    ``auto_refresh=False``, or unstitched shards) sends them down the
    interpreted path, charging ``kernel_fallbacks``.
    """
    if hasattr(store, "shard_stores"):
        manager = ShardedColumnarSnapshot(
            store,
            rebuild_threshold=rebuild_threshold,
            auto_refresh=auto_refresh,
            stitch_borders=stitch_borders,
        )
    else:
        manager = ColumnarSnapshot(
            store,
            rebuild_threshold=rebuild_threshold,
            auto_refresh=auto_refresh,
        )
    store.columnar = manager
    return manager
