"""Graph structured database (GSDB) substrate — the paper's data model.

Objects follow the OEM model of Section 2: ``<OID, label, type, value>``.
The main entry points are:

* :class:`~repro.gsdb.object.Object` — one OEM object.
* :class:`~repro.gsdb.store.ObjectStore` — a mutable, logged collection.
* :class:`~repro.gsdb.database.DatabaseRegistry` — named databases/views.
* :class:`~repro.gsdb.indexes.ParentIndex` / ``LabelIndex`` — the inverse
  and label indexes of Section 4.4.
* :mod:`~repro.gsdb.traversal` — ``N.p``, ``path()``, ``ancestor()``,
  ``eval()``.
"""

from repro.gsdb.columnar import (
    ColumnarSnapshot,
    EpochView,
    PublishedEpoch,
    ShardedColumnarSnapshot,
    ShardedSnapshotView,
    SnapshotRetention,
    enable_columnar,
)
from repro.gsdb.gc import collect_garbage, reachable_from
from repro.gsdb.database import (
    DatabaseRegistry,
    difference,
    intersect,
    union,
)
from repro.gsdb.indexes import LabelIndex, ParentIndex
from repro.gsdb.object import Object, infer_atomic_type
from repro.gsdb.oid import (
    OidGenerator,
    base_of_delegate,
    delegate_oid,
    is_delegate_of,
    split_delegate_oid,
)
from repro.gsdb.serialization import (
    dump_object,
    dump_store,
    dump_subtree,
    load_store,
    parse_object,
)
from repro.gsdb.sharding import (
    BorderIndex,
    ShardedParentIndex,
    ShardedStore,
    shard_of,
)
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Delete, Insert, Modify, Update, UpdateLog
from repro.gsdb.validation import Shape, validate_store

__all__ = [
    "BorderIndex",
    "ColumnarSnapshot",
    "DatabaseRegistry",
    "Delete",
    "EpochView",
    "Insert",
    "LabelIndex",
    "Modify",
    "Object",
    "ObjectStore",
    "OidGenerator",
    "ParentIndex",
    "PublishedEpoch",
    "Shape",
    "ShardedColumnarSnapshot",
    "SnapshotRetention",
    "ShardedParentIndex",
    "ShardedSnapshotView",
    "ShardedStore",
    "Update",
    "UpdateLog",
    "base_of_delegate",
    "collect_garbage",
    "delegate_oid",
    "difference",
    "dump_object",
    "enable_columnar",
    "dump_store",
    "dump_subtree",
    "infer_atomic_type",
    "intersect",
    "is_delegate_of",
    "load_store",
    "parse_object",
    "reachable_from",
    "shard_of",
    "split_delegate_oid",
    "union",
    "validate_store",
]
