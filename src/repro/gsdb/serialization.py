"""Textual serialization in the paper's angle-bracket syntax.

Example 2 of the paper writes objects as

    < P1, professor, set, {N1, A1, S1, P3} >
    < N1, name, string, 'John' >

with indentation as a visual aid.  This module dumps and parses that
format (without relying on indentation — the set values carry the
structure), so workload fixtures and example scripts can be read the
same way the paper presents them.

Atomic values are encoded as: single-quoted strings (with ``\\'`` and
``\\\\`` escapes), bare integers, bare reals (containing ``.`` or ``e``),
``true``/``false`` booleans.  A ``$`` or other non-numeric prefix-free
token is rejected — use an explicit type tag and a plain number, e.g.
``< S1, salary, dollar, 100000 >``.
"""

from __future__ import annotations

import io
import re
from typing import Iterable, TextIO

from repro.errors import GSDBError
from repro.gsdb.object import Object, SET_TYPE
from repro.gsdb.store import ObjectStore

_LINE_RE = re.compile(r"^\s*<\s*(?P<body>.*?)\s*>\s*$")


class SerializationError(GSDBError):
    """A line could not be parsed as an object."""


# ---------------------------------------------------------------------------
# Dumping
# ---------------------------------------------------------------------------


def dump_object(obj: Object) -> str:
    """Render one object on one line in paper syntax."""
    if obj.is_set:
        inner = ", ".join(obj.sorted_children())
        return f"< {obj.oid}, {obj.label}, set, {{{inner}}} >"
    return (
        f"< {obj.oid}, {obj.label}, {obj.type}, "
        f"{_encode_value(obj.atomic_value())} >"
    )


def dump_store(
    store: ObjectStore, *, oids: Iterable[str] | None = None
) -> str:
    """Render objects (all, or a chosen subset) one per line."""
    selected = sorted(oids) if oids is not None else list(store.oids())
    lines = [dump_object(store.get(oid)) for oid in selected]
    return "\n".join(lines) + ("\n" if lines else "")


def dump_subtree(store: ObjectStore, root: str) -> str:
    """Render *root* and its descendants with paper-style indentation.

    Purely presentational (for examples and debugging); the indented
    form is also parseable because indentation is ignored on input.
    Shared or cyclic structure is rendered once and then referenced.
    """
    out = io.StringIO()
    seen: set[str] = set()

    def _write(oid: str, depth: int) -> None:
        obj = store.get_optional(oid)
        indent = "    " * depth
        if obj is None:
            out.write(f"{indent}< {oid}, ?, ?, ? >  (missing)\n")
            return
        out.write(indent + dump_object(obj) + "\n")
        if not obj.is_set or oid in seen:
            return
        seen.add(oid)
        for child in obj.sorted_children():
            _write(child, depth + 1)

    _write(root, 0)
    return out.getvalue()


def _encode_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    raise SerializationError(f"cannot encode value {value!r}")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_object(line: str) -> Object:
    """Parse one ``< OID, label, type, value >`` line."""
    match = _LINE_RE.match(line)
    if match is None:
        raise SerializationError(f"not an object line: {line!r}")
    body = match.group("body")
    parts = _split_fields(body, line)
    if len(parts) != 4:
        raise SerializationError(
            f"expected 4 fields, got {len(parts)}: {line!r}"
        )
    oid, label, type_tag, value_text = (part.strip() for part in parts)
    if type_tag == SET_TYPE:
        children = _parse_set(value_text, line)
        return Object.set_object(oid, label, children)
    return Object(oid, label, type_tag, _decode_value(value_text, line))


def load_store(
    text: str | TextIO,
    store: ObjectStore | None = None,
) -> ObjectStore:
    """Parse many object lines into a store (creating one if needed).

    Blank lines and ``#`` comments are skipped.  Reference checking is
    deferred until all lines are read, then restored to the store's
    setting.
    """
    if isinstance(text, str):
        lines = text.splitlines()
    else:
        lines = text.read().splitlines()
    if store is None:
        store = ObjectStore()
    previous = store.check_references
    store.check_references = False
    try:
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            store.add_object(parse_object(stripped))
    finally:
        store.check_references = previous
    return store


def _split_fields(body: str, line: str) -> list[str]:
    """Split on commas at depth zero (set braces and quotes protect)."""
    parts: list[str] = []
    current: list[str] = []
    depth = 0
    in_string = False
    i = 0
    while i < len(body):
        char = body[i]
        if in_string:
            current.append(char)
            if char == "\\" and i + 1 < len(body):
                current.append(body[i + 1])
                i += 1
            elif char == "'":
                in_string = False
        elif char == "'":
            in_string = True
            current.append(char)
        elif char == "{":
            depth += 1
            current.append(char)
        elif char == "}":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
        i += 1
    if in_string or depth != 0:
        raise SerializationError(f"unbalanced quotes or braces: {line!r}")
    parts.append("".join(current))
    return parts


def _parse_set(text: str, line: str) -> list[str]:
    if not (text.startswith("{") and text.endswith("}")):
        raise SerializationError(f"set value must be braced: {line!r}")
    inner = text[1:-1].strip()
    if not inner:
        return []
    return [part.strip() for part in inner.split(",")]


def _decode_value(text: str, line: str):
    if text.startswith("'"):
        if not text.endswith("'") or len(text) < 2:
            raise SerializationError(f"unterminated string: {line!r}")
        inner = text[1:-1]
        return inner.replace("\\'", "'").replace("\\\\", "\\")
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        if any(mark in text for mark in (".", "e", "E")):
            return float(text)
        return int(text)
    except ValueError:
        raise SerializationError(
            f"cannot decode atomic value {text!r}: {line!r}"
        ) from None
