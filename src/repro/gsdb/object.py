"""The OEM object: ``<OID, label, type, value>``.

Section 2 of the paper adopts the OEM model [PGMW95]: every object has a
universally unique OID, a non-unique string label, a type, and a value.
Objects are either *atomic* (integer, string, real, ...) or *set*-typed,
in which case the value is a set of OIDs of other objects (the outgoing
graph edges).

Design notes
------------
* ``Object`` is a mutable class with ``__slots__``: set values change in
  place under ``insert``/``delete`` updates and atomic values change
  under ``modify``.  All mutation is expected to go through an
  :class:`~repro.gsdb.store.ObjectStore` so listeners and indexes stay
  consistent; direct mutation is for construction only.
* The atomic type is normally inferred from the Python value (the paper
  notes atomic types can be inferred; Figure 2 omits them), but callers
  may pass an explicit domain type such as ``"dollar"`` (object ``S1`` in
  Example 2 has type ``dollar``).
"""

from __future__ import annotations

import sys
from typing import AbstractSet, Iterable, Iterator

from repro.errors import TypeMismatchError

#: The type tag of set-valued objects.
SET_TYPE = "set"

#: Python types allowed as atomic values, and their inferred type tags.
_INFERRED_TYPES: tuple[tuple[type, str], ...] = (
    (bool, "boolean"),  # must precede int: bool is a subclass of int
    (int, "integer"),
    (float, "real"),
    (str, "string"),
    (bytes, "binary"),
)

AtomicValue = bool | int | float | str | bytes


def infer_atomic_type(value: AtomicValue) -> str:
    """Return the inferred type tag for an atomic Python value.

    >>> infer_atomic_type(45)
    'integer'
    >>> infer_atomic_type("John")
    'string'
    """
    for python_type, tag in _INFERRED_TYPES:
        if isinstance(value, python_type):
            return tag
    raise TypeMismatchError(
        f"unsupported atomic value type: {type(value).__name__}"
    )


class Object:
    """A single OEM object.

    Attributes:
        oid: the object identifier (unique within a store).
        label: a descriptive, non-unique string (paper Section 2).
        type: ``"set"`` for set objects, else an atomic type tag such as
            ``"integer"``, ``"string"``, or a domain tag like ``"dollar"``.
        value: a ``set[str]`` of child OIDs for set objects, or an atomic
            Python value for atomic objects.
    """

    __slots__ = ("oid", "label", "type", "value")

    def __init__(
        self,
        oid: str,
        label: str,
        type: str,
        value: AtomicValue | AbstractSet[str] | Iterable[str],
    ) -> None:
        if not oid:
            raise ValueError("OID must be a non-empty string")
        if not isinstance(label, str):
            raise TypeMismatchError("label must be a string")
        self.oid = oid
        # Labels are immutable and heavily compared (automaton steps,
        # screening); interning makes equality an identity check.
        self.label = sys.intern(label)
        self.type = type
        if type == SET_TYPE:
            if isinstance(value, (str, bytes)):
                raise TypeMismatchError(
                    "set object value must be an iterable of OIDs, "
                    "not a single string"
                )
            self.value: AtomicValue | set[str] = set(value)
        else:
            if isinstance(value, (set, frozenset)):
                raise TypeMismatchError(
                    f"atomic object {oid!r} cannot hold a set value"
                )
            self.value = value

    # -- constructors -----------------------------------------------------

    @classmethod
    def atomic(
        cls, oid: str, label: str, value: AtomicValue, type: str | None = None
    ) -> "Object":
        """Build an atomic object, inferring the type tag if not given.

        >>> Object.atomic("A1", "age", 45).type
        'integer'
        >>> Object.atomic("S1", "salary", 100_000, type="dollar").type
        'dollar'
        """
        return cls(oid, label, type or infer_atomic_type(value), value)

    @classmethod
    def set_object(
        cls, oid: str, label: str, children: Iterable[str] = ()
    ) -> "Object":
        """Build a set object whose value is the given child OIDs."""
        return cls(oid, label, SET_TYPE, children)

    # -- predicates and accessors -----------------------------------------

    @property
    def is_set(self) -> bool:
        """True if this is a set (edge-bearing) object."""
        return self.type == SET_TYPE

    @property
    def is_atomic(self) -> bool:
        """True if this is an atomic (leaf-valued) object."""
        return self.type != SET_TYPE

    def children(self) -> set[str]:
        """Return the child OID set of a set object.

        Raises:
            TypeMismatchError: on an atomic object.
        """
        if not self.is_set:
            raise TypeMismatchError(f"object {self.oid!r} is atomic")
        assert isinstance(self.value, set)
        return self.value

    def sorted_children(self) -> list[str]:
        """Return child OIDs in sorted order (deterministic iteration)."""
        return sorted(self.children())

    def atomic_value(self) -> AtomicValue:
        """Return the value of an atomic object.

        Raises:
            TypeMismatchError: on a set object.
        """
        if self.is_set:
            raise TypeMismatchError(f"object {self.oid!r} is a set object")
        assert not isinstance(self.value, set)
        return self.value

    # -- copying -----------------------------------------------------------

    def copy(self, *, oid: str | None = None) -> "Object":
        """Return a copy, optionally with a different OID.

        Used when creating delegates: the delegate has a fresh semantic
        OID but copies label, type, and value (paper Section 3.2).  Set
        values are copied shallowly (a new ``set`` of the same OIDs).
        """
        value = set(self.value) if self.is_set else self.value
        return Object(oid or self.oid, self.label, self.type, value)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Object):
            return NotImplemented
        return (
            self.oid == other.oid
            and self.label == other.label
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:  # hash by identity key only; value mutates
        return hash(self.oid)

    def __repr__(self) -> str:
        if self.is_set:
            inner = ", ".join(self.sorted_children())
            return f"<{self.oid}, {self.label}, set, {{{inner}}}>"
        return f"<{self.oid}, {self.label}, {self.type}, {self.value!r}>"

    def __iter__(self) -> Iterator[str]:
        """Iterate child OIDs of a set object in sorted order."""
        return iter(self.sorted_children())
