"""Graph navigation primitives: ``N.p``, ``path()``, ``ancestor()``, ``eval()``.

These are the functions the paper's Algorithm 1 (Section 4.3) is built
from.  The paper deliberately isolates them because they are the only
computations that touch base data; in a warehouse they become source
queries (Section 5.1).  Each function here exists in two flavours where
relevant:

* an *indexed* form using a :class:`~repro.gsdb.indexes.ParentIndex`
  (the paper's "inverse index"), walking upward in O(depth); and
* an *unindexed* form that searches downward from a root, modelling the
  expensive traversal the paper warns about (Section 4.4).

All traversal charges ``edge_traversals`` on the store's counters so
experiment E8 can quantify the difference.

Counter charging, per function
------------------------------
* :func:`follow_path` — one ``edge_traversals`` per out-edge examined;
  one ``object_reads`` per *admitted* child (the label test itself uses
  the uncharged :meth:`~repro.gsdb.store.ObjectStore.peek`, modelling a
  label check resolved on the already-fetched parent page) plus one
  ``object_reads`` per frontier set-object expanded.
* :func:`path_between` / :func:`chain_between` with a
  :class:`~repro.gsdb.indexes.ParentIndex` — delegated to the index's
  memoized chain cache when it has one: a warm chain costs a single
  ``index_probes`` (plus a ``chain_cache_hits`` note) and **zero** base
  accesses; a cold chain charges the classic upward walk (one
  ``object_reads`` + ``index_probes`` per node, one ``edge_traversals``
  per hop).  Without an index, a downward DFS charging one
  ``edge_traversals`` + ``object_reads`` per edge examined.  The
  downward searches expand children in ascending OID order (like
  :func:`all_paths_between`) so their access counts are deterministic
  across runs and hash seeds — they stop early on finding the target,
  and an unordered walk would turn every benchmark count into an
  iteration-order lottery.
* :func:`ancestor_by_path` / :func:`ancestors_by_path` — one
  ``object_reads`` per node visited, one ``edge_traversals`` per upward
  hop, ``index_probes`` inside the parent lookups.
* :func:`descendants` / :func:`is_reachable` / :func:`ancestor_via_root`
  — downward searches: one ``edge_traversals`` per edge, one
  ``object_reads`` per set object expanded.

Constant paths only live here; path *expressions* (wildcards) are
evaluated by :mod:`repro.paths.automaton`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.gsdb.indexes import ParentIndex
from repro.gsdb.object import AtomicValue
from repro.gsdb.store import ObjectStore

#: A condition over atomic values, e.g. ``lambda v: v <= 45``.
ValuePredicate = Callable[[AtomicValue], bool]


def children_of(store: ObjectStore, oid: str) -> set[str]:
    """Return the child OIDs of *oid* (empty for atomic objects)."""
    obj = store.get_optional(oid)
    if obj is None or not obj.is_set:
        return set()
    return set(obj.children())


def follow_path(
    store: ObjectStore, start: str, path: Sequence[str]
) -> set[str]:
    """Return ``start.path`` — all objects reached by the label sequence.

    Paper Section 2: ``N.p`` denotes the set of objects reachable from
    ``N`` following path ``p``.  An empty path yields ``{start}``.
    Labels are matched on the objects *reached*, i.e. an edge
    ``N1 -> N2`` matches label ``l`` when ``label(N2) == l``.
    """
    # Label screening via the uncharged peek (when the store has one):
    # only children that pass the label test are charged an object
    # read.  Remote store shims have no free peek — there a label check
    # genuinely costs a lookup, so fall back to the charged path.
    peek = getattr(store, "peek", None)
    frontier = {start}
    for label in path:
        next_frontier: set[str] = set()
        for oid in frontier:
            obj = store.get_optional(oid)
            if obj is None or not obj.is_set:
                continue
            for child_oid in obj.children():
                store.counters.edge_traversals += 1
                if peek is not None:
                    child = peek(child_oid)
                    if child is not None and child.label == label:
                        store.counters.object_reads += 1
                        next_frontier.add(child_oid)
                else:
                    child = store.get_optional(child_oid)
                    if child is not None and child.label == label:
                        next_frontier.add(child_oid)
        frontier = next_frontier
        if not frontier:
            break
    return frontier


def eval_path_condition(
    store: ObjectStore,
    start: str,
    path: Sequence[str],
    cond: ValuePredicate,
) -> set[str]:
    """The paper's ``eval(N, p, cond)``.

    Returns the OIDs in ``start.path`` whose atomic value satisfies
    *cond*.  Set objects reached by the path never satisfy an atomic
    condition (``cond()`` "accepts a set of atomic objects", Section 2).
    With an empty path, the condition is tested on *start* itself.
    """
    satisfied: set[str] = set()
    for oid in follow_path(store, start, path):
        obj = store.get_optional(oid)
        if obj is None or obj.is_set:
            continue
        if cond(obj.atomic_value()):
            satisfied.add(oid)
    return satisfied


def descendants(store: ObjectStore, start: str) -> set[str]:
    """Return every object reachable from *start* (excluding it).

    Cycle-safe, so it is usable on general graphs, not just trees.
    """
    seen: set[str] = set()
    stack = [start]
    while stack:
        oid = stack.pop()
        obj = store.get_optional(oid)
        if obj is None or not obj.is_set:
            continue
        for child in obj.children():
            store.counters.edge_traversals += 1
            if child not in seen:
                seen.add(child)
                stack.append(child)
    seen.discard(start)
    return seen


def is_reachable(store: ObjectStore, start: str, target: str) -> bool:
    """True if *target* is *start* or a descendant of *start*."""
    if start == target:
        return True
    seen: set[str] = {start}
    stack = [start]
    while stack:
        oid = stack.pop()
        obj = store.get_optional(oid)
        if obj is None or not obj.is_set:
            continue
        # Sorted for deterministic counts under the early exit.
        for child in sorted(obj.children(), reverse=True):
            store.counters.edge_traversals += 1
            if child == target:
                return True
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return False


# ---------------------------------------------------------------------------
# path(N1, N2) — unique in a tree
# ---------------------------------------------------------------------------


def path_between(
    store: ObjectStore,
    ancestor: str,
    descendant: str,
    *,
    parent_index: ParentIndex | None = None,
) -> list[str] | None:
    """The paper's ``path(N1, N2)``: the label path from N1 down to N2.

    Returns the list of labels (starting with the label of one of N1's
    direct children, ending with N2's label; Section 4.3), ``[]`` when
    ``ancestor == descendant``, or ``None`` when N1 is not an ancestor
    of N2 (the paper's ``path(N1, N2) = ∅``).

    With a parent index the walk is upward from *descendant* and costs
    O(depth) — and when the index carries a memoized chain cache
    (:meth:`~repro.gsdb.indexes.ParentIndex.memoized_path`) a repeated
    lookup costs a single index probe with zero base accesses.  Without
    an index it is a depth-first search downward from *ancestor*.  The
    base must be a tree below *ancestor* for the path to be unique; on
    a DAG use :func:`all_paths_between`.
    """
    if ancestor == descendant:
        return []
    if parent_index is not None:
        memo = getattr(parent_index, "memoized_path", None)
        if memo is not None:
            return memo(ancestor, descendant)
        return _path_upward(store, ancestor, descendant, parent_index)
    return _path_downward(store, ancestor, descendant)


def _path_upward(
    store: ObjectStore,
    ancestor: str,
    descendant: str,
    parent_index: ParentIndex,
) -> list[str] | None:
    labels: list[str] = []
    current = descendant
    while current != ancestor:
        obj = store.get_optional(current)
        if obj is None:
            return None
        labels.append(obj.label)
        parent = parent_index.parent(current)
        if parent is None:
            return None
        store.counters.edge_traversals += 1
        current = parent
    labels.reverse()
    return labels


def _path_downward(
    store: ObjectStore, ancestor: str, descendant: str
) -> list[str] | None:
    # Iterative DFS carrying the label path; trees have a unique answer,
    # and we guard against cycles so misuse degrades gracefully.
    # Children are pushed in reverse-sorted order so the stack pops them
    # ascending — the early exit below would otherwise make the charged
    # edge_traversals depend on set iteration order (PYTHONHASHSEED).
    stack: list[tuple[str, list[str]]] = [(ancestor, [])]
    seen: set[str] = {ancestor}
    while stack:
        oid, labels = stack.pop()
        obj = store.get_optional(oid)
        if obj is None or not obj.is_set:
            continue
        for child in sorted(obj.children(), reverse=True):
            store.counters.edge_traversals += 1
            child_obj = store.get_optional(child)
            if child_obj is None:
                continue
            child_labels = labels + [child_obj.label]
            if child == descendant:
                return child_labels
            if child not in seen:
                seen.add(child)
                stack.append((child, child_labels))
    return None


def all_paths_between(
    store: ObjectStore, ancestor: str, descendant: str, *, max_paths: int = 10_000
) -> list[list[str]]:
    """All simple label paths from *ancestor* to *descendant* (DAG bases).

    Section 6 notes that on a DAG "there may be more than one path
    between two objects"; the DAG maintainer needs them all.  Paths are
    returned sorted for determinism.  *max_paths* bounds pathological
    graphs.
    """
    if ancestor == descendant:
        return [[]]
    results: list[list[str]] = []

    def _dfs(oid: str, labels: list[str], on_stack: set[str]) -> None:
        if len(results) >= max_paths:
            return
        obj = store.get_optional(oid)
        if obj is None or not obj.is_set:
            return
        for child in sorted(obj.children()):
            store.counters.edge_traversals += 1
            child_obj = store.get_optional(child)
            if child_obj is None:
                continue
            child_labels = labels + [child_obj.label]
            if child == descendant:
                results.append(child_labels)
            if child not in on_stack:
                on_stack.add(child)
                _dfs(child, child_labels, on_stack)
                on_stack.discard(child)

    _dfs(ancestor, [], {ancestor})
    return sorted(results)


# ---------------------------------------------------------------------------
# ancestor(N, p)
# ---------------------------------------------------------------------------


def ancestor_by_path(
    store: ObjectStore,
    oid: str,
    path: Sequence[str],
    parent_index: ParentIndex,
) -> str | None:
    """The paper's ``ancestor(N, p)``: the X with ``path(X, N) == p``.

    Walks upward one edge per path label (checking that the label of
    each visited node matches the corresponding path suffix), so it
    requires the inverse index.  Returns None (the paper's ∅) when no
    such ancestor exists.  In a tree the answer is unique.
    """
    current = oid
    for label in reversed(path):
        obj = store.get_optional(current)
        if obj is None or obj.label != label:
            return None
        parent = parent_index.parent(current)
        if parent is None:
            return None
        store.counters.edge_traversals += 1
        current = parent
    return current


def ancestors_by_path(
    store: ObjectStore,
    oid: str,
    path: Sequence[str],
    parent_index: ParentIndex,
) -> set[str]:
    """All X with a path instance ``path(X, N) == p`` — DAG variant.

    On a DAG a node can have several parents, so each upward step fans
    out.  Used by :mod:`repro.views.dag`.
    """
    frontier = {oid}
    for label in reversed(path):
        next_frontier: set[str] = set()
        for current in frontier:
            obj = store.get_optional(current)
            if obj is None or obj.label != label:
                continue
            for parent in parent_index.parents(current):
                store.counters.edge_traversals += 1
                next_frontier.add(parent)
        frontier = next_frontier
        if not frontier:
            break
    return frontier


def ancestor_via_root(
    store: ObjectStore, root: str, oid: str, path: Sequence[str]
) -> str | None:
    """Unindexed ``ancestor(N, p)``: search downward from *root*.

    The paper: "If there does not exist such an index, evaluating the
    same function may require a traversal from ROOT to N."  We find the
    root-to-*oid* path, then cut it |p| steps before the end and verify
    the labels match.
    """
    full = _path_downward(store, root, oid)
    if full is None:
        if root == oid:
            full = []
        else:
            return None
    if len(path) > len(full):
        return None
    suffix = full[len(full) - len(path):]
    if list(suffix) != list(path):
        return None
    # Re-walk from root for len(full) - len(path) steps to find the node.
    steps = len(full) - len(path)
    return _node_at_depth(store, root, oid, steps)


def _node_at_depth(
    store: ObjectStore, root: str, descendant: str, depth: int
) -> str | None:
    """Return the node at *depth* steps from *root* on the path to
    *descendant* (tree bases)."""
    if depth == 0:
        return root
    # DFS remembering the OID chain; reverse-sorted push = ascending
    # exploration, keeping counts deterministic (see _path_downward).
    stack: list[tuple[str, list[str]]] = [(root, [root])]
    seen = {root}
    while stack:
        oid, chain = stack.pop()
        obj = store.get_optional(oid)
        if obj is None or not obj.is_set:
            continue
        for child in sorted(obj.children(), reverse=True):
            store.counters.edge_traversals += 1
            new_chain = chain + [child]
            if child == descendant:
                if depth < len(new_chain):
                    return new_chain[depth]
                return None
            if child not in seen:
                seen.add(child)
                stack.append((child, new_chain))
    return None


def chain_between(
    store: ObjectStore,
    ancestor: str,
    descendant: str,
    *,
    parent_index: ParentIndex | None = None,
) -> list[str] | None:
    """The OID chain ``[ancestor, ..., descendant]`` along the tree path.

    Returns None when *ancestor* is not an ancestor of *descendant*.
    Companion to :func:`path_between` when callers need the nodes, not
    the labels (e.g. warehouse monitors reporting the path to an updated
    object, Section 5.1 scenario 3).  Like :func:`path_between`, the
    answer comes from the parent index's memoized chain cache when one
    is available.
    """
    if ancestor == descendant:
        return [ancestor]
    if parent_index is not None:
        memo = getattr(parent_index, "memoized_chain", None)
        if memo is not None:
            return memo(ancestor, descendant)
        chain = [descendant]
        current = descendant
        while current != ancestor:
            parent = parent_index.parent(current)
            if parent is None:
                return None
            store.counters.edge_traversals += 1
            chain.append(parent)
            current = parent
        chain.reverse()
        return chain
    # Reverse-sorted push = ascending exploration, keeping counts
    # deterministic under the early exit (see _path_downward).
    stack: list[tuple[str, list[str]]] = [(ancestor, [ancestor])]
    seen = {ancestor}
    while stack:
        oid, chain = stack.pop()
        obj = store.get_optional(oid)
        if obj is None or not obj.is_set:
            continue
        for child in sorted(obj.children(), reverse=True):
            store.counters.edge_traversals += 1
            if child == descendant:
                return chain + [child]
            if child not in seen:
                seen.add(child)
                stack.append((child, chain + [child]))
    return None


def collect_labels(store: ObjectStore, oids: Iterable[str]) -> list[str]:
    """Labels of the given objects, in OID-sorted order (helper)."""
    return [store.get(oid).label for oid in sorted(oids)]
