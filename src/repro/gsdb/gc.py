"""Garbage collection of unreferenced objects.

Paper Section 4.1, on ``delete(N1, N2)``: "(If no objects point to N2
any more, N2 may be garbage collected.  However, we do not discuss
garbage collection here.)"  This module supplies the missing piece: a
mark-and-sweep over a store, rooted at the objects the caller declares
reachable-by-definition — query entry points, database objects (whose
membership edges keep their members alive), and view objects (whose
delegates they keep alive).

Collection never runs implicitly; deletes leave detached subtrees in
place (Algorithm 1's delete case *reads* the detached subtree), and the
application sweeps when it chooses to.
"""

from __future__ import annotations

from typing import Iterable

from repro.gsdb.store import ObjectStore


def reachable_from(store: ObjectStore, roots: Iterable[str]) -> set[str]:
    """Every OID reachable from *roots* (inclusive) via set values.

    When the store maintains a columnar snapshot (``store.columnar``)
    the mark runs as a bitset sweep over the all-labels CSR
    (:func:`~repro.paths.kernel.reachable_on_snapshot`) — same set,
    label-blind, one C-level slice per row.  The interpreted walk
    below charges nothing (it uses uncharged peeks), so the kernel
    path only adds its own ``snapshot_rows_scanned`` bookkeeping.
    """
    manager = getattr(store, "columnar", None)
    if manager is not None:
        view = manager.current()
        if view is not None:
            from repro.paths.kernel import reachable_on_snapshot

            return reachable_on_snapshot(view, roots)
        store.counters.kernel_fallbacks += 1
    seen: set[str] = set()
    stack = [oid for oid in roots if oid in store]
    seen.update(stack)
    while stack:
        oid = stack.pop()
        obj = store.peek(oid)
        if obj is None or not obj.is_set:
            continue
        for child in obj.children():
            if child not in seen and child in store:
                seen.add(child)
                stack.append(child)
    return seen


def collect_garbage(
    store: ObjectStore,
    roots: Iterable[str],
    *,
    dry_run: bool = False,
) -> set[str]:
    """Remove (or, with *dry_run*, just report) unreachable objects.

    Args:
        store: the store to sweep.
        roots: OIDs alive by definition.  Callers must include every
            grouping object — databases, views, clusters — since their
            membership edges are reachability too.
        dry_run: report the garbage set without removing anything.

    Returns:
        The set of collected (or collectable) OIDs.
    """
    alive = reachable_from(store, roots)
    garbage = {oid for oid in store.oids() if oid not in alive}
    if not dry_run:
        for oid in sorted(garbage):
            store.remove_object(oid)
    return garbage


def catalog_roots(catalog) -> set[str]:
    """The live-by-definition roots of a :class:`ViewCatalog`:
    registered databases (and views registered as databases) plus every
    materialized-view object in the catalog's store."""
    roots: set[str] = set()
    for name in catalog.registry.names():
        roots.add(catalog.registry.resolve(name).oid)
    for name, view in catalog.materialized_views.items():
        if view.view_store is catalog.store:
            roots.add(view.oid)
    for name in catalog.virtual_views:
        roots.add(name)
    return roots
