"""Columnar delta frames: a coalesced update batch as rows + bitmasks.

The interpreted dispatcher screens a batch update-at-a-time — for every
(update, view) pair it re-asks "does this label matter to that view?"
even though many views share the same label gate.  A
:class:`DeltaFrame` re-expresses the batch column-wise, the way
discrimination networks (Rete / GDN-style IVM, see PAPERS.md) express
working memory: one row per update, integer bitmasks over row
positions for each op kind, and a *gate label* column (the child's
label for edge ops, the modified object's label for modifies) resolved
once through the store's uncharged ``peek``.

Label screening then becomes mask algebra: "edge updates whose child
label is in {item, val}" is the OR of two per-label masks, computed
once per distinct label signature per frame and shared by every view
with the same gate (:meth:`DeltaFrame.mask_for` — ``batch_screens``
counts distinct masks, not views, making the sharing visible).

Frames carry *global* batch positions so a sharded dispatcher can cut
one batch into per-shard frames (intake order preserved within each)
and merge screen verdicts back deterministically by position —
:mod:`repro.views.batch_kernel` consumes them either way.

Cost accounting: building a frame charges one ``delta_rows_scanned``
per row (the columnar write-path currency — see
:mod:`repro.instrumentation.counters`); mask construction charges one
``batch_screens`` per distinct signature computed.
"""

from __future__ import annotations

from typing import Sequence

from repro.gsdb.updates import Delete, Insert, Modify, Update


def iter_bits(mask: int):
    """Yield the set bit positions of *mask*, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class DeltaFrame:
    """One applied, coalesced batch in columnar form.

    Attributes:
        updates: the batch slice, in intake order.
        positions: global batch position of each local row (identity
            for an unsharded frame).
        anchors: per row, the OID whose root chain screening needs —
            the edge's parent for Insert/Delete, the object for Modify.
        gate_labels: per row, the screen's label gate operand — the
            child's label for edge ops, the object's own label for
            modifies; None when the object no longer exists.
        insert_mask / delete_mask / modify_mask: bitmasks over local
            row positions by op kind (``edge_mask`` is their union for
            Insert/Delete).
    """

    def __init__(
        self,
        updates: Sequence[Update],
        store,
        *,
        positions: Sequence[int] | None = None,
        counters=None,
    ) -> None:
        self.updates = list(updates)
        n = len(self.updates)
        self.positions = (
            list(range(n)) if positions is None else list(positions)
        )
        if len(self.positions) != n:
            raise ValueError("positions must cover every update")
        peek = getattr(store, "peek", None) or store.get_optional
        anchors: list[str] = []
        gate_labels: list[str | None] = []
        insert_mask = delete_mask = modify_mask = 0
        label_masks: dict[str, int] = {}
        for i, update in enumerate(self.updates):
            bit = 1 << i
            if isinstance(update, Modify):
                modify_mask |= bit
                anchors.append(update.oid)
                obj = peek(update.oid)
            elif isinstance(update, (Insert, Delete)):
                if isinstance(update, Insert):
                    insert_mask |= bit
                else:
                    delete_mask |= bit
                anchors.append(update.parent)
                obj = peek(update.child)
            else:  # unknown op kind: the kernel must not screen it
                raise TypeError(f"unsupported update: {update!r}")
            label = None if obj is None else obj.label
            gate_labels.append(label)
            if label is not None:
                label_masks[label] = label_masks.get(label, 0) | bit
        self.anchors = anchors
        self.gate_labels = gate_labels
        self.insert_mask = insert_mask
        self.delete_mask = delete_mask
        self.modify_mask = modify_mask
        self.edge_mask = insert_mask | delete_mask
        self._label_masks = label_masks
        self._mask_cache: dict[tuple[str, frozenset[str] | None], int] = {}
        self.counters = counters
        if counters is not None:
            counters.delta_rows_scanned += n

    def __len__(self) -> int:
        return len(self.updates)

    def touched(self) -> list[str]:
        """The distinct screen anchors, sorted (region sweep targets)."""
        return sorted(set(self.anchors))

    def mask_for(self, kind: str, labels: frozenset[str] | None) -> int:
        """Rows of op *kind* whose gate label is in *labels*.

        *kind* is ``"edge"`` (Insert/Delete) or ``"modify"``; *labels*
        is None for a wildcard gate (every row of the kind passes).
        Masks are cached per (kind, signature): the first view asking
        for a signature pays one ``batch_screens``, every later view
        sharing the gate reuses the mask for free — the Rete-style
        sharing experiment E19 measures.
        """
        key = (kind, labels)
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        base = self.edge_mask if kind == "edge" else self.modify_mask
        if labels is None:
            mask = base
        else:
            gate = 0
            for label in labels:
                gate |= self._label_masks.get(label, 0)
            mask = base & gate
        self._mask_cache[key] = mask
        if self.counters is not None:
            self.counters.batch_screens += 1
        return mask


__all__ = ["DeltaFrame", "iter_bits"]
