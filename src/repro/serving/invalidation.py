"""Precise incremental invalidation of cached query answers.

One update must evict exactly the cache entries whose answer it could
have changed — not the whole cache.  The screens reuse the maintenance
dispatcher's machinery (:func:`~repro.views.dispatcher.
expression_labels` and the per-update :class:`~repro.views.dispatcher.
PathContext` over the parent index's memoized chains), specialized to
*many queries per update*:

Label gate (``insert``/``delete``)
    An edge update can change ``entry.sel_path`` or a condition witness
    set only if the moved child's label can appear on an instance of
    the select expression or of some comparison path — every instance
    path through the edge carries the child's label at the edge's
    position.  Entries index into per-label buckets
    (wildcard-bearing expressions into an "any label" bucket), so the
    per-update work scales with the *candidate* entries, not the cache
    size.

Reachability screen
    The update's anchor (the edge's parent; the modified object) must
    lie in the entry point's subtree.  One upward chain per update
    (:meth:`~repro.views.dispatcher.PathContext.chain_set`, served from
    the parent index's memo) is tested against every candidate's entry
    OID.  The anchor's own chain is unaffected by the update itself
    (an edge insert/delete changes the *child*'s ancestry, not the
    parent's), so the final-state chain is sound for both inserts and
    deletes.  Database and view entry points are special: their
    grouping edges are excluded from the parent index, so the chain
    tops out at a member — the screen then tests the chain against the
    entry object's member set.  No index, a multi-parent stop, or an
    unresolvable label fails *open* (invalidate), never closed.

Witness gate (``modify``)
    A value change can only affect entries *with* a condition, and only
    when the modified atom's label can be the final label of some
    comparison path (answers are OID sets — structure and labels are
    untouched by ``modify``).

Scope watch
    Membership edges of a query's ``WITHIN``/``ANS INT`` databases (and
    of a database used as the entry point) change the answer without
    any path instance moving, so updates whose parent *is* one of those
    database objects invalidate before any label gate runs.

The oracle (:func:`repro.chaos.oracle.audit_serving`) cross-checks all
of this: served answers must stay byte-identical to fresh uncached
evaluation under interleaved update/query streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.indexes import ParentIndex
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Modify, Update
from repro.paths.expression import LabelSegment, PathExpression
from repro.paths.kernel import reaches_on_snapshot
from repro.query.ast import condition_paths
from repro.serving.cache import CacheKey, QueryCache
from repro.views.dispatcher import PathContext, expression_labels


def final_labels(expression: PathExpression) -> frozenset[str] | None:
    """Labels an instance of *expression* may end on; None means "any".

    An empty expression's witness is the candidate object itself, whose
    label is unconstrained here — also None.
    """
    if not expression.segments:
        return None
    last = expression.segments[-1]
    if isinstance(last, LabelSegment):
        return frozenset(last.labels)
    return None


@dataclass(frozen=True)
class QueryScreen:
    """Per-entry invalidation metadata, fixed at caching time.

    ``edge_labels``/``witness_labels`` of None mean "any label" (a
    wildcard somewhere in the governing expressions).
    ``scope_parents`` are the database-object OIDs whose membership
    edges the entry depends on.
    """

    key: CacheKey
    entry_oid: str
    edge_labels: frozenset[str] | None
    witness_labels: frozenset[str] | None
    has_condition: bool
    scope_parents: frozenset[str]


def build_screen(key: CacheKey, registry: DatabaseRegistry) -> QueryScreen:
    """Derive the invalidation screen for a canonical cache key."""
    cond_paths = (
        condition_paths(key.condition) if key.condition is not None else []
    )
    edge_labels: frozenset[str] | None
    labels = expression_labels(key.select_path)
    if labels is None:
        edge_labels = None
    else:
        edge_labels = frozenset(labels)
        for path in cond_paths:
            more = expression_labels(path)
            if more is None:
                edge_labels = None
                break
            edge_labels |= more
    witness_labels: frozenset[str] | None = frozenset()
    for path in cond_paths:
        finals = final_labels(path)
        if finals is None:
            witness_labels = None
            break
        witness_labels |= finals
    scope_parents = set()
    for name in (key.within, key.ans_int):
        if name is not None:
            scope_parents.add(registry.resolve(name).oid)
    if key.entry_oid in registry.grouping_oids():
        scope_parents.add(key.entry_oid)
    return QueryScreen(
        key=key,
        entry_oid=key.entry_oid,
        edge_labels=edge_labels,
        witness_labels=witness_labels,
        has_condition=key.condition is not None,
        scope_parents=frozenset(scope_parents),
    )


class Invalidator:
    """Store subscriber mapping each update to the entries it may touch.

    Entries are bucketed by the labels their screens admit, so one
    update screens only its label's candidates plus the wildcard
    bucket.  Chains and labels are resolved through a fresh per-update
    :class:`~repro.views.dispatcher.PathContext` (its memos do not
    self-invalidate, so a context must never outlive its update).
    """

    def __init__(
        self,
        store: ObjectStore,
        cache: QueryCache,
        *,
        parent_index: ParentIndex | None = None,
        border_index=None,
        subscribe: bool = True,
    ) -> None:
        self._store = store
        self._cache = cache
        self._parent_index = parent_index
        #: Cross-shard edge catalogue of a sharded store (see
        #: :class:`~repro.gsdb.sharding.BorderIndex`).  When present,
        #: an upward chain ending at a node with cross-shard parents is
        #: *truncated at a shard border*, not complete — the
        #: reachability screen must fail open (and count it) or risk
        #: serving stale answers for entries on other shards.
        self._border_index = border_index
        self._screens: dict[CacheKey, QueryScreen] = {}
        self._edge: dict[str, set[CacheKey]] = {}
        self._edge_any: set[CacheKey] = set()
        self._witness: dict[str, set[CacheKey]] = {}
        self._witness_any: set[CacheKey] = set()
        self._scope: dict[str, set[CacheKey]] = {}
        if subscribe:
            store.subscribe(self.on_update)

    # -- registration --------------------------------------------------------

    def register(self, screen: QueryScreen) -> None:
        """Track a freshly cached entry's screen."""
        key = screen.key
        self._screens[key] = screen
        if screen.edge_labels is None:
            self._edge_any.add(key)
        else:
            for label in screen.edge_labels:
                self._edge.setdefault(label, set()).add(key)
        if screen.has_condition:
            if screen.witness_labels is None:
                self._witness_any.add(key)
            else:
                for label in screen.witness_labels:
                    self._witness.setdefault(label, set()).add(key)
        for oid in screen.scope_parents:
            self._scope.setdefault(oid, set()).add(key)

    def forget(self, key: CacheKey) -> None:
        """Drop a departed entry's screen (cache eviction callback)."""
        screen = self._screens.pop(key, None)
        if screen is None:
            return
        self._edge_any.discard(key)
        if screen.edge_labels is not None:
            for label in screen.edge_labels:
                bucket = self._edge.get(label)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del self._edge[label]
        self._witness_any.discard(key)
        if screen.witness_labels is not None:
            for label in screen.witness_labels:
                bucket = self._witness.get(label)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del self._witness[label]
        for oid in screen.scope_parents:
            bucket = self._scope.get(oid)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._scope[oid]

    def tracked(self) -> int:
        """Number of tracked screens (introspection; equals cache size)."""
        return len(self._screens)

    # -- the per-update screen ----------------------------------------------

    def on_update(self, update: Update) -> int:
        """Invalidate every entry *update* may affect; returns the count."""
        if not self._screens:
            return 0
        ctx = PathContext(self._store, self._parent_index)
        hit: set[CacheKey] = set()
        if isinstance(update, Modify):
            label = ctx.label(update.oid)
            candidates = set(self._witness_any)
            if label is None:  # unknown atom: fail open over all witnesses
                for bucket in self._witness.values():
                    candidates |= bucket
            else:
                candidates |= self._witness.get(label, set())
            anchor = update.oid
        else:
            hit |= self._scope.get(update.parent, set())
            label = ctx.label(update.child)
            candidates = set(self._edge_any)
            if label is None:  # dangling child: fail open over all labels
                for bucket in self._edge.values():
                    candidates |= bucket
            else:
                candidates |= self._edge.get(label, set())
            anchor = update.parent
        candidates -= hit
        if candidates:
            # A fresh columnar snapshot refines the fail-open branches
            # below: downward reachability entry → anchor is the exact
            # dependency test (it passes through grouping edges and DAG
            # multi-parent routes the upward chain cannot resolve).
            # Resolved lazily, at most once per update, and only when a
            # branch would otherwise fail open.
            view_memo: list = []

            def snapshot_view():
                if not view_memo:
                    view_memo.append(self._snapshot_view())
                return view_memo[0]

            chain = ctx.chain_set(anchor)
            if self._stopped_at_border(anchor, chain):
                view = snapshot_view()
                if view is not None:
                    for key in candidates:
                        if reaches_on_snapshot(
                            view, self._screens[key].entry_oid, anchor
                        ):
                            hit.add(key)
                else:
                    # Ancestry unresolvable past a shard border: every
                    # candidate fails open, attributed to its own
                    # counter (not the generic miss bucket) so
                    # experiment E17 can report cross-shard
                    # invalidation precision.
                    self._store.counters.failopen_cross_shard += 1
                    hit |= candidates
            else:
                for key in candidates:
                    if self._reaches_entry(
                        self._screens[key], chain, anchor, snapshot_view
                    ):
                        hit.add(key)
        for key in sorted(hit, key=str):
            self._cache.invalidate(key)
        return len(hit)

    def _stopped_at_border(
        self,
        anchor: str,
        chain: tuple[frozenset[str], bool] | None,
    ) -> bool:
        """Did *anchor*'s upward walk die at a shard border?

        Only meaningful when serving a sharded store (a border index
        was supplied).  True when there is no chain at all, or when the
        chain's top node has parents recorded on another shard — the
        per-shard walk ended not at a root but at an edge it cannot
        see.  A border-stitched index
        (:class:`~repro.gsdb.sharding.ShardedParentIndex`) resolves
        such chains fully, so this stays False and invalidation stays
        precise.
        """
        border = self._border_index
        if border is None:
            return False
        if chain is None:
            return True
        if self._parent_index is None:
            return True
        oids, _stopped = self._parent_index.chain_to_top(anchor)
        return bool(oids) and border.has_cross_parents(oids[-1])

    def _snapshot_view(self):
        """The store's fresh columnar view, if one is being maintained.

        Used only to *refine* branches that would otherwise fail open —
        absence never makes invalidation less precise than today, so no
        ``kernel_fallbacks`` is charged here.
        """
        manager = getattr(self._store, "columnar", None)
        if manager is None:
            return None
        return manager.current()

    def _reaches_entry(
        self,
        screen: QueryScreen,
        chain: tuple[frozenset[str], bool] | None,
        anchor: str,
        snapshot_view,
    ) -> bool:
        """Is the update's anchor inside the entry point's subtree?

        Fails open without an index or at a multi-parent stop — unless
        a fresh columnar snapshot can answer the downward reachability
        question exactly.  A grouping entry (database or view object)
        never appears on a parent-index chain — the chain tops out at
        one of its members, so the member set is tested instead.
        """
        if chain is None:
            view = snapshot_view()
            if view is not None:
                return reaches_on_snapshot(view, screen.entry_oid, anchor)
            return True
        oids, stopped_at_multi = chain
        if stopped_at_multi:
            view = snapshot_view()
            if view is not None:
                return reaches_on_snapshot(view, screen.entry_oid, anchor)
            return True
        if screen.entry_oid in oids:
            return True
        peek = getattr(self._store, "peek", self._store.get_optional)
        entry = peek(screen.entry_oid)
        return (
            entry is not None
            and entry.is_set
            and not oids.isdisjoint(entry.children())
        )

    # -- out-of-band invalidation -------------------------------------------

    def invalidate_touching(self, oid: str) -> int:
        """Invalidate every entry referencing *oid* as entry point,
        delegate of it (``oid.*``), or scope database.

        The warehouse path uses this: its views are maintained by
        direct delegate surgery, not store updates, so the warehouse
        pings the server after each view-changing notification.
        """
        prefix = oid + "."
        hit = [
            key
            for key, screen in self._screens.items()
            if screen.entry_oid == oid
            or screen.entry_oid.startswith(prefix)
            or oid in screen.scope_parents
        ]
        for key in sorted(hit, key=str):
            self._cache.invalidate(key)
        return len(hit)
