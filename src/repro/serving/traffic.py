"""Open-loop drivers for the serving tiers (experiment E20).

:func:`run_concurrent` replays a :func:`~repro.workloads.traffic.
poisson_schedule` against an :class:`~repro.serving.mvcc.
AsyncQueryServer`: every arrival becomes an asyncio task at its
scheduled instant, so any number of reads are in flight while write
events apply update bursts and publish new epochs.  :func:`run_sequential`
replays the *same* schedule against the one-request-at-a-time
:class:`~repro.serving.server.QueryServer` — the baseline whose
saturation the MVCC tier is measured against.

Both report latency from the **scheduled arrival** (open-loop: queueing
delay counts), exact-nearest-rank tail percentiles via
:mod:`repro.instrumentation.stats`, achieved throughput over the actual
wall clock, and a freshness audit: every served answer's epoch lag is
recorded against the lag its request allowed, so a single violated
policy anywhere in a run is visible (and E20 asserts there are none).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.instrumentation.stats import latency_summary
from repro.serving.mvcc import AsyncQueryServer, EpochServer, FreshnessPolicy
from repro.serving.server import QueryServer
from repro.workloads.traffic import TrafficEnv, TrafficEvent
from repro.workloads.updates import UpdateMix, UpdateStream


@dataclass
class TrafficReport:
    """Outcome of one open-loop replay."""

    label: str
    offered_rate: float
    reads: int = 0
    writes: int = 0
    updates_applied: int = 0
    wall_seconds: float = 0.0
    read_latencies: list[float] = field(default_factory=list)
    write_latencies: list[float] = field(default_factory=list)
    lag_histogram: dict[int, int] = field(default_factory=dict)
    sources: dict[str, int] = field(default_factory=dict)
    violations: int = 0

    def _observe(self, lag: int, allowed: int | None, source: str) -> None:
        self.lag_histogram[lag] = self.lag_histogram.get(lag, 0) + 1
        self.sources[source] = self.sources.get(source, 0) + 1
        if allowed is not None and lag > allowed:
            self.violations += 1

    @property
    def requests(self) -> int:
        return self.reads + self.writes

    @property
    def throughput(self) -> float:
        """Achieved requests/second over the actual wall clock.  Equal
        to the offered rate while the server keeps up; below it once
        the server saturates and the run stretches past the horizon."""
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    def read_summary(self) -> dict[str, float]:
        return latency_summary(self.read_latencies)

    def describe(self) -> dict:
        out = {
            "label": self.label,
            "offered_rate": self.offered_rate,
            "reads": self.reads,
            "writes": self.writes,
            "updates_applied": self.updates_applied,
            "wall_seconds": self.wall_seconds,
            "throughput": self.throughput,
            "violations": self.violations,
            "lag_histogram": dict(sorted(self.lag_histogram.items())),
            "sources": dict(sorted(self.sources.items())),
        }
        if self.read_latencies:
            out["read_latency"] = self.read_summary()
        if self.write_latencies:
            out["write_latency"] = latency_summary(self.write_latencies)
        return out


def _traffic_stream(
    store, env: TrafficEnv, seed: int, mix: UpdateMix | None
) -> UpdateStream:
    protected = {env.root} | env.registry.grouping_oids()
    return UpdateStream(
        store,
        seed=seed,
        mix=mix if mix is not None else UpdateMix(),
        protected=frozenset(protected),
        protected_prefixes=("ANS",),
    )


class RecordedBurst(NamedTuple):
    """One pre-generated write burst: the fresh atomic objects the
    stream minted (``(oid, label, value)``) plus the update sequence."""

    creations: list[tuple[str, str, object]]
    updates: list


def record_write_batches(
    env: TrafficEnv,
    events: list[TrafficEvent],
    *,
    seed: int = 1,
    mix: UpdateMix | None = None,
) -> list[RecordedBurst]:
    """Pre-generate the write bursts for *events* against *env*.

    :class:`UpdateStream` picks each update by scanning the live store
    for candidates — workload *generation* cost that would otherwise
    sit inside the measured serve loop and dilute both tiers' wall
    clocks equally.  Recording the bursts ahead of time against a
    pristine replica environment (same tree seed ⇒ same store) leaves
    only *application* cost in the run.  The recorded updates replay
    validly because the replica and the measured store start identical
    and see the identical update sequence.  Fresh atomics the stream
    mints (an insert's new child) are store side effects outside the
    update algebra, so each burst records them alongside its updates.
    """
    stream = _traffic_stream(env.store, env, seed, mix)
    bursts: list[RecordedBurst] = []
    for event in events:
        if event.kind != "write":
            continue
        known = set(env.store.oids())
        updates = list(stream.run(event.batch))
        creations = []
        for update in updates:
            child = getattr(update, "child", None)
            if child is not None and child not in known:
                obj = env.store.peek(child)
                if obj is not None and obj.is_atomic:
                    creations.append((child, obj.label, obj.value))
                known.add(child)
        bursts.append(RecordedBurst(creations, updates))
    return bursts


def make_writer(
    core: EpochServer,
    env: TrafficEnv,
    *,
    seed: int = 1,
    mix: UpdateMix | None = None,
    batches: list[RecordedBurst] | None = None,
):
    """A write-burst closure for the MVCC tier: apply a batch of valid
    random updates under the core's write mutex, then publish the new
    epoch.  Returns the number of updates applied.

    With *batches* (from :func:`record_write_batches`), bursts replay
    pre-generated updates in order instead of generating on the fly.
    """
    if batches is not None:
        queue = iter(batches)

        def replay(batch: int) -> int:
            # Pop AND apply under the write mutex: concurrent write
            # tasks may race, and recorded bursts only replay validly
            # in recording order.
            with core.write_mutex:
                burst = next(queue)
                for oid, label, value in burst.creations:
                    core.store.add_atomic(oid, label, value)
                core.apply_batch(burst.updates)  # applies + publishes
            return len(burst.updates)

        return replay
    stream = _traffic_stream(env.store, env, seed, mix)

    def write(batch: int) -> int:
        with core.write_mutex:
            applied = len(stream.run(batch))
            core.publish()
        return applied

    return write


async def _replay_async(
    server: AsyncQueryServer,
    events: list[TrafficEvent],
    writer,
    report: TrafficReport,
) -> None:
    loop = asyncio.get_running_loop()
    start = loop.time()
    tasks: list[asyncio.Task] = []

    async def do_read(event: TrafficEvent, scheduled: float) -> None:
        answer = await server.read(event.query, event.policy)
        latency = loop.time() - scheduled
        # Task callbacks resume on the event loop thread, so plain
        # mutation of the report is race-free.
        report.reads += 1
        report.read_latencies.append(latency)
        allowed = FreshnessPolicy.parse(event.policy).max_lag_epochs
        report._observe(answer.lag, allowed, answer.source)

    async def do_write(event: TrafficEvent, scheduled: float) -> None:
        applied = await asyncio.to_thread(writer, event.batch)
        report.writes += 1
        report.updates_applied += applied
        report.write_latencies.append(loop.time() - scheduled)

    for event in events:
        scheduled = start + event.at
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        if event.kind == "read":
            tasks.append(asyncio.create_task(do_read(event, scheduled)))
        else:
            tasks.append(asyncio.create_task(do_write(event, scheduled)))
    if tasks:
        await asyncio.gather(*tasks)
    report.wall_seconds = loop.time() - start


def run_concurrent(
    server: AsyncQueryServer,
    env: TrafficEnv,
    events: list[TrafficEvent],
    *,
    seed: int = 1,
    mix: UpdateMix | None = None,
    batches: list[RecordedBurst] | None = None,
    label: str = "mvcc",
) -> TrafficReport:
    """Replay *events* open-loop against the concurrent MVCC tier."""
    rate = len(events) / events[-1].at if events else 0.0
    report = TrafficReport(label=label, offered_rate=rate)
    writer = make_writer(server.core, env, seed=seed, mix=mix, batches=batches)
    asyncio.run(_replay_async(server, events, writer, report))
    return report


def run_sequential(
    server: QueryServer,
    env: TrafficEnv,
    events: list[TrafficEvent],
    *,
    seed: int = 1,
    mix: UpdateMix | None = None,
    batches: list[RecordedBurst] | None = None,
    label: str = "baseline",
) -> TrafficReport:
    """Replay *events* against the sequential live-store server.

    One request at a time: an arrival that lands while an earlier
    request is still being served queues, and its latency (measured
    from the scheduled arrival) absorbs the wait — exactly how a
    saturated single-threaded front door behaves.  The baseline always
    reads fresh (the live store has no other freshness), so its lag
    histogram is all zeros by construction.
    """
    rate = len(events) / events[-1].at if events else 0.0
    report = TrafficReport(label=label, offered_rate=rate)
    stream = None if batches is not None else _traffic_stream(
        env.store, env, seed, mix
    )
    queue = iter(batches) if batches is not None else None
    start = time.perf_counter()
    for event in events:
        scheduled = start + event.at
        now = time.perf_counter()
        if now < scheduled:
            time.sleep(scheduled - now)
        if event.kind == "read":
            server.evaluate_oids(event.query)
            report.reads += 1
            report.read_latencies.append(time.perf_counter() - scheduled)
            report._observe(0, FreshnessPolicy.parse(event.policy).max_lag_epochs, "live")
        else:
            if queue is not None:
                burst = next(queue)
                for oid, label, value in burst.creations:
                    env.store.add_atomic(oid, label, value)
                env.store.apply_all(burst.updates)
                report.updates_applied += len(burst.updates)
            else:
                report.updates_applied += len(stream.run(event.batch))
            report.writes += 1
            report.write_latencies.append(time.perf_counter() - scheduled)
    report.wall_seconds = time.perf_counter() - start
    return report


__all__ = [
    "RecordedBurst",
    "TrafficReport",
    "make_writer",
    "record_write_batches",
    "run_concurrent",
    "run_sequential",
]
