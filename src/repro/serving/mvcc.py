"""MVCC-by-epoch serving: pinned frozen snapshots, bounded staleness.

The PR 3 :class:`~repro.serving.server.QueryServer` serves one request
at a time against the live store — a maintenance batch stalls every
reader.  This module is the concurrent tier built on the PR 5 columnar
snapshots: the write path *publishes* each quiesced state as an
immutable :class:`~repro.gsdb.columnar.EpochView` into a
:class:`~repro.gsdb.columnar.SnapshotRetention` ring, and readers pin a
retained epoch, evaluate on it with the bitset kernels
(:func:`~repro.paths.kernel.evaluate_on_snapshot`, WHERE conditions
included via the imaged value column), and unpin — never reading the
live store, never blocking maintenance, never blocked by it.

Freshness is an explicit per-request policy (:class:`FreshnessPolicy`):

``fresh`` (``max_lag_epochs=0``)
    The answer must reflect every applied update.  Served from the
    carry cache when possible; otherwise the read forces a publication
    (briefly serializing with writers — strict freshness is the one
    policy that cannot be wait-free) and evaluates on the new epoch.
``max_lag_epochs=k``
    The answer may trail the newest published state by at most *k*
    publications; an unpublished store tail counts as one more epoch
    of lag.  Served wait-free from any allowed retained epoch.
``any`` (``max_lag_epochs=None``)
    Any retained epoch will do.

Two cache layers keep invalidation precise (DESIGN.md S14):

* The **carry cache** mirrors the *live* store: the PR 3
  :class:`~repro.serving.invalidation.Invalidator` screens every
  applied update synchronously and evicts exactly the affected
  entries, so a carry hit is always lag 0.
* Each published epoch owns an immutable **partition**, seeded at
  publication from the carry cache's survivors (valid for the new
  epoch because the carry mirrors the store the instant it is frozen)
  and extended by readers that evaluate on that epoch.  Entries of a
  frozen epoch can never go stale *for that epoch*, so stale-but-
  allowed epochs keep serving from cache while the carry partition
  absorbs all invalidation traffic.

Reader work — kernel sweeps on frozen views, cache bookkeeping, ring
pins — is charged to the server's own ``read_counters``, keeping the
writer's charged maintenance cost byte-comparable with and without
readers (the E20 isolation claim).

Concurrency model (stdlib only, GIL-aware): frozen views are immutable,
so epoch reads take no lock at all during evaluation; one small
``_cache_lock`` guards cache/audit bookkeeping for microseconds per
request; a reentrant ``write_mutex`` serializes writers, forced
publications, and interpreted fallbacks (scoped queries must read the
live store).  :class:`AsyncQueryServer` lifts the same core into
asyncio via ``asyncio.to_thread`` so many in-flight requests overlap
with the (single) writer.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Callable, ClassVar, Iterable, Sequence

from repro.errors import QueryEvaluationError
from repro.gsdb.columnar import (
    PublishedEpoch,
    SnapshotRetention,
    enable_columnar,
)
from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.updates import Update
from repro.instrumentation.counters import CostCounters
from repro.paths.automaton import compile_expression
from repro.paths.kernel import evaluate_many_on_snapshot, evaluate_on_snapshot
from repro.query.ast import And, Comparison, Condition, Exists, Not, Or, Query
from repro.query.evaluator import QueryEvaluator
from repro.query.parser import parse_query
from repro.serving.cache import QueryCache, cache_key
from repro.serving.invalidation import Invalidator, build_screen


@dataclass(frozen=True)
class FreshnessPolicy:
    """How stale an answer a request will accept.

    ``max_lag_epochs`` counts *published* epochs: 0 demands the exact
    current state, ``k`` allows serving from an epoch at most ``k``
    publications behind the store (an unpublished store tail counts as
    one), and None accepts any retained epoch.
    """

    max_lag_epochs: int | None = 0

    #: Singletons, assigned after the class body.
    FRESH: ClassVar["FreshnessPolicy"]
    ANY: ClassVar["FreshnessPolicy"]

    @classmethod
    def bounded(cls, k: int) -> "FreshnessPolicy":
        """Serve at most *k* published epochs behind the store."""
        if k < 0:
            raise ValueError("max_lag_epochs must be non-negative")
        return cls(max_lag_epochs=k)

    @classmethod
    def parse(cls, spec: "FreshnessPolicy | str | int") -> "FreshnessPolicy":
        """``"fresh"`` / ``"any"`` / an integer lag bound / a policy."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, bool):
            raise ValueError(f"not a freshness policy: {spec!r}")
        if isinstance(spec, int):
            return cls.bounded(spec)
        if isinstance(spec, str):
            text = spec.strip().lower()
            if text == "fresh":
                return cls.FRESH
            if text == "any":
                return cls.ANY
            if text.isdigit():
                return cls.bounded(int(text))
        raise ValueError(f"not a freshness policy: {spec!r}")

    def admits(self, lag: int) -> bool:
        return self.max_lag_epochs is None or lag <= self.max_lag_epochs

    def __str__(self) -> str:
        if self.max_lag_epochs is None:
            return "any"
        if self.max_lag_epochs == 0:
            return "fresh"
        return f"max_lag_epochs={self.max_lag_epochs}"


FreshnessPolicy.FRESH = FreshnessPolicy(0)
FreshnessPolicy.ANY = FreshnessPolicy(None)


@dataclass(frozen=True)
class EpochAnswer:
    """One served answer plus its freshness provenance.

    ``seq`` is the publication number the answer reflects (-1 when the
    answer came straight off the live store); ``lag`` is how many
    published epochs behind the store that state was *at selection
    time*; ``source`` says who produced the bytes (``carry`` /
    ``epoch-cache`` / ``kernel`` / ``interpreted``).
    """

    oids: frozenset[str]
    seq: int
    lag: int
    allowed: int | None
    source: str

    @property
    def cached(self) -> bool:
        return self.source in ("carry", "epoch-cache")


class EpochServer:
    """The synchronous MVCC core (one instance per registry/store).

    Thread-safe by construction: see the module docstring's
    concurrency model.  :class:`AsyncQueryServer` wraps it for asyncio;
    single-threaded callers (tests, benchmarks, the CLI) can drive it
    directly.
    """

    def __init__(
        self,
        registry: DatabaseRegistry,
        *,
        retention_capacity: int = 4,
        cache_size: int = 128,
        parent_index=None,
        border_index=None,
        cacheable: Callable[[Query], bool] | None = None,
        apply_fn: Callable[[Sequence[Update]], int] | None = None,
        rebuild_threshold: float = 0.25,
    ) -> None:
        self.registry = registry
        self.store = registry.store
        #: Reader-side currency: kernel sweeps on frozen views, cache
        #: and ring bookkeeping.  Kept apart from the store's counters
        #: so writer maintenance cost is comparable with readers on/off.
        self.read_counters = CostCounters()
        manager = getattr(self.store, "columnar", None)
        if manager is None:
            manager = enable_columnar(
                self.store, rebuild_threshold=rebuild_threshold
            )
        self.manager = manager
        self.retention = SnapshotRetention(
            manager, capacity=retention_capacity, counters=self.read_counters
        )
        self.cache_size = cache_size
        self._cacheable = cacheable
        self._apply_fn = apply_fn
        self._evaluator = QueryEvaluator(registry)
        if border_index is None:
            border_index = getattr(self.store, "border", None)
        self.carry = QueryCache(cache_size, counters=self.read_counters)
        self.invalidator = Invalidator(
            self.store,
            self.carry,
            parent_index=parent_index,
            border_index=border_index,
            subscribe=False,
        )
        self.carry.on_evict = self.invalidator.forget
        self.store.subscribe(self._on_update)
        #: Serializes writers, forced publications, and interpreted
        #: fallbacks.  Reentrant: catalog wiring publishes from inside
        #: an already-locked apply.
        self.write_mutex = threading.RLock()
        self._cache_lock = threading.Lock()
        # -- freshness audit (every answer is recorded) -------------------
        self.reads = 0
        self.violations = 0
        self.lag_histogram: dict[int, int] = {}
        self.source_counts: dict[str, int] = {}

    # -- write path ---------------------------------------------------------

    def _on_update(self, update: Update) -> None:
        # Store listener: precise carry eviction, serialized with
        # reader cache traffic so the carry never serves a stale entry.
        # Screening exists only to keep the reader-serving carry
        # precise — its cost scales with cache occupancy, not with the
        # update — so its store/index probes are re-charged to the
        # private reader ledger, keeping the writer's store-charged
        # cost byte-identical with and without read traffic (E20d).
        # Safe: callers hold write_mutex, and readers never touch the
        # store's counters (frozen views charge read_counters).
        with self._cache_lock:
            saved = self.store.counters
            self.store.counters = self.read_counters
            try:
                self.invalidator.on_update(update)
            finally:
                self.store.counters = saved

    def apply_batch(self, updates: Iterable[Update]) -> int:
        """Apply a writer batch (maintaining views when wired through a
        catalog) and publish the resulting state as a new epoch."""
        updates = list(updates)
        with self.write_mutex:
            if self._apply_fn is not None:
                applied = self._apply_fn(updates)
            else:
                applied = self.store.apply_all(updates)
            self.publish()
            return applied

    def publish(self) -> PublishedEpoch:
        """Publish the store's current state (writer-side; callers hold
        ``write_mutex`` or are otherwise serialized with writers).

        A genuinely new epoch gets its cache partition seeded from the
        carry cache: the carry mirrors the live store at every instant
        (per-update precise invalidation), and the live store *is* the
        new epoch the moment it freezes, so every surviving carry entry
        is a valid answer at this epoch — forever, since the epoch is
        immutable.
        """
        previous = self.retention.latest()
        entry = self.retention.publish()
        if previous is None or entry.seq != previous.seq:
            with self._cache_lock:
                partition = QueryCache(
                    self.cache_size, counters=self.read_counters
                )
                partition._entries.update(self.carry._entries)
                entry.cache = partition
        return entry

    def checkpoint(self) -> PublishedEpoch:
        """Thread-safe :meth:`publish` for out-of-band callers."""
        with self.write_mutex:
            return self.publish()

    # -- read path ----------------------------------------------------------

    def evaluate_oids(self, query: Query | str) -> set[str]:
        """QueryServer-compatible strict read (``fresh`` policy)."""
        return set(self.read(query, FreshnessPolicy.FRESH).oids)

    def read(
        self,
        query: Query | str,
        policy: FreshnessPolicy | str | int = FreshnessPolicy.FRESH,
    ) -> EpochAnswer:
        """Serve *query* no staler than *policy* allows."""
        if isinstance(query, str):
            query = parse_query(query)
        policy = FreshnessPolicy.parse(policy)
        answer = self.try_read_cached(query, policy)
        if answer is not None:
            return answer
        return self._read_miss(query, policy)

    def try_read_cached(
        self,
        query: Query | str,
        policy: FreshnessPolicy | str | int = FreshnessPolicy.FRESH,
    ) -> EpochAnswer | None:
        """The wait-free half of :meth:`read`: serve from the carry
        cache or an admissible epoch partition, or return ``None``.

        Never evaluates, pins, publishes, or takes ``write_mutex`` —
        only the short ``_cache_lock`` critical sections — so an event
        loop may call it inline and dispatch to a worker thread only on
        a miss.  A ``None`` is charged nothing; the eventual
        :meth:`_read_miss` charges the one miss.
        """
        if isinstance(query, str):
            query = parse_query(query)
        policy = FreshnessPolicy.parse(policy)
        allowed = policy.max_lag_epochs
        if (
            query.within is not None
            or query.ans_int is not None
            or (self._cacheable is not None and not self._cacheable(query))
        ):
            return None  # scoped/view-dependent: live store only
        entry_oid = self._evaluator._resolve_entry(query.entry)
        key = cache_key(query, entry_oid)
        # 1. The carry cache mirrors the live store: a hit is lag 0
        #    under every policy.  The hit also *re-validates* the
        #    answer into the newest epoch partition: a carry entry is,
        #    by construction, valid at the last published epoch AND
        #    unaffected by every update since (invalidation only ever
        #    removes entries), so promoting it is sound even while a
        #    write batch is mid-apply.  Without promotion, an answer
        #    that stays continuously valid would still age out of
        #    bounded-staleness windows — each partition only remembers
        #    what was evaluated or carried *during its own epoch*.
        with self._cache_lock:
            answer = self._probe(self.carry, key)
            if answer is not None:
                latest = self.retention.latest()
                if latest is not None and not latest.reclaimed:
                    if latest.cache is None:
                        latest.cache = QueryCache(
                            self.cache_size, counters=self.read_counters
                        )
                    latest.cache.store(key, answer)
        if answer is not None:
            return self._serve(answer, self._latest_seq(), 0, allowed, "carry")
        # 2. Stale-but-allowed epoch partitions, newest first.
        hit: tuple[frozenset[str], int, int] | None = None
        with self._cache_lock:
            for entry, lag in self._candidates(allowed):
                if entry.cache is None:
                    continue
                answer = self._probe(entry.cache, key)
                if answer is not None:
                    hit = (answer, entry.seq, lag)
                    break
        if hit is not None:
            answer, seq, lag = hit
            return self._serve(answer, seq, lag, allowed, "epoch-cache")
        return None

    def _read_miss(
        self, query: Query, policy: FreshnessPolicy
    ) -> EpochAnswer:
        """The blocking half of :meth:`read` (cache probes missed)."""
        allowed = policy.max_lag_epochs
        if (
            query.within is not None
            or query.ans_int is not None
            or (self._cacheable is not None and not self._cacheable(query))
        ):
            # Scoped or view-dependent: epoch images cannot answer it
            # (a ScopedStore must stay in the loop; view delegates
            # change outside the update stream).  Read the live store,
            # serialized with writers — exact current state, lag 0.
            with self.write_mutex:
                oids = frozenset(self._evaluator.evaluate_oids(query))
                seq = self._latest_seq()
            return self._serve(oids, seq, 0, allowed, "interpreted")
        entry_oid = self._evaluator._resolve_entry(query.entry)
        key = cache_key(query, entry_oid)
        # 3. Miss: pin the newest allowed epoch (publishing one when
        #    nothing retained satisfies the policy) and evaluate on its
        #    frozen view with the bitset kernels.
        target, lag = self._pin_target(self._candidates(allowed))
        try:
            oids = frozenset(
                self._evaluate_on_epoch(target.view, query, entry_oid)
            )
        finally:
            self.retention.unpin(target)
        with self._cache_lock:
            if target.cache is None:
                target.cache = QueryCache(
                    self.cache_size, counters=self.read_counters
                )
            target.cache.store(key, oids)
            latest = self.retention.latest()
            if (
                latest is not None
                and latest.seq == target.seq
                and not self.retention.store_dirty()
            ):
                # The evaluated epoch still mirrors the live store, so
                # the answer may enter the carry cache (and from there
                # seed future partitions), precisely invalidated from
                # here on.  A store that moved mid-evaluation skips
                # this — the epoch partition alone remembers the
                # answer, at its own epoch.
                self.carry.store(key, oids)
                self.invalidator.register(build_screen(key, self.registry))
        return self._serve(oids, target.seq, lag, allowed, "kernel")

    # -- read-path helpers --------------------------------------------------

    def _latest_seq(self) -> int:
        latest = self.retention.latest()
        return -1 if latest is None else latest.seq

    def _probe(self, cache: QueryCache, key) -> frozenset[str] | None:
        """Uncharged cache probe: one read may consult several
        partitions, but hit/miss is charged once per request
        (:meth:`_serve`), not once per partition."""
        answer = cache._entries.get(key)
        if answer is not None:
            cache._entries.move_to_end(key)
        return answer

    def _candidates(
        self, allowed: int | None
    ) -> list[tuple[PublishedEpoch, int]]:
        """Retained epochs admissible under *allowed*, newest first."""
        entries = self.retention.entries()
        if not entries:
            return []
        newest = entries[-1].seq
        extra = 1 if self.retention.store_dirty() else 0
        out: list[tuple[PublishedEpoch, int]] = []
        for entry in reversed(entries):
            lag = (newest - entry.seq) + extra
            if allowed is None or lag <= allowed:
                out.append((entry, lag))
        return out

    def _pin_target(self, candidates) -> tuple[PublishedEpoch, int]:
        """Pin the newest admissible epoch, minting one if needed.

        A candidate can be reclaimed between listing and pinning
        (capacity churn); publication always yields a pinnable latest,
        so the retry loop terminates.
        """
        for attempt in range(8):
            if candidates:
                target, lag = candidates[0]
            else:
                with self.write_mutex:
                    target = self.publish()
                lag = 0
            if self.retention.pin(target):
                return target, lag
            candidates = []  # republish and retry
        raise QueryEvaluationError(
            "could not pin a retained epoch (retention churn)"
        )  # pragma: no cover - requires pathological concurrent reclaim

    def _serve(
        self,
        oids: frozenset[str],
        seq: int,
        lag: int,
        allowed: int | None,
        source: str,
    ) -> EpochAnswer:
        with self._cache_lock:
            self.reads += 1
            self.lag_histogram[lag] = self.lag_histogram.get(lag, 0) + 1
            self.source_counts[source] = self.source_counts.get(source, 0) + 1
            if allowed is not None and lag > allowed:
                self.violations += 1  # pragma: no cover - by construction
            if source in ("carry", "epoch-cache"):
                self.read_counters.query_cache_hits += 1
            else:
                self.read_counters.query_cache_misses += 1
        return EpochAnswer(oids, seq, lag, allowed, source)

    # -- epoch-pinned evaluation -------------------------------------------

    def _evaluate_on_epoch(self, view, query: Query, entry_oid: str) -> set[str]:
        nfa = compile_expression(query.select_path)
        candidates = evaluate_on_snapshot(view, nfa, entry_oid)
        if query.condition is not None:
            candidates = _filter_on_epoch(view, candidates, query.condition)
        return candidates

    # -- introspection ------------------------------------------------------

    def hit_rate(self) -> float:
        counters = self.read_counters
        total = counters.query_cache_hits + counters.query_cache_misses
        return counters.query_cache_hits / total if total else 0.0

    def freshness_report(self) -> dict:
        """Audit summary: every served answer's lag, by the numbers."""
        with self._cache_lock:
            return {
                "reads": self.reads,
                "violations": self.violations,
                "lag_histogram": dict(sorted(self.lag_histogram.items())),
                "sources": dict(sorted(self.source_counts.items())),
            }

    def stats(self) -> dict[str, int]:
        counters = self.read_counters
        return {
            "hits": counters.query_cache_hits,
            "misses": counters.query_cache_misses,
            "pins": counters.snapshot_pins,
            "published": counters.epochs_published,
            "reclaimed": counters.epochs_reclaimed,
            "invalidations": counters.query_cache_invalidations,
            "carry_entries": len(self.carry),
            "retained": len(self.retention.entries()),
        }


# -- conditions over a frozen epoch ----------------------------------------


def _members_by_candidate(
    view, candidates: set[str], path
) -> dict[str, set[str]]:
    """One multi-source sweep of *path* from every candidate at once."""
    return evaluate_many_on_snapshot(
        view, compile_expression(path), candidates
    )


def _filter_on_epoch(
    view, candidates: set[str], condition: Condition
) -> set[str]:
    """Set-at-a-time twin of :func:`~repro.query.conditions.
    evaluate_condition` over a frozen view: returns the subset of
    *candidates* satisfying *condition*.

    The node-at-a-time shape — one interpreted path evaluation per
    candidate per comparison — dominated epoch evaluation cost (>90%
    on E20's fanout trees).  Here each Comparison/Exists leaf costs a
    single :func:`~repro.paths.kernel.evaluate_many_on_snapshot`
    sweep for the whole candidate set, and the boolean connectives
    become set algebra: ``any``/``all``/``not`` per candidate map to
    union / progressive intersection / complement.  ``And`` narrows
    the candidate set before evaluating later operands and ``Or``
    only re-tests the still-unsatisfied remainder, mirroring the
    interpreted evaluator's short-circuiting at set granularity.
    """
    if isinstance(condition, Comparison):
        members = _members_by_candidate(view, candidates, condition.path)
        satisfied = set()
        test = condition.test_value
        for candidate in candidates:
            for oid in members[candidate]:
                row = view.row(oid)
                if row is None:
                    continue
                value = view.atomic_value(row)
                if value is not None and test(value):
                    satisfied.add(candidate)
                    break
        return satisfied
    if isinstance(condition, Exists):
        members = _members_by_candidate(view, candidates, condition.path)
        return {c for c in candidates if members[c]}
    if isinstance(condition, Not):
        return candidates - _filter_on_epoch(view, candidates, condition.operand)
    if isinstance(condition, And):
        surviving = candidates
        for operand in condition.operands:
            if not surviving:
                break
            surviving = _filter_on_epoch(view, surviving, operand)
        return surviving
    if isinstance(condition, Or):
        satisfied: set[str] = set()
        remaining = candidates
        for operand in condition.operands:
            if not remaining:
                break
            hits = _filter_on_epoch(view, remaining, operand)
            satisfied |= hits
            remaining = remaining - hits
        return satisfied
    raise TypeError(f"unknown condition node: {condition!r}")


class AsyncQueryServer:
    """The asyncio front door over an :class:`EpochServer`.

    A read first tries the core's wait-free cache probe inline on the
    event loop (:meth:`EpochServer.try_read_cached` — microseconds, no
    evaluation, no ``write_mutex``); only misses dispatch to worker
    threads (``asyncio.to_thread``) where they evaluate on pinned
    immutable epoch views.  Any number of reads may be in flight while
    the single writer applies and publishes batches; the core's
    ``write_mutex`` is the only writer-side serialization.  All methods
    are safe to call concurrently from one event loop.
    """

    def __init__(self, core: EpochServer) -> None:
        self.core = core

    async def read(
        self,
        query: Query | str,
        policy: FreshnessPolicy | str | int = FreshnessPolicy.FRESH,
    ) -> EpochAnswer:
        if isinstance(query, str):
            query = parse_query(query)
        policy = FreshnessPolicy.parse(policy)
        answer = self.core.try_read_cached(query, policy)
        if answer is not None:
            return answer
        return await asyncio.to_thread(self.core._read_miss, query, policy)

    async def serve_oids(
        self,
        query: Query | str,
        policy: FreshnessPolicy | str | int = FreshnessPolicy.FRESH,
    ) -> set[str]:
        return set((await self.read(query, policy)).oids)

    async def apply_batch(self, updates: Iterable[Update]) -> int:
        return await asyncio.to_thread(self.core.apply_batch, list(updates))

    async def publish(self) -> PublishedEpoch:
        return await asyncio.to_thread(self.core.checkpoint)

    # Synchronous pass-throughs (cheap introspection, no store reads).

    def freshness_report(self) -> dict:
        return self.core.freshness_report()

    def stats(self) -> dict[str, int]:
        return self.core.stats()

    def hit_rate(self) -> float:
        return self.core.hit_rate()


__all__ = [
    "AsyncQueryServer",
    "EpochAnswer",
    "EpochServer",
    "FreshnessPolicy",
]
