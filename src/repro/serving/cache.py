"""The bounded query-result cache.

A cache entry maps the *canonical form* of a parsed query to its answer
OID set.  Canonicalization (``cache_key``) resolves the entry point to
an OID (so ``SELECT PERSON...`` and a query spelled with the database
object's OID share one entry) and normalizes the condition tree
(``AND``/``OR`` operands sorted by their rendered form), so
syntactically different spellings of the same query hit the same slot.

The cache is a plain LRU bounded by ``capacity``.  All traffic is
charged to the owning store's :class:`~repro.instrumentation.counters.
CostCounters` in the store's style — ``query_cache_hits`` /
``query_cache_misses`` / ``query_cache_evictions`` /
``query_cache_invalidations`` are bookkeeping counters, not base
accesses (they explain why base accesses went down, experiment E16).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.instrumentation.counters import CostCounters
from repro.paths.expression import PathExpression
from repro.query.ast import And, Condition, Not, Or, Query


def normalize_condition(condition: Condition | None) -> Condition | None:
    """Canonical form of a condition tree.

    ``AND``/``OR`` are commutative, so operands are normalized
    recursively and sorted by their rendered form; atoms are already
    frozen dataclasses and compare structurally.
    """
    if condition is None or not isinstance(condition, (And, Or, Not)):
        return condition
    if isinstance(condition, Not):
        return Not(normalize_condition(condition.operand))
    operands = tuple(
        sorted(
            (normalize_condition(op) for op in condition.operands),
            key=str,
        )
    )
    return And(operands) if isinstance(condition, And) else Or(operands)


@dataclass(frozen=True)
class CacheKey:
    """Canonical identity of a query's answer.

    ``entry_oid`` is the *resolved* entry point; ``within`` and
    ``ans_int`` stay as names — their member sets are part of the
    answer's dependencies and are watched by the invalidator, so two
    scopes with the same name share (and invalidate) one entry.
    """

    entry_oid: str
    select_path: PathExpression
    condition: Condition | None
    within: str | None
    ans_int: str | None


def cache_key(query: Query, entry_oid: str) -> CacheKey:
    """Build the canonical cache key for *query* entered at *entry_oid*."""
    return CacheKey(
        entry_oid=entry_oid,
        select_path=query.select_path,
        condition=normalize_condition(query.condition),
        within=query.within,
        ans_int=query.ans_int,
    )


class QueryCache:
    """Bounded LRU of canonical query → answer OID frozenset.

    ``on_evict`` (set by the server after wiring the invalidator) is
    called with the key whenever an entry leaves the cache — by LRU
    pressure *or* invalidation — so the invalidator's screen buckets
    never outlive their entries.
    """

    def __init__(
        self,
        capacity: int = 128,
        *,
        counters: CostCounters | None = None,
        on_evict: Callable[[CacheKey], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.counters = counters if counters is not None else CostCounters()
        self.on_evict = on_evict
        self._entries: OrderedDict[CacheKey, frozenset[str]] = OrderedDict()

    # -- read path -----------------------------------------------------------

    def lookup(self, key: CacheKey) -> frozenset[str] | None:
        """The cached answer for *key*, or None on a miss (charged)."""
        answer = self._entries.get(key)
        if answer is None:
            self.counters.query_cache_misses += 1
            return None
        self._entries.move_to_end(key)
        self.counters.query_cache_hits += 1
        return answer

    def store(self, key: CacheKey, answer: frozenset[str]) -> None:
        """Insert (or refresh) an entry, evicting LRU overflow."""
        self._entries[key] = answer
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            victim, _ = self._entries.popitem(last=False)
            self.counters.query_cache_evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)

    # -- invalidation --------------------------------------------------------

    def invalidate(self, key: CacheKey) -> bool:
        """Drop one entry; True when it was present (charged)."""
        if self._entries.pop(key, None) is None:
            return False
        self.counters.query_cache_invalidations += 1
        if self.on_evict is not None:
            self.on_evict(key)
        return True

    def clear(self) -> int:
        """Drop every entry (counted as invalidations)."""
        dropped = len(self._entries)
        for key in list(self._entries):
            self.invalidate(key)
        return dropped

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def keys(self) -> list[CacheKey]:
        return list(self._entries)
