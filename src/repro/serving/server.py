"""The query server: cache + frontier evaluation + invalidation.

:class:`QueryServer` is a drop-in for :class:`~repro.query.evaluator.
QueryEvaluator` (``evaluate`` / ``evaluate_oids``) that

1. canonicalizes the parsed query and answers repeats from the
   :class:`~repro.serving.cache.QueryCache`,
2. evaluates misses set-at-a-time
   (:meth:`~repro.paths.automaton.PathNFA.evaluate_frontier`, probing
   the label index when the query is unscoped — a
   :class:`~repro.query.evaluator.ScopedStore` must keep the scan path
   so out-of-scope objects stay invisible and charge their probes), and
3. registers each cached answer with the
   :class:`~repro.serving.invalidation.Invalidator` so later updates
   evict exactly the answers they may change.

A *cacheable* predicate lets integrations exclude queries whose
dependencies change outside the update stream — the view catalog
excludes queries resolving through virtual or materialized views
(delegate surgery bypasses ``store.apply``; a materialized view is
already its own cache), serving them fresh instead.
"""

from __future__ import annotations

from typing import Callable

from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.indexes import LabelIndex, ParentIndex
from repro.gsdb.object import Object
from repro.paths.automaton import compile_expression
from repro.query.answer import make_answer
from repro.query.ast import Query
from repro.query.conditions import evaluate_condition
from repro.query.evaluator import QueryEvaluator
from repro.paths.kernel import evaluate_on_snapshot
from repro.query.parser import parse_query
from repro.serving.cache import QueryCache, cache_key
from repro.serving.invalidation import Invalidator, build_screen


class QueryServer:
    """Front door for the read path; one instance per registry/store."""

    def __init__(
        self,
        registry: DatabaseRegistry,
        *,
        parent_index: ParentIndex | None = None,
        label_index: LabelIndex | None = None,
        border_index=None,
        cache_size: int = 128,
        use_frontier: bool = True,
        cacheable: Callable[[Query], bool] | None = None,
        subscribe: bool = True,
    ) -> None:
        self.registry = registry
        self.store = registry.store
        self.parent_index = parent_index
        self.label_index = label_index
        if border_index is None:
            border_index = getattr(self.store, "border", None)
        self.border_index = border_index
        self.use_frontier = use_frontier
        self._cacheable = cacheable
        self._evaluator = QueryEvaluator(registry)
        self.cache = QueryCache(cache_size, counters=self.store.counters)
        self.invalidator = Invalidator(
            self.store,
            self.cache,
            parent_index=parent_index,
            border_index=border_index,
            subscribe=subscribe,
        )
        self.cache.on_evict = self.invalidator.forget

    # -- the QueryEvaluator interface ----------------------------------------

    def evaluate(self, query: Query | str) -> Object:
        """Evaluate and return the answer object (registered in store)."""
        return make_answer(sorted(self.evaluate_oids(query)), store=self.store)

    def evaluate_oids(self, query: Query | str) -> set[str]:
        """Evaluate and return the raw answer OID set (cache-aware)."""
        if isinstance(query, str):
            query = parse_query(query)
        entry_oid = self._evaluator._resolve_entry(query.entry)
        if self._cacheable is not None and not self._cacheable(query):
            return self._evaluate_fresh(query, entry_oid)
        key = cache_key(query, entry_oid)
        cached = self.cache.lookup(key)
        if cached is not None:
            return set(cached)
        answer = self._evaluate_fresh(query, entry_oid)
        self.cache.store(key, frozenset(answer))
        self.invalidator.register(build_screen(key, self.registry))
        return answer

    # -- miss evaluation ------------------------------------------------------

    def _evaluate_fresh(self, query: Query, entry_oid: str) -> set[str]:
        """One uncached evaluation, kernel- or frontier-style.

        A fresh columnar snapshot (``store.columnar``) serves unscoped
        path sweeps; scoped queries keep the interpreted path — a
        :class:`~repro.query.evaluator.ScopedStore` must stay in the
        loop so out-of-scope objects remain invisible and charge their
        probes.  No snapshot (or a stale one) falls back interpreted,
        charging ``kernel_fallbacks``.
        """
        store = self._evaluator._scoped_store(query)
        nfa = compile_expression(query.select_path)
        candidates = None
        if query.within is None:
            manager = getattr(self.store, "columnar", None)
            if manager is not None:
                snapshot = manager.current()
                if snapshot is not None:
                    candidates = evaluate_on_snapshot(
                        snapshot, nfa, entry_oid
                    )
                else:
                    self.store.counters.kernel_fallbacks += 1
        if candidates is not None:
            pass
        elif self.use_frontier:
            index = self.label_index if query.within is None else None
            candidates = nfa.evaluate_frontier(
                store, entry_oid, label_index=index
            )
        else:
            candidates = nfa.evaluate(store, entry_oid)
        if query.condition is not None:
            candidates = {
                oid
                for oid in candidates
                if evaluate_condition(store, oid, query.condition)
            }
        if query.ans_int is not None:
            candidates &= self.registry.members(query.ans_int)
        return candidates

    # -- out-of-band invalidation & stats -------------------------------------

    def invalidate_entry(self, oid: str) -> int:
        """Evict cached answers referencing *oid* (see
        :meth:`~repro.serving.invalidation.Invalidator.
        invalidate_touching`)."""
        return self.invalidator.invalidate_touching(oid)

    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache so far."""
        counters = self.store.counters
        total = counters.query_cache_hits + counters.query_cache_misses
        return counters.query_cache_hits / total if total else 0.0

    def stats(self) -> dict[str, int]:
        """The cache counters plus the current cache size."""
        counters = self.store.counters
        return {
            "hits": counters.query_cache_hits,
            "misses": counters.query_cache_misses,
            "evictions": counters.query_cache_evictions,
            "invalidations": counters.query_cache_invalidations,
            "entries": len(self.cache),
        }
