"""The read-path serving layer (experiment E16).

The paper's warehouse (Section 5) materializes *views* to make reads
cheap; this package applies the same idea one level up, to ad-hoc
queries: a bounded LRU :class:`~repro.serving.cache.QueryCache` keyed
by the canonical form of a parsed query, kept consistent by a precise
:class:`~repro.serving.invalidation.Invalidator` that reuses the
maintenance dispatcher's label screening and chain memos, and a
:class:`~repro.serving.server.QueryServer` front door that evaluates
misses with set-at-a-time frontier evaluation
(:meth:`~repro.paths.automaton.PathNFA.evaluate_frontier`).

The server exposes the :class:`~repro.query.evaluator.QueryEvaluator`
interface (``evaluate`` / ``evaluate_oids``) so callers swap it in
transparently; :meth:`repro.views.ViewCatalog.enable_serving` and
:meth:`repro.warehouse.warehouse.Warehouse.enable_serving` wire it up.

:mod:`repro.serving.mvcc` (experiment E20) is the concurrent tier: an
:class:`~repro.serving.mvcc.EpochServer` serves epoch-pinned reads with
an explicit per-request :class:`~repro.serving.mvcc.FreshnessPolicy`,
and :class:`~repro.serving.mvcc.AsyncQueryServer` lifts it into
asyncio; :mod:`repro.serving.traffic` drives either tier with an
open-loop workload.
"""

from repro.serving.cache import CacheKey, QueryCache, cache_key
from repro.serving.invalidation import Invalidator, QueryScreen, build_screen
from repro.serving.mvcc import (
    AsyncQueryServer,
    EpochAnswer,
    EpochServer,
    FreshnessPolicy,
)
from repro.serving.server import QueryServer

__all__ = [
    "AsyncQueryServer",
    "CacheKey",
    "EpochAnswer",
    "EpochServer",
    "FreshnessPolicy",
    "QueryCache",
    "cache_key",
    "Invalidator",
    "QueryScreen",
    "build_screen",
    "QueryServer",
]
