"""Query evaluation with ``WITHIN`` and ``ANS INT`` scoping.

Evaluation follows paper Section 2:

1. Resolve the entry point (an OID, or a registered database/view name).
2. Compute the candidate set ``entry.sel_path_exp``.
3. If a WHERE clause is present, keep candidates ``X`` for which
   ``cond(X.cond_path_exp)`` holds.
4. Apply ``ANS INT DB2`` by intersecting with ``value(DB2)``.
5. Wrap the result in an answer object.

``WITHIN DB1`` makes every OID outside ``DB1`` "completely ignored by
the query": we evaluate against a :class:`ScopedStore` that pretends
out-of-scope objects do not exist, so they are invisible both as
intermediate path nodes and in conditions (the paper's example: with
``WITHIN D1`` and ``A1`` stored elsewhere, ``X.age > 40`` fails).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import QueryEvaluationError
from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.object import Object
from repro.gsdb.store import ObjectStore
from repro.paths.automaton import compile_expression
from repro.query.answer import make_answer
from repro.query.ast import Query
from repro.query.conditions import evaluate_condition
from repro.query.parser import parse_query


class ScopedStore:
    """A read-only view of a store restricted to a set of OIDs.

    Implements the subset of the :class:`ObjectStore` read interface the
    traversal and condition machinery uses (``get_optional``, ``get``,
    ``counters``, ``__contains__``), returning None/absent for objects
    outside the scope.  The entry point of the running query is always
    admitted, since the user evidently holds its OID already.
    """

    def __init__(
        self,
        store: ObjectStore,
        scope: frozenset[str],
        *,
        admit: Iterable[str] = (),
    ) -> None:
        self._store = store
        self._scope = scope | frozenset(admit)
        self.counters = store.counters

    def get_optional(self, oid: str) -> Object | None:
        if oid not in self._scope:
            self.counters.object_reads += 1  # the probe still happened
            return None
        return self._store.get_optional(oid)

    def get(self, oid: str) -> Object:
        obj = self.get_optional(oid)
        if obj is None:
            from repro.errors import UnknownObjectError

            raise UnknownObjectError(oid)
        return obj

    def __contains__(self, oid: str) -> bool:
        return oid in self._scope and oid in self._store


class QueryEvaluator:
    """Evaluates parsed queries against a store + database registry."""

    def __init__(self, registry: DatabaseRegistry) -> None:
        self.registry = registry
        self.store = registry.store

    # -- public API ----------------------------------------------------------

    def evaluate(self, query: Query | str) -> Object:
        """Evaluate and return the answer object (registered in store)."""
        oids = self.evaluate_oids(query)
        return make_answer(sorted(oids), store=self.store)

    def evaluate_oids(self, query: Query | str) -> set[str]:
        """Evaluate and return the raw answer OID set."""
        if isinstance(query, str):
            query = parse_query(query)
        store = self._scoped_store(query)
        entry_oid = self._resolve_entry(query.entry)
        candidates = compile_expression(query.select_path).evaluate(
            store, entry_oid
        )
        if query.condition is not None:
            candidates = {
                oid
                for oid in candidates
                if evaluate_condition(store, oid, query.condition)
            }
        if query.ans_int is not None:
            candidates &= self.registry.members(query.ans_int)
        return candidates

    # -- helpers ----------------------------------------------------------------

    def _resolve_entry(self, entry: str) -> str:
        """An entry is a database/view name or a bare OID."""
        if entry in self.registry.names():
            return self.registry.resolve(entry).oid
        if entry in self.store:
            return entry
        raise QueryEvaluationError(
            f"entry point {entry!r} is neither a database nor an OID"
        )

    def _scoped_store(self, query: Query) -> ObjectStore | ScopedStore:
        if query.within is None:
            return self.store
        scope = frozenset(self.registry.members(query.within))
        entry_oid = self._resolve_entry(query.entry)
        # The scope database object itself is admitted so that a query
        # can use the scoped database as its own entry point.
        scope_object = self.registry.resolve(query.within).oid
        return ScopedStore(
            self.store, scope, admit=(entry_oid, scope_object)
        )
