"""Query answers as objects.

Paper Section 2: "A query answer is also an object, with the format
``<ANS, answer, set, value(ANS)>``" — which is what makes views-on-views
and follow-on queries possible (a query answer *is* a GSDB).
"""

from __future__ import annotations

from typing import Iterable

from repro.gsdb.object import Object
from repro.gsdb.oid import OidGenerator
from repro.gsdb.store import ObjectStore

#: Label carried by answer objects.
ANSWER_LABEL = "answer"

_answer_oids = OidGenerator("ANS")


def make_answer(
    oids: Iterable[str],
    *,
    store: ObjectStore | None = None,
    oid: str | None = None,
    label: str = ANSWER_LABEL,
) -> Object:
    """Build an answer object over *oids*.

    When *store* is given the answer is registered there so it can be
    used as an entry point or combined with ``union``/``int``; reference
    checking is bypassed because answers may cite objects living in
    other stores (the paper's queries span databases).
    """
    answer = Object.set_object(oid or _answer_oids.fresh(), label, oids)
    if store is not None:
        previous = store.check_references
        store.check_references = False
        try:
            store.add_object(answer)
        finally:
            store.check_references = previous
    return answer
