"""Tokenizer for the query and view-definition languages.

Handles the surface syntax of paper expressions 2.1 and 3.5::

    SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON
    define mview MVJ as: SELECT ROOT.* X WHERE X.name = 'John'

Token kinds: keywords (case-insensitive), identifiers, wildcards ``*``
and ``?``, punctuation (``.``, ``|``, ``(``, ``)``, ``:``), comparison
operators, string literals in single quotes, and numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import QuerySyntaxError

KEYWORDS = frozenset(
    {
        "SELECT",
        "WHERE",
        "WITHIN",
        "ANS",
        "INT",
        "AND",
        "OR",
        "NOT",
        "EXISTS",
        "CONTAINS",
        "MATCHES",
        "DEFINE",
        "VIEW",
        "MVIEW",
        "AS",
        "TRUE",
        "FALSE",
    }
)

#: Multi-character operators first so maximal munch works.
_OPERATORS = ("<=", ">=", "!=", "=", "<", ">")
_PUNCTUATION = {
    ".": "DOT",
    "|": "PIPE",
    "(": "LPAREN",
    ")": "RPAREN",
    ":": "COLON",
    ",": "COMMA",
    "*": "STAR",
    "?": "QMARK",
}


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # KEYWORD, IDENT, OP, STRING, NUMBER, or a punctuation name
    text: str
    value: object
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`QuerySyntaxError` on bad input."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char.isspace():
            i += 1
            continue
        if char == "'":
            token, i = _string(text, i)
            yield token
            continue
        if char.isdigit() or (
            char == "-" and i + 1 < length and text[i + 1].isdigit()
        ):
            token, i = _number(text, i)
            yield token
            continue
        if char.isalpha() or char == "_":
            token, i = _word(text, i)
            yield token
            continue
        matched_op = next(
            (op for op in _OPERATORS if text.startswith(op, i)), None
        )
        if matched_op is not None:
            yield Token("OP", matched_op, matched_op, i)
            i += len(matched_op)
            continue
        if char in _PUNCTUATION:
            yield Token(_PUNCTUATION[char], char, char, i)
            i += 1
            continue
        raise QuerySyntaxError(text, i, f"unexpected character {char!r}")


def _string(text: str, start: int) -> tuple[Token, int]:
    i = start + 1
    chars: list[str] = []
    while i < len(text):
        char = text[i]
        if char == "\\" and i + 1 < len(text):
            chars.append(text[i + 1])
            i += 2
            continue
        if char == "'":
            return (
                Token("STRING", text[start : i + 1], "".join(chars), start),
                i + 1,
            )
        chars.append(char)
        i += 1
    raise QuerySyntaxError(text, start, "unterminated string literal")


def _number(text: str, start: int) -> tuple[Token, int]:
    i = start + 1 if text[start] == "-" else start
    while i < len(text) and text[i].isdigit():
        i += 1
    is_float = False
    if i < len(text) and text[i] == "." and i + 1 < len(text) and text[i + 1].isdigit():
        is_float = True
        i += 1
        while i < len(text) and text[i].isdigit():
            i += 1
    if i < len(text) and text[i] in "eE":
        mark = i + 1
        if mark < len(text) and text[mark] in "+-":
            mark += 1
        if mark < len(text) and text[mark].isdigit():
            is_float = True
            i = mark
            while i < len(text) and text[i].isdigit():
                i += 1
    raw = text[start:i]
    value: object = float(raw) if is_float else int(raw)
    return Token("NUMBER", raw, value, start), i


def _word(text: str, start: int) -> tuple[Token, int]:
    i = start
    while i < len(text) and (text[i].isalnum() or text[i] in "_$"):
        i += 1
    word = text[start:i]
    upper = word.upper()
    if upper in KEYWORDS:
        if upper == "TRUE":
            return Token("BOOL", word, True, start), i
        if upper == "FALSE":
            return Token("BOOL", word, False, start), i
        return Token("KEYWORD", upper, upper, start), i
    return Token("IDENT", word, word, start), i
