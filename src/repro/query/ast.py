"""Abstract syntax of the paper's query language.

The base form (paper expression 2.1)::

    SELECT OBJ.sel_path_exp X
    WHERE cond(X.cond_path_exp)
    [WITHIN DB1]
    [ANS INT DB2]

The paper's examples write conditions concretely, e.g. ``X.age > 40``
and ``X.name = 'John'``; we adopt that concrete syntax.  As the paper
notes (end of Section 2), extra features are easy to add; we support
conjunction/disjunction/negation of conditions and an ``EXISTS`` test —
the *simple-view* maintainer rejects anything beyond a single
comparison, while the extended maintainer accepts conjunctions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Union

from repro.gsdb.object import AtomicValue
from repro.paths.expression import PathExpression

#: Comparison operators in condition atoms.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=", "contains", "matches")


def _compare(op: str, left: AtomicValue, right: AtomicValue) -> bool:
    """Apply one comparison, tolerating mixed types by returning False.

    GSDB labels and values are schemaless (Section 2), so a condition
    like ``age > 40`` may meet a string-valued ``age`` object; the
    condition is simply false for it rather than an error.
    """
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
        if op == "contains":
            return isinstance(left, str) and str(right) in left
        if op == "matches":
            return isinstance(left, str) and re.search(str(right), left) is not None
    except TypeError:
        return False
    raise ValueError(f"unknown comparison operator: {op!r}")


@dataclass(frozen=True)
class Comparison:
    """``X.<path> <op> <literal>`` — the paper's ``cond()`` atom.

    ``cond()`` "accepts a set of atomic objects, and returns true if one
    of those object values satisfies the condition" (Section 2) — i.e.
    existential semantics over ``X.path``.
    """

    path: PathExpression
    op: str
    literal: AtomicValue

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator: {self.op!r}")

    def test_value(self, value: AtomicValue) -> bool:
        """Test the comparison against one atomic value."""
        return _compare(self.op, value, self.literal)

    def predicate(self) -> Callable[[AtomicValue], bool]:
        """A plain value predicate (for ``eval(N, p, cond)``)."""
        return self.test_value

    def __str__(self) -> str:
        literal = (
            f"'{self.literal}'" if isinstance(self.literal, str) else self.literal
        )
        return f"X.{self.path} {self.op} {literal}"


@dataclass(frozen=True)
class Exists:
    """``EXISTS X.<path>`` — true when ``X.path`` is non-empty."""

    path: PathExpression

    def __str__(self) -> str:
        return f"EXISTS X.{self.path}"


@dataclass(frozen=True)
class And:
    """Conjunction of conditions (extended views, paper Section 6)."""

    operands: tuple["Condition", ...]

    def __str__(self) -> str:
        return " AND ".join(_parenthesize(c) for c in self.operands)


@dataclass(frozen=True)
class Or:
    """Disjunction of conditions (extension)."""

    operands: tuple["Condition", ...]

    def __str__(self) -> str:
        return " OR ".join(_parenthesize(c) for c in self.operands)


@dataclass(frozen=True)
class Not:
    """Negated condition (extension)."""

    operand: "Condition"

    def __str__(self) -> str:
        return f"NOT {_parenthesize(self.operand)}"


Condition = Union[Comparison, Exists, And, Or, Not]


def _parenthesize(condition: Condition) -> str:
    if isinstance(condition, (And, Or)):
        return f"({condition})"
    return str(condition)


def condition_paths(condition: Condition) -> list[PathExpression]:
    """All condition paths mentioned (for screening and maintenance)."""
    if isinstance(condition, (Comparison, Exists)):
        return [condition.path]
    if isinstance(condition, Not):
        return condition_paths(condition.operand)
    paths: list[PathExpression] = []
    for operand in condition.operands:
        paths.extend(condition_paths(operand))
    return paths


@dataclass(frozen=True)
class Query:
    """One parsed query.

    Attributes:
        entry: the entry-point name — an OID or a registered database
            name ("the user must provide an entry point", Section 2).
        select_path: the ``sel_path_exp`` after the entry.
        variable: the bound variable name (defaults to ``X``; the paper
            omits it on queries without a WHERE, e.g. ``SELECT VJ.?.age``).
        condition: optional WHERE condition tree.
        within: optional ``WITHIN`` database name — objects outside it
            are invisible to the whole evaluation.
        ans_int: optional ``ANS INT`` database name — the answer set is
            intersected with that database's value.
    """

    entry: str
    select_path: PathExpression
    variable: str = "X"
    condition: Condition | None = None
    within: str | None = None
    ans_int: str | None = None

    def __str__(self) -> str:
        parts = [f"SELECT {self.entry}"]
        if len(self.select_path):
            parts[0] += f".{self.select_path}"
        parts[0] += f" {self.variable}"
        if self.condition is not None:
            parts.append(f"WHERE {self.condition}")
        if self.within is not None:
            parts.append(f"WITHIN {self.within}")
        if self.ans_int is not None:
            parts.append(f"ANS INT {self.ans_int}")
        return " ".join(parts)

    def with_scope(
        self, *, within: str | None = None, ans_int: str | None = None
    ) -> "Query":
        """Return a copy with added/replaced scope clauses.

        Section 3.1 envisions an authorization system that automatically
        expands user queries with ``ANS INT``/``WITHIN`` clauses; this is
        the hook it uses.
        """
        return Query(
            entry=self.entry,
            select_path=self.select_path,
            variable=self.variable,
            condition=self.condition,
            within=within if within is not None else self.within,
            ans_int=ans_int if ans_int is not None else self.ans_int,
        )
