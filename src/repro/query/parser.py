"""Recursive-descent parser for queries and view definitions.

Grammar (keywords case-insensitive)::

    statement   := query | view_def
    view_def    := DEFINE (VIEW | MVIEW) IDENT AS ':'? query
    query       := SELECT entry_path [IDENT]
                   [WHERE condition]
                   [WITHIN IDENT]
                   [ANS INT IDENT]
    entry_path  := IDENT ('.' segment)*
    segment     := '*' | '?' | IDENT ('|' IDENT)*
    condition   := or_cond
    or_cond     := and_cond (OR and_cond)*
    and_cond    := unary_cond (AND unary_cond)*
    unary_cond  := NOT unary_cond | '(' condition ')' | atom
    atom        := EXISTS var_path
                 | var_path (op | CONTAINS | MATCHES) literal
    var_path    := IDENT ('.' segment)*        -- IDENT must be the query
                                                  variable
    literal     := STRING | NUMBER | BOOL

The paper allows queries without a variable when there is no WHERE
clause (``SELECT VJ.?.age``); we default the variable name to ``X``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuerySyntaxError
from repro.paths.expression import (
    AnyLabelSegment,
    AnyPathSegment,
    LabelSegment,
    PathExpression,
    Segment,
)
from repro.query.ast import And, Comparison, Condition, Exists, Not, Or, Query
from repro.query.lexer import Token, tokenize


@dataclass(frozen=True)
class ViewDefinitionStatement:
    """A parsed ``define view``/``define mview`` statement."""

    name: str
    materialized: bool
    query: Query


def parse_query(text: str) -> Query:
    """Parse a ``SELECT`` query string."""
    parser = _Parser(text)
    query = parser.parse_query()
    parser.expect_end()
    return query


def parse_statement(text: str) -> Query | ViewDefinitionStatement:
    """Parse either a query or a view definition."""
    parser = _Parser(text)
    if parser.peek_keyword("DEFINE"):
        statement = parser.parse_view_definition()
    else:
        statement = parser.parse_query()
    parser.expect_end()
    return statement


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError(
                self.text, len(self.text), "unexpected end of input"
            )
        self.index += 1
        return token

    def peek_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "KEYWORD"
            and token.value == keyword
        )

    def _accept_keyword(self, keyword: str) -> bool:
        if self.peek_keyword(keyword):
            self.index += 1
            return True
        return False

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if token is None or token.kind != "KEYWORD" or token.value != keyword:
            position = token.position if token else len(self.text)
            raise QuerySyntaxError(
                self.text, position, f"expected keyword {keyword}"
            )
        return self._advance()

    def _expect(self, kind: str, what: str) -> Token:
        token = self._peek()
        if token is None or token.kind != kind:
            position = token.position if token else len(self.text)
            raise QuerySyntaxError(self.text, position, f"expected {what}")
        return self._advance()

    def expect_end(self) -> None:
        token = self._peek()
        if token is not None:
            raise QuerySyntaxError(
                self.text, token.position, f"unexpected trailing {token.text!r}"
            )

    # -- grammar -----------------------------------------------------------

    def parse_view_definition(self) -> ViewDefinitionStatement:
        self._expect_keyword("DEFINE")
        token = self._advance()
        if token.kind != "KEYWORD" or token.value not in ("VIEW", "MVIEW"):
            raise QuerySyntaxError(
                self.text, token.position, "expected VIEW or MVIEW"
            )
        materialized = token.value == "MVIEW"
        name = self._expect("IDENT", "view name").text
        self._expect_keyword("AS")
        colon = self._peek()
        if colon is not None and colon.kind == "COLON":
            self._advance()
        query = self.parse_query()
        return ViewDefinitionStatement(
            name=name, materialized=materialized, query=query
        )

    def parse_query(self) -> Query:
        self._expect_keyword("SELECT")
        entry, select_path = self._parse_entry_path()
        variable = "X"
        token = self._peek()
        if token is not None and token.kind == "IDENT":
            variable = self._advance().text
        condition = None
        if self._accept_keyword("WHERE"):
            condition = self._parse_condition(variable)
        within = None
        if self._accept_keyword("WITHIN"):
            within = self._expect("IDENT", "database name after WITHIN").text
        ans_int = None
        if self._accept_keyword("ANS"):
            self._expect_keyword("INT")
            ans_int = self._expect("IDENT", "database name after ANS INT").text
        return Query(
            entry=entry,
            select_path=select_path,
            variable=variable,
            condition=condition,
            within=within,
            ans_int=ans_int,
        )

    def _parse_entry_path(self) -> tuple[str, PathExpression]:
        entry = self._expect("IDENT", "entry point (OID or database)").text
        segments = self._parse_dotted_segments()
        return entry, PathExpression(segments)

    def _parse_dotted_segments(self) -> list[Segment]:
        segments: list[Segment] = []
        while True:
            token = self._peek()
            if token is None or token.kind != "DOT":
                return segments
            self._advance()
            segments.append(self._parse_segment())

    def _parse_segment(self) -> Segment:
        token = self._advance()
        if token.kind == "STAR":
            return AnyPathSegment()
        if token.kind == "QMARK":
            return AnyLabelSegment()
        if token.kind == "IDENT":
            labels = [token.text]
            while True:
                peeked = self._peek()
                if peeked is None or peeked.kind != "PIPE":
                    break
                self._advance()
                labels.append(self._expect("IDENT", "label after '|'").text)
            return LabelSegment(frozenset(labels))
        raise QuerySyntaxError(
            self.text, token.position, "expected path segment"
        )

    # -- conditions ---------------------------------------------------------

    def _parse_condition(self, variable: str) -> Condition:
        return self._parse_or(variable)

    def _parse_or(self, variable: str) -> Condition:
        operands = [self._parse_and(variable)]
        while self._accept_keyword("OR"):
            operands.append(self._parse_and(variable))
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _parse_and(self, variable: str) -> Condition:
        operands = [self._parse_unary(variable)]
        while self._accept_keyword("AND"):
            operands.append(self._parse_unary(variable))
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _parse_unary(self, variable: str) -> Condition:
        if self._accept_keyword("NOT"):
            return Not(self._parse_unary(variable))
        token = self._peek()
        if token is not None and token.kind == "LPAREN":
            self._advance()
            condition = self._parse_condition(variable)
            self._expect("RPAREN", "closing parenthesis")
            return condition
        if self._accept_keyword("EXISTS"):
            path = self._parse_variable_path(variable)
            return Exists(path)
        return self._parse_comparison(variable)

    def _parse_variable_path(self, variable: str) -> PathExpression:
        token = self._expect("IDENT", f"variable {variable!r}")
        if token.text != variable:
            raise QuerySyntaxError(
                self.text,
                token.position,
                f"condition must use variable {variable!r}, got {token.text!r}",
            )
        segments = self._parse_dotted_segments()
        return PathExpression(segments)

    def _parse_comparison(self, variable: str) -> Comparison:
        path = self._parse_variable_path(variable)
        token = self._advance()
        if token.kind == "OP":
            op = str(token.value)
        elif token.kind == "KEYWORD" and token.value in (
            "CONTAINS",
            "MATCHES",
        ):
            op = token.value.lower()
        else:
            raise QuerySyntaxError(
                self.text, token.position, "expected comparison operator"
            )
        literal = self._parse_literal()
        return Comparison(path=path, op=op, literal=literal)

    def _parse_literal(self):
        token = self._advance()
        if token.kind in ("STRING", "NUMBER", "BOOL"):
            return token.value
        raise QuerySyntaxError(
            self.text, token.position, "expected literal value"
        )
