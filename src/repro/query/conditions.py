"""Evaluation of WHERE conditions against a store.

``cond()`` semantics (paper Section 2): the function accepts the set of
atomic objects in ``X.cond_path_exp`` and returns true if *one* of
their values satisfies the condition — existential semantics.  Set
objects reached by the path never satisfy an atomic comparison.

Boolean connectives (our extension, anticipated by the paper's closing
remark in Section 2) evaluate compositionally on top of the atoms.
"""

from __future__ import annotations

from repro.gsdb.store import ObjectStore
from repro.paths.automaton import compile_expression
from repro.paths.expression import PathExpression
from repro.query.ast import And, Comparison, Condition, Exists, Not, Or


def objects_on_path(
    store: ObjectStore, start: str, path: PathExpression
) -> set[str]:
    """``start.path`` for a (possibly wildcard) condition path."""
    return compile_expression(path).evaluate(store, start)


def atomic_values_on_path(
    store: ObjectStore, start: str, path: PathExpression
) -> list:
    """Values of atomic objects in ``start.path`` (sorted by OID)."""
    values = []
    for oid in sorted(objects_on_path(store, start, path)):
        obj = store.get_optional(oid)
        if obj is not None and obj.is_atomic:
            values.append(obj.atomic_value())
    return values


def evaluate_condition(
    store: ObjectStore, start: str, condition: Condition
) -> bool:
    """Evaluate a condition tree for candidate object *start*."""
    if isinstance(condition, Comparison):
        return any(
            condition.test_value(value)
            for value in atomic_values_on_path(store, start, condition.path)
        )
    if isinstance(condition, Exists):
        return bool(objects_on_path(store, start, condition.path))
    if isinstance(condition, Not):
        return not evaluate_condition(store, start, condition.operand)
    if isinstance(condition, And):
        return all(
            evaluate_condition(store, start, operand)
            for operand in condition.operands
        )
    if isinstance(condition, Or):
        return any(
            evaluate_condition(store, start, operand)
            for operand in condition.operands
        )
    raise TypeError(f"unknown condition node: {condition!r}")


def comparisons_disjoint(first: Comparison, second: Comparison) -> bool:
    """Can no atomic value satisfy both comparisons?

    Sound, not complete: returns True only when disjointness is
    provable (same condition path, incompatible value constraints);
    False means "might overlap".  Used by update-query-aware screening
    (paper Section 6: a salary raise for the Marks cannot affect a view
    over the Johns).
    """
    if first.path != second.path:
        return False  # different witnesses could satisfy each
    return _value_ranges_disjoint(first, second)


def _value_ranges_disjoint(first: Comparison, second: Comparison) -> bool:
    a_op, a_lit = first.op, first.literal
    b_op, b_lit = second.op, second.literal
    if a_op == "=" and b_op == "=":
        return a_lit != b_lit
    if a_op == "=" and b_op in ("<", "<=", ">", ">=", "!="):
        return not second.test_value(a_lit)
    if b_op == "=" and a_op in ("<", "<=", ">", ">=", "!="):
        return not first.test_value(b_lit)
    try:
        if a_op in ("<", "<=") and b_op in (">", ">="):
            strict = a_op == "<" or b_op == ">"
            return b_lit > a_lit or (strict and b_lit >= a_lit)  # type: ignore[operator]
        if a_op in (">", ">=") and b_op in ("<", "<="):
            strict = a_op == ">" or b_op == "<"
            return a_lit > b_lit or (strict and a_lit >= b_lit)  # type: ignore[operator]
    except TypeError:
        return False
    return False


def is_simple_condition(condition: Condition | None) -> bool:
    """True when the condition is a single comparison over a constant
    path — the class the simple-view maintainer (Algorithm 1) supports."""
    return (
        condition is None
        or (
            isinstance(condition, Comparison)
            and condition.path.is_constant
        )
    )
