"""Answering queries over *virtual* views (paper Section 3.3).

The paper discusses two strategies:

1. **Rewrite** the query into an equivalent one over base objects.
   Lacking a query algebra, brute-force rewriting can blow up; for our
   view language the composition is tractable because a view's value is
   itself computed by one query: a follow-on query with the view as its
   entry point composes into a two-stage *pipeline* whose first stage is
   the view's definition.
2. **Materialize on demand** — compute the view's value, then run the
   follow-on query against it, which "could contain a large number of
   objects [when] the query accesses a small number of them".

Both strategies are implemented so the benchmarks can compare them.
The two are observably equivalent; tests assert that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.object import Object
from repro.paths.automaton import compile_expression
from repro.query.answer import make_answer
from repro.query.ast import Query
from repro.query.conditions import evaluate_condition
from repro.query.evaluator import QueryEvaluator


class Strategy(enum.Enum):
    """How to answer a query whose entry point is a virtual view."""

    REWRITE = "rewrite"
    MATERIALIZE_ON_DEMAND = "materialize_on_demand"


@dataclass(frozen=True)
class Pipeline:
    """The rewritten form: evaluate *view_query*, then continue the
    follow-on traversal from each member of its result."""

    view_query: Query
    follow_on: Query

    def __str__(self) -> str:
        return f"[{self.view_query}] |> [{self.follow_on}]"


def rewrite_over_view(query: Query, view_query: Query) -> Pipeline:
    """Compose *query* (whose entry is a view) with the view definition."""
    return Pipeline(view_query=view_query, follow_on=query)


def answer_over_virtual_view(
    evaluator: QueryEvaluator,
    query: Query,
    view_query: Query,
    *,
    strategy: Strategy = Strategy.REWRITE,
) -> Object:
    """Answer *query* whose entry point names a virtual view.

    Args:
        evaluator: evaluator over the base store.
        query: the follow-on query; its ``entry`` is ignored — the view
            stands in for it.
        view_query: the view's definition query.
        strategy: rewrite (stream members through the follow-on without
            building a view object) or materialize-on-demand (compute
            the full view value first, register it, then query it).
    """
    if strategy is Strategy.MATERIALIZE_ON_DEMAND:
        return _materialize_then_query(evaluator, query, view_query)
    return _rewritten(evaluator, query, view_query)


def _rewritten(
    evaluator: QueryEvaluator, query: Query, view_query: Query
) -> Object:
    members = evaluator.evaluate_oids(view_query)
    store = evaluator.store
    nfa = compile_expression(query.select_path)
    results: set[str] = set()
    # The (virtual) view object is the entry point, so the select path's
    # first step consumes the edge from the view object to a member:
    # feed each member's label to the NFA, then continue from the member.
    initial = nfa.initial()
    for member in sorted(members):
        obj = store.get_optional(member)
        if obj is None:
            continue
        states = nfa.step(initial, obj.label)
        if not states:
            continue
        for candidate in nfa.evaluate(store, member, from_states=states):
            if query.condition is None or evaluate_condition(
                store, candidate, query.condition
            ):
                results.add(candidate)
    if query.ans_int is not None:
        results &= evaluator.registry.members(query.ans_int)
    return make_answer(sorted(results), store=store)


def _materialize_then_query(
    evaluator: QueryEvaluator, query: Query, view_query: Query
) -> Object:
    registry: DatabaseRegistry = evaluator.registry
    view_answer = evaluator.evaluate(view_query)
    temp_name = f"__odv_{view_answer.oid}"
    registry.register(temp_name, view_answer.oid)
    try:
        effective = Query(
            entry=temp_name,
            select_path=query.select_path,
            variable=query.variable,
            condition=query.condition,
            within=query.within,
            ans_int=query.ans_int,
        )
        return evaluator.evaluate(effective)
    finally:
        registry.unregister(temp_name)
