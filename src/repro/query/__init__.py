"""The paper's query language (Section 2, expression 2.1).

``SELECT OBJ.sel_path_exp X WHERE cond(X.cond_path_exp) [WITHIN DB1]
[ANS INT DB2]`` — lexer, parser, condition evaluation, scoped query
evaluation, and the two strategies for querying virtual views
(Section 3.3).
"""

from repro.query.answer import ANSWER_LABEL, make_answer
from repro.query.ast import (
    And,
    Comparison,
    Condition,
    Exists,
    Not,
    Or,
    Query,
    condition_paths,
)
from repro.query.conditions import (
    atomic_values_on_path,
    evaluate_condition,
    is_simple_condition,
    objects_on_path,
)
from repro.query.evaluator import QueryEvaluator, ScopedStore
from repro.query.parser import (
    ViewDefinitionStatement,
    parse_query,
    parse_statement,
)
from repro.query.rewrite import (
    Pipeline,
    Strategy,
    answer_over_virtual_view,
    rewrite_over_view,
)

__all__ = [
    "ANSWER_LABEL",
    "And",
    "Comparison",
    "Condition",
    "Exists",
    "Not",
    "Or",
    "Pipeline",
    "Query",
    "QueryEvaluator",
    "ScopedStore",
    "Strategy",
    "ViewDefinitionStatement",
    "answer_over_virtual_view",
    "atomic_values_on_path",
    "condition_paths",
    "evaluate_condition",
    "is_simple_condition",
    "make_answer",
    "objects_on_path",
    "parse_query",
    "parse_statement",
    "rewrite_over_view",
]
