"""Warehouse-side source links with capability-aware decomposition.

Paper Section 5.1 / Example 9: the warehouse translates the evaluation
functions of Algorithm 1 into source queries.  "If the source can
evaluate any queries required ... the warehouse can directly apply
Algorithm 1.  When a source can only support some simple querying
interface, then the warehouse can decompose the evaluation of a
function into multiple simple queries" — which is why the number of
queries explodes for weak sources (experiment E5 reports it).

A :class:`SourceLink` is the only conduit: every exchange is recorded in
the shared :class:`~repro.warehouse.protocol.MessageLog` and charged to
``source_queries`` on the warehouse counters.

Fault tolerance (experiment E15): a link may carry a
:class:`RetryPolicy`.  When a query finds the source down
(:class:`~repro.errors.SourceUnavailableError`) or its answer is lost
in flight (:class:`~repro.errors.QueryTimeoutError`), the link retries
with capped exponential backoff, advancing an injectable simulated
clock between attempts so a crashed source can come back up while the
link waits.  Queries are read-only, so the timeout-then-late-reply race
is benign: the retry simply re-asks and receives an answer evaluated at
the *current* source state.  Only successful exchanges are recorded in
the message log; failed attempts are charged to the recovery counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import QueryTimeoutError, SourceUnavailableError
from repro.instrumentation.counters import CostCounters
from repro.warehouse.protocol import (
    MessageLog,
    ObjectPayload,
    PathPayload,
    QueryAnswer,
    QueryKind,
    SourceQuery,
)
from repro.warehouse.source import Source, SourceCapability


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for failed source queries.

    Attempt *k* (counting from 1) waits
    ``min(base_delay * multiplier**(k-1), max_delay)`` before retrying;
    after ``max_retries`` failed retries the error propagates and the
    warehouse falls back to marking the view for resync.
    """

    max_retries: int = 6
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 4.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry *attempt* (1-based), capped."""
        return min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )

    def total_budget(self) -> float:
        """Total simulated time the policy is willing to wait."""
        return sum(self.delay(k) for k in range(1, self.max_retries + 1))


class SourceLink:
    """The warehouse's handle on one source."""

    def __init__(
        self,
        source: Source,
        *,
        log: MessageLog | None = None,
        counters: CostCounters | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.source = source
        self.log = log if log is not None else MessageLog()
        self.counters = counters if counters is not None else CostCounters()
        self.retry = retry
        #: chaos hook: called after every served query, may raise
        #: :class:`QueryTimeoutError` to simulate a lost answer.
        self.fault_injector: Callable[[SourceQuery], None] | None = None
        #: simulated-clock hook: called with each backoff delay so
        #: time-based recovery (crashed sources coming back) can run.
        self.clock: Callable[[float], None] | None = None
        self.retries_performed = 0
        self.failures = 0

    # -- raw exchange ---------------------------------------------------------

    def ask(self, query: SourceQuery) -> QueryAnswer:
        """Send one query, retrying on outage/timeout, and record it."""
        attempt = 0
        while True:
            try:
                return self._exchange(query)
            except (QueryTimeoutError, SourceUnavailableError) as error:
                if isinstance(error, QueryTimeoutError):
                    self.counters.query_timeouts += 1
                else:
                    self.counters.source_failures += 1
                attempt += 1
                if self.retry is None or attempt > self.retry.max_retries:
                    self.failures += 1
                    raise
                self.counters.query_retries += 1
                self.retries_performed += 1
                if self.clock is not None:
                    self.clock(self.retry.delay(attempt))

    def _exchange(self, query: SourceQuery) -> QueryAnswer:
        """One query attempt: serve, run fault hooks, record traffic."""
        answer = self.source.serve(query)
        if self.fault_injector is not None:
            # May raise QueryTimeoutError *after* the source served the
            # query: the answer is lost, the source-side work happened.
            self.fault_injector(query)
        self.log.record_query(query, answer)
        self.counters.source_queries += 1
        self.counters.messages_sent += 2  # query + answer
        self.counters.bytes_sent += (
            query.estimated_size() + answer.estimated_size()
        )
        return answer

    # -- evaluation functions (capability-aware) ---------------------------------

    def fetch_object(self, oid: str) -> ObjectPayload | None:
        answer = self.ask(SourceQuery(QueryKind.FETCH_OBJECT, oid))
        return answer.objects[0] if answer.objects else None

    def fetch_parents(self, oid: str) -> tuple[ObjectPayload, ...]:
        return self.ask(SourceQuery(QueryKind.FETCH_PARENTS, oid)).objects

    def path_from(
        self, oid: str, labels: tuple[str, ...]
    ) -> tuple[ObjectPayload, ...]:
        """``oid.labels`` at the source — one query for capable sources,
        a fetch cascade for FETCH_ONLY ones."""
        if self.source.capability >= SourceCapability.PATH_QUERIES:
            return self.ask(
                SourceQuery(QueryKind.PATH_FROM, oid, labels=labels)
            ).objects
        return self._decomposed_path_from(oid, labels)

    def path_to_root(self, oid: str) -> PathPayload | None:
        """``path(ROOT, oid)`` with the OID chain."""
        if self.source.capability >= SourceCapability.PATH_QUERIES:
            return self.ask(SourceQuery(QueryKind.PATH_TO_ROOT, oid)).path
        return self._decomposed_path_to_root(oid)

    # -- decompositions for weak sources ---------------------------------------------

    def _decomposed_path_from(
        self, oid: str, labels: tuple[str, ...]
    ) -> tuple[ObjectPayload, ...]:
        start = self.fetch_object(oid)
        if start is None:
            return ()
        frontier: dict[str, ObjectPayload] = {oid: start}
        for label in labels:
            next_frontier: dict[str, ObjectPayload] = {}
            for payload in frontier.values():
                if payload.type != "set":
                    continue
                for child_oid in payload.value:  # tuple of OIDs
                    if child_oid in next_frontier:
                        continue
                    child = self.fetch_object(child_oid)
                    if child is not None and child.label == label:
                        next_frontier[child_oid] = child
            frontier = next_frontier
            if not frontier:
                break
        return tuple(frontier[oid] for oid in sorted(frontier))

    def _decomposed_path_to_root(self, oid: str) -> PathPayload | None:
        root = self.source.root
        chain = [oid]
        labels: list[str] = []
        current = oid
        while current != root:
            payload = self.fetch_object(current)
            if payload is None:
                return None
            labels.append(payload.label)
            parents = self.fetch_parents(current)
            if not parents:
                return None
            chain.append(parents[0].oid)
            current = parents[0].oid
        chain.reverse()
        labels.reverse()
        return PathPayload(
            target=oid, oid_chain=tuple(chain), labels=tuple(labels)
        )
