"""The warehouse: remote view maintenance over sources (paper Section 5).

The key claim of Section 5.1 is that "the warehouse can apply the same
algorithm" — Algorithm 1 — with the evaluation functions realized by
source queries, notification contents, and cached auxiliary structure.
We realize that literally:

* :class:`RemoteBaseStore` duck-types the read interface of
  :class:`~repro.gsdb.store.ObjectStore` (``get`` / ``get_optional`` /
  ``counters``), resolving each object through, in order, the current
  notification's payload *seeds*, the auxiliary cache, and finally a
  source query.  The unchanged traversal machinery (``eval``, path
  following) then runs against it, and every cache miss is a metered
  source query.
* :class:`RemoteParentIndex` duck-types
  :class:`~repro.gsdb.indexes.ParentIndex.parent`, resolving parents
  through level-3 path payloads, the cache, or ``fetch_parents``.
* :class:`RemoteViewMaintainer` *is*
  :class:`~repro.views.maintenance.SimpleViewMaintainer` — subclassed
  only to (a) screen notifications using labels/values shipped at level
  ≥ 2 and path knowledge (Section 5.2), and (b) answer ``path(ROOT,N)``
  from level-3 payloads before falling back to a ``PATH_TO_ROOT`` query.

:class:`Warehouse` wires sources, monitors, links, caches, and views
together and keeps per-update statistics for experiments E5/E6/E10.

Fault tolerance (experiment E15): the warehouse accepts *at-least-once,
possibly reordered* notification delivery — e.g. through a
:class:`repro.chaos.channel.FaultyChannel` — and restores exactly-once
in-order processing per source with a sequence-number ingress
(:class:`_SourceIngress`): duplicates are dropped, early arrivals are
held in a reorder buffer, and anything flushed late is processed as a
*stale* delivery using the batch-coalescing correctness argument (the
source state observed is newer than the one the notification was built
in, which is exactly the situation of batched dispatch).  Delivery gaps
are closed by :meth:`Warehouse.heal`: lost notifications are replayed
from the monitor's bounded history — O(lost messages), independent of
database size — and only when history has been evicted does a view fall
back to full recomputation (:meth:`Warehouse.resync_view`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    QueryTimeoutError,
    SourceUnavailableError,
    UnknownObjectError,
)
from repro.gsdb.object import Object
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Update
from repro.instrumentation.counters import CostCounters
from repro.paths.path import Path
from repro.views.definition import ViewDefinition
from repro.views.dispatcher import coalesce_updates, screen_replayed
from repro.views.maintenance import SimpleViewMaintainer
from repro.views.materialized import MaterializedView
from repro.views.recompute import compute_view_members
from repro.warehouse.caching import AuxiliaryCache, CachePolicy
from repro.warehouse.monitor import Monitor
from repro.warehouse.protocol import (
    MessageLog,
    ObjectPayload,
    ReportingLevel,
    UpdateNotification,
)
from repro.warehouse.schema_knowledge import PathKnowledge
from repro.warehouse.source import Source
from repro.warehouse.wrapper import RetryPolicy, SourceLink


class _StaleContext:
    """Minimal maintenance context for out-of-order (stale) deliveries.

    A late-delivered notification is processed against a source state
    newer than the one it was built in — the same situation as batched
    dispatch, where the base is already at the final state.  Flagging
    ``batched`` makes the maintainer's delete handling history-aware
    (purge-by-inspection; see
    ``SimpleViewMaintainer._membership_after_delete``) instead of
    witness-driven.  The chain lookups of
    :class:`~repro.views.dispatcher.PathContext` are not needed: the
    remote maintainer overrides every evaluation function that would
    consult them.
    """

    batched = True


_STALE_CONTEXT = _StaleContext()


def _object_from_payload(payload: ObjectPayload) -> Object:
    if payload.type == "set":
        return Object.set_object(payload.oid, payload.label, payload.value)
    return Object(payload.oid, payload.label, payload.type, payload.value)


class RemoteBaseStore:
    """Store-shaped view of a remote source (seeds → cache → queries)."""

    def __init__(
        self,
        link: SourceLink,
        cache: AuxiliaryCache | None,
        counters: CostCounters,
    ) -> None:
        self.link = link
        self.cache = cache
        self.counters = counters
        self._seeds: dict[str, Object] = {}
        self._negative: set[str] = set()

    # -- seeding (per-notification payload) ----------------------------------

    def begin_update(self, notification: UpdateNotification) -> None:
        """Reset per-update memo and seed it from the notification."""
        self._seeds.clear()
        self._negative.clear()
        for payload in notification.contents:
            self._seeds[payload.oid] = _object_from_payload(payload)

    def reset(self) -> None:
        """Forget every memoized object (used when resyncing a view:
        memo entries may describe pre-loss state)."""
        self._seeds.clear()
        self._negative.clear()

    # -- ObjectStore read interface ----------------------------------------------

    def get_optional(self, oid: str) -> Object | None:
        self.counters.object_reads += 1
        seeded = self._seeds.get(oid)
        if seeded is not None:
            return seeded
        if oid in self._negative:
            return None
        if self.cache is not None:
            entry = self.cache.lookup(oid)
            if entry is not None:
                if entry.is_set:
                    obj = Object.set_object(oid, entry.label, entry.children)
                    self._seeds[oid] = obj
                    return obj
                if entry.value is not None:
                    obj = Object(oid, entry.label, entry.type, entry.value)
                    self._seeds[oid] = obj
                    return obj
                # STRUCTURE policy: atomic value not cached — fall through
                # to a source query (the paper's "some simple queries may
                # need to be sent back to the source to test a condition").
        payload = self.link.fetch_object(oid)
        if payload is None:
            self._negative.add(oid)
            return None
        obj = _object_from_payload(payload)
        self._seeds[oid] = obj
        return obj

    def get(self, oid: str) -> Object:
        obj = self.get_optional(oid)
        if obj is None:
            raise UnknownObjectError(oid)
        return obj

    def __contains__(self, oid: str) -> bool:
        return self.get_optional(oid) is not None


class RemoteParentIndex:
    """Parent lookups resolved via path payloads, cache, or queries."""

    def __init__(
        self, link: SourceLink, cache: AuxiliaryCache | None
    ) -> None:
        self.link = link
        self.cache = cache
        self._hints: dict[str, str] = {}

    def begin_update(self, notification: UpdateNotification) -> None:
        self._hints.clear()
        for payload in notification.paths:
            chain = payload.oid_chain
            for parent, child in zip(chain, chain[1:]):
                self._hints[child] = parent

    def add_hint(self, child: str, parent: str) -> None:
        self._hints[child] = parent

    def reset(self) -> None:
        """Forget every memoized parent (stale-delivery hygiene)."""
        self._hints.clear()

    def parent(self, oid: str) -> str | None:
        hinted = self._hints.get(oid)
        if hinted is not None:
            return hinted
        if self.cache is not None:
            cached = self.cache.parent_of(oid)
            if cached is not None:
                self._hints[oid] = cached
                return cached
        parents = self.link.fetch_parents(oid)
        if not parents:
            return None
        parent = parents[0].oid
        self._hints[oid] = parent
        return parent

    def parents(self, oid: str) -> set[str]:
        parent = self.parent(oid)
        return {parent} if parent is not None else set()


class RemoteViewMaintainer(SimpleViewMaintainer):
    """Algorithm 1 at the warehouse, with screening and payload reuse."""

    def __init__(
        self,
        view: MaterializedView,
        remote_store: RemoteBaseStore,
        remote_index: RemoteParentIndex,
        link: SourceLink,
        *,
        knowledge: PathKnowledge | None = None,
        screen: bool = True,
    ) -> None:
        super().__init__(view, parent_index=remote_index)  # type: ignore[arg-type]
        self.base = remote_store  # remote resolution replaces local store
        self.link = link
        self.knowledge = knowledge
        self.screen = screen
        self.notifications_processed = 0
        self.notifications_screened = 0
        self._current: UpdateNotification | None = None

    # -- entry point -----------------------------------------------------------

    def process(
        self, notification: UpdateNotification, *, stale: bool = False
    ) -> bool:
        """Handle one notification; returns False when screened out.

        *stale* marks late deliveries (reordered or replayed): the
        update is then handled under :class:`_StaleContext` so deletes
        purge by inspection rather than trusting witnesses evaluated
        against the newer source state.  Screening stays sound for
        stale deletes because it uses only the label gate and current
        membership, never final-state reachability (same argument as
        the dispatcher's batched-delete screen).
        """
        self.notifications_processed += 1
        if self.screen and self._screened_out(notification):
            self.notifications_screened += 1
            return False
        index = self.parent_index
        assert isinstance(index, RemoteParentIndex)
        if stale:
            # The payloads describe the source as it was when the
            # notification was built; evaluation must run against the
            # *current* source state (the final-state argument), so
            # clear the memos instead of seeding them and resolve
            # everything through the cache or live queries.  (Screening
            # above may still use the payload *labels* — labels never
            # change.)
            self._current = None
            self.base.reset()
            index.reset()
        else:
            self._current = notification
            self.base.begin_update(notification)
            index.begin_update(notification)
        try:
            self.handle(
                notification.update,
                _STALE_CONTEXT if stale else None,  # type: ignore[arg-type]
            )
        finally:
            self._current = None
        return True

    # -- screening (paper Section 5.1 scenario 2 + Section 5.2 knowledge) ----------

    def _screened_out(self, notification: UpdateNotification) -> bool:
        update = notification.update
        label = self._moved_label(notification)
        if label is None:
            return False  # level 1: nothing to screen with
        full_labels = set(self.full_path.labels)
        if label not in full_labels:
            # The moved/modified object's label does not occur on the
            # view path at all: irrelevant, unless it is a *member's*
            # value change that needs a delegate refresh.
            return not self._affects_member(update)
        if self.knowledge is not None:
            expression = self.view.definition.full_expression()
            if not self.knowledge.label_feasible_on(expression, label):
                return not self._affects_member(update)
        return False

    def _moved_label(self, notification: UpdateNotification) -> str | None:
        """Label of the moved/modified object, when the level ships it."""
        if notification.level < ReportingLevel.WITH_CONTENTS:
            return None
        update = notification.update
        # insert/delete move a child; modify touches one object.
        target = getattr(update, "child", None) or update.oid
        payload = notification.content_for(target)
        return payload.label if payload is not None else None

    def _affects_member(self, update: Update) -> bool:
        return any(
            self.view.contains(oid) for oid in update.directly_affected
        )

    # -- evaluation-function overrides ---------------------------------------------

    def _eval(self, oid: str, path: Path) -> set[str]:
        """``eval(N, p, cond)``, answered from the cached region when the
        walk stays inside it (the region is complete for path-relevant
        children, so no sibling probing is needed); atomic values absent
        under the STRUCTURE policy are fetched individually — "some
        simple queries may need to be sent back to the source to test a
        condition" (Section 5.2)."""
        cache = self.base.cache if isinstance(self.base, RemoteBaseStore) else None
        if cache is not None:
            entries = cache.region_descendants(oid, tuple(path.labels))
            if entries is not None:
                witnesses: set[str] = set()
                for entry in entries:
                    if entry.is_set:
                        continue
                    value = entry.value
                    if value is None:  # STRUCTURE policy: fetch the value
                        obj = self.base.get_optional(entry.oid)
                        if obj is None or obj.is_set:
                            continue
                        value = obj.atomic_value()
                    if self.cond(value):
                        witnesses.add(entry.oid)
                return witnesses
        return super()._eval(oid, path)

    def _path_from_root(self, oid: str) -> Path | None:
        # Level 3 ships path(ROOT, N) for the directly affected objects;
        # the cached region can reconstruct it for any cached object;
        # otherwise one PATH_TO_ROOT query.
        if oid == self.root:
            return Path(())
        if self._current is not None:
            payload = self._current.path_for(oid)
            if payload is not None:
                return Path(payload.labels)
        cache = self.base.cache if isinstance(self.base, RemoteBaseStore) else None
        if cache is not None:
            reconstructed = cache.root_path(oid)
            if reconstructed is not None:
                chain, labels = reconstructed
                self._hint_chain(chain)
                return Path(labels)
        answer = self.link.path_to_root(oid)
        if answer is None:
            return None
        self._hint_chain(answer.oid_chain)
        return Path(answer.labels)

    def _hint_chain(self, chain) -> None:
        index = self.parent_index
        assert isinstance(index, RemoteParentIndex)
        for parent, child in zip(chain, chain[1:]):
            index.add_hint(child, parent)

    def _surviving_ancestor(self, parent_oid: str) -> str | None:
        chain = self._oid_chain(parent_oid)
        if chain is None or len(self.sel_path) >= len(chain):
            return None
        return chain[len(self.sel_path)]

    def _oid_chain(self, oid: str) -> list[str] | None:
        if oid == self.root:
            return [oid]
        if self._current is not None:
            payload = self._current.path_for(oid)
            if payload is not None:
                return list(payload.oid_chain)
        cache = self.base.cache if isinstance(self.base, RemoteBaseStore) else None
        if cache is not None:
            reconstructed = cache.root_path(oid)
            if reconstructed is not None:
                return reconstructed[0]
        answer = self.link.path_to_root(oid)
        return list(answer.oid_chain) if answer is not None else None


@dataclass
class WarehouseViewStats:
    """Per-view accounting across processed notifications."""

    notifications: int = 0
    screened: int = 0
    source_queries: int = 0
    per_update_queries: list[int] = field(default_factory=list)
    bulk_batches: int = 0
    bulk_batches_screened: int = 0
    failures: int = 0
    resyncs: int = 0


@dataclass
class IngressStats:
    """Channel-facing delivery accounting for one source."""

    received: int = 0  # notifications handed to _receive (incl. dups)
    applied: int = 0  # notifications admitted in order and dispatched
    duplicates: int = 0  # dropped by sequence-number dedup
    held: int = 0  # early arrivals parked in the reorder buffer
    max_lag: int = 0  # widest observed gap (staleness window, in msgs)
    replayed: int = 0  # gap fillers retransmitted from monitor history


class _SourceIngress:
    """Sequence-tracking state for one source's notification stream.

    The channel may drop, duplicate, and reorder; the ingress restores
    exactly-once in-order processing: ``next_expected`` is the cursor,
    ``pending`` the reorder buffer (early arrivals keyed by sequence),
    and ``out_of_band`` the sequences consumed outside the channel
    (bulk-update descriptors) that gap detection must not mistake for
    losses.
    """

    def __init__(self) -> None:
        self.next_expected = 1
        self.pending: dict[int, UpdateNotification] = {}
        self.out_of_band: set[int] = set()
        self.stats = IngressStats()


class Warehouse:
    """Views + caches over one or more monitored sources (Figure 6).

    Args:
        shards: when > 1, the view store is an OID-hash-partitioned
            :class:`~repro.gsdb.sharding.ShardedStore` — view delegates
            distribute over the shards, per-shard counters expose the
            maintenance critical path, and the serving layer (see
            :meth:`enable_serving`) consults the border index so
            cross-shard invalidation stays sound.  Multiple concurrent
            sources may then feed different shards; delivery protection
            (sequence dedup + reorder buffering) is per-source ingress,
            which under that partitioning *is* per-shard — two sources'
            streams never contend on one cursor.
    """

    def __init__(self, *, shards: int | None = None) -> None:
        if shards is not None and shards > 1:
            from repro.gsdb.sharding import ShardedStore

            self.view_store = ShardedStore(shards)
        else:
            self.view_store = ObjectStore()
        self.counters = self.view_store.counters
        self.log = MessageLog()
        self.links: dict[str, SourceLink] = {}
        self.monitors: dict[str, Monitor] = {}
        self.views: dict[str, "WarehouseView"] = {}
        self.ingress: dict[str, _SourceIngress] = {}
        #: Optional read-path server over the view store (E16); see
        #: :meth:`enable_serving`.
        self.query_server = None

    # -- wiring -------------------------------------------------------------------

    def connect(
        self,
        source: Source,
        *,
        level: ReportingLevel = ReportingLevel.OIDS_ONLY,
        channel=None,
        retry: RetryPolicy | None = None,
    ) -> SourceLink:
        """Attach a source: create its link, monitor, and ingress state.

        *channel* is an optional fault-injecting transport between the
        monitor and the warehouse — anything with ``bind(monitor,
        sink)`` and (optionally) ``attach_link(link)``, e.g.
        :class:`repro.chaos.channel.FaultyChannel`.  Without one,
        notifications are delivered directly (still through the
        sequence-checked ingress).  *retry* arms the link's
        backoff state machine for source queries.
        """
        link = SourceLink(
            source, log=self.log, counters=self.counters, retry=retry
        )
        self.links[source.source_id] = link
        monitor = Monitor(source, level)
        self.ingress[source.source_id] = _SourceIngress()
        if channel is None:
            monitor.register(self._receive)
        else:
            channel.bind(monitor, self._receive)
            attach = getattr(channel, "attach_link", None)
            if attach is not None:
                attach(link)
        self.monitors[source.source_id] = monitor
        return link

    def define_view(
        self,
        definition: ViewDefinition | str,
        source_id: str,
        *,
        cache_policy: CachePolicy = CachePolicy.NONE,
        knowledge: PathKnowledge | None = None,
        screen: bool = True,
    ) -> "WarehouseView":
        """Define and initially populate a warehouse view over a source."""
        if isinstance(definition, str):
            definition = ViewDefinition.parse(definition)
        link = self.links[source_id]
        cache: AuxiliaryCache | None = None
        if cache_policy is not CachePolicy.NONE:
            cache = AuxiliaryCache(
                definition.entry,
                definition.full_path().labels,
                cache_policy,
                link,
            )
            cache.seed()
        remote_store = RemoteBaseStore(link, cache, self.counters)
        remote_index = RemoteParentIndex(link, cache)
        mview = MaterializedView(
            definition, remote_store, self.view_store  # type: ignore[arg-type]
        )
        members = compute_view_members(definition, remote_store)  # type: ignore[arg-type]
        mview.load_members(members)
        maintainer = RemoteViewMaintainer(
            mview,
            remote_store,
            remote_index,
            link,
            knowledge=knowledge,
            screen=screen,
        )
        wview = WarehouseView(
            source_id=source_id,
            view=mview,
            maintainer=maintainer,
            cache=cache,
            stats=WarehouseViewStats(),
        )
        self.views[definition.name] = wview
        if self.query_server is not None:
            self.query_server.registry.register(
                definition.name, definition.name
            )
        return wview

    def enable_serving(
        self, *, cache_size: int = 128, use_frontier: bool = True
    ):
        """Attach a :class:`~repro.serving.server.QueryServer` over the
        view store, so clients query warehouse views through a cached
        read path.

        Warehouse views are maintained by direct delegate surgery (no
        ``view_store.apply`` stream), so update-stream invalidation
        never fires here; instead :meth:`_deliver` and
        :meth:`resync_view` ping the server after every view-changing
        notification (:meth:`~repro.serving.server.QueryServer.
        invalidate_entry`) — coarser than the catalog's label screens,
        but exact per view.  Idempotent.
        """
        if self.query_server is None:
            from repro.gsdb.database import DatabaseRegistry
            from repro.serving.server import QueryServer

            registry = DatabaseRegistry(self.view_store)
            for name in self.views:
                registry.register(name, name)
            self.query_server = QueryServer(
                registry,
                cache_size=cache_size,
                use_frontier=use_frontier,
            )
        return self.query_server

    # -- bulk updates (Section 6, fourth open issue) -----------------------------------

    def apply_bulk(self, source_id: str, bulk) -> list:
        """Execute an intensional bulk update at a source and maintain
        warehouse views *descriptor-first*.

        The source's monitor is paused so the batch ships as one
        descriptor instead of N notifications; each view is screened
        with :func:`~repro.warehouse.bulk.bulk_is_relevant` and only
        relevant views process the batch's individual updates.  Returns
        the basic updates the bulk performed.

        (Post-hoc notification assembly is safe for bulk *modifies*:
        each atom is modified at most once per batch and modifies never
        change paths, so per-update payloads equal post-batch state.)
        """
        from repro.warehouse.bulk import bulk_is_relevant, execute_bulk

        monitor = self.monitors[source_id]
        source = monitor.source
        monitor.pause()
        try:
            applied = execute_bulk(source.store, source.root, bulk)
            notifications = [
                monitor.build_notification(update) for update in applied
            ]
        finally:
            monitor.resume()
        self._mark_delivered(
            source_id, (n.sequence for n in notifications)
        )
        for wview in self.views.values():
            if wview.source_id != source_id:
                continue
            wview.stats.bulk_batches += 1
            if not bulk_is_relevant(wview.view.definition, bulk):
                wview.stats.bulk_batches_screened += 1
                continue
            for notification in notifications:
                self.log.record_notification(notification)
                self._deliver(wview, notification)
        return applied

    def process_batch(self, source_id: str, updates) -> list[Update]:
        """Apply a batch of basic updates at a source, then maintain
        warehouse views on the *coalesced* net batch.

        The source's monitor is paused while the batch commits, the
        batch is reduced with
        :func:`~repro.views.dispatcher.coalesce_updates` (insert/delete
        pairs that leave an edge unchanged cancel; modify chains fold
        to first-old/last-new), and one notification per surviving
        update is assembled from the post-batch source state — which is
        exactly the state Algorithm 1's evaluation functions query, so
        deferred assembly is safe (same argument as :meth:`apply_bulk`,
        extended to edges by the net-effect cancellation).  Returns the
        surviving updates.

        At-least-once tolerance: updates whose effect the source store
        already reflects (a re-delivered batch, or a prefix of one) are
        screened out by
        :func:`~repro.views.dispatcher.screen_replayed` before
        application, so retrying a batch is a no-op rather than an
        ``InvalidUpdateError``.  The surviving notifications are
        shipped through the monitor's sinks — i.e. through the fault
        channel when one is bound.
        """
        updates = list(updates)
        monitor = self.monitors[source_id]
        monitor.pause()
        try:
            fresh = screen_replayed(
                monitor.source.store, updates, counters=self.counters
            )
            monitor.source.store.apply_all(fresh)
            survivors = coalesce_updates(fresh, counters=self.counters)
            notifications = [
                monitor.build_notification(update) for update in survivors
            ]
        finally:
            monitor.resume()
        for notification in notifications:
            monitor.ship(notification)
        return survivors

    # -- ingress: dedup + reorder buffering (experiment E15) ---------------------------

    def _receive(
        self, notification: UpdateNotification, *, late: bool = False
    ) -> None:
        """Channel-facing entry point: restore exactly-once, in-order.

        Duplicates (sequence already admitted, held, or consumed
        out-of-band) are dropped; early arrivals are parked until the
        gap fills; the in-order notification is dispatched, then the
        buffer is flushed as far as it is contiguous.  Everything that
        waited — and every *late* retransmission from
        :meth:`Monitor.replay` — dispatches as a stale delivery.
        """
        ingress = self.ingress[notification.source_id]
        stats = ingress.stats
        stats.received += 1
        sequence = notification.sequence
        if (
            sequence < ingress.next_expected
            or sequence in ingress.pending
            or sequence in ingress.out_of_band
        ):
            stats.duplicates += 1
            self.counters.notifications_deduped += 1
            return
        if sequence > ingress.next_expected:
            ingress.pending[sequence] = notification
            stats.held += 1
            stats.max_lag = max(
                stats.max_lag, sequence - ingress.next_expected
            )
            return
        self._admit(ingress, notification, stale=late)
        while ingress.next_expected in ingress.pending:
            held = ingress.pending.pop(ingress.next_expected)
            self._admit(ingress, held, stale=True)

    def _admit(
        self,
        ingress: _SourceIngress,
        notification: UpdateNotification,
        *,
        stale: bool,
    ) -> None:
        ingress.stats.applied += 1
        ingress.next_expected = notification.sequence + 1
        while ingress.next_expected in ingress.out_of_band:
            ingress.out_of_band.discard(ingress.next_expected)
            ingress.next_expected += 1
        self._dispatch(notification, stale=stale)

    def _mark_delivered(self, source_id: str, sequences) -> None:
        """Record sequences consumed outside the channel (bulk-update
        descriptors) so gap detection does not misread them as losses.

        Monitor sequences are strictly increasing, so a freshly built
        run is either contiguous at the cursor (advance it) or ahead of
        a genuine gap (park it in ``out_of_band``; :meth:`_admit` skips
        over it once the gap fills)."""
        ingress = self.ingress[source_id]
        for sequence in sorted(sequences):
            if sequence == ingress.next_expected:
                ingress.next_expected += 1
            elif sequence > ingress.next_expected:
                ingress.out_of_band.add(sequence)

    # -- notification routing ----------------------------------------------------------

    def _dispatch(
        self, notification: UpdateNotification, *, stale: bool = False
    ) -> None:
        self.log.record_notification(notification)
        self.counters.messages_sent += 1
        self.counters.bytes_sent += notification.estimated_size()
        for wview in self.views.values():
            if wview.source_id != notification.source_id:
                continue
            self._deliver(wview, notification, stale=stale)

    def _deliver(
        self,
        wview: "WarehouseView",
        notification: UpdateNotification,
        *,
        stale: bool = False,
    ) -> None:
        before = self.log.queries
        try:
            if wview.cache is not None:
                wview.cache.apply_notification(notification)
            processed = wview.maintainer.process(notification, stale=stale)
        except (QueryTimeoutError, SourceUnavailableError):
            # The link's retry budget ran out mid-maintenance: the view
            # (or its cache) may hold a partial delta.  Flag it; heal()
            # rebuilds it once the source is reachable again.  The
            # notification stream continues — source-side updates must
            # never be blocked by warehouse-side maintenance failures.
            wview.stats.failures += 1
            wview.needs_resync = True
            processed = True
        spent = self.log.queries - before
        wview.stats.notifications += 1
        if not processed:
            wview.stats.screened += 1
        elif self.query_server is not None:
            # The view (or its delegates) may have changed: evict every
            # cached answer entered at this view or its delegates.
            self.query_server.invalidate_entry(wview.view.oid)
        wview.stats.source_queries += spent
        wview.stats.per_update_queries.append(spent)

    # -- recovery (experiment E15) -------------------------------------------------

    def heal(self, source_id: str | None = None) -> int:
        """Close delivery gaps and rebuild damaged views.

        For each source (or just *source_id*): every sequence between
        the ingress cursor and the monitor's last built notification
        that is neither held in the reorder buffer nor accounted
        out-of-band was lost in the channel.  The monitor is asked to
        :meth:`~Monitor.replay` the missing range from its bounded
        history — O(lost messages), independent of database size.  When
        part of the range has been evicted, the stream is abandoned:
        the cursor fast-forwards and every view over the source falls
        back to full recomputation.  Finally any view still flagged
        ``needs_resync`` (maintenance failure, evicted history) is
        resynced.  Idempotent; returns the number of views resynced.
        """
        source_ids = (
            [source_id] if source_id is not None else list(self.monitors)
        )
        resynced = 0
        for sid in source_ids:
            ingress = self.ingress[sid]
            monitor = self.monitors[sid]
            missing = [
                sequence
                for sequence in range(
                    ingress.next_expected, monitor.last_sequence + 1
                )
                if sequence not in ingress.pending
                and sequence not in ingress.out_of_band
            ]
            if missing:
                replayed = monitor.replay(missing)
                if replayed is None:
                    self._abandon_stream(ingress, monitor, sid)
                else:
                    for notification in replayed:
                        self.counters.notifications_replayed += 1
                        ingress.stats.replayed += 1
                        self._receive(notification, late=True)
            for name, wview in self.views.items():
                if wview.source_id == sid and wview.needs_resync:
                    if self.resync_view(name):
                        resynced += 1
        return resynced

    def _abandon_stream(
        self, ingress: _SourceIngress, monitor: Monitor, source_id: str
    ) -> None:
        """History eviction: the missing range is unrecoverable by
        replay.  Fast-forward the cursor past everything built so far
        and flag every view over the source for recomputation (held
        notifications are subsumed by the rebuild)."""
        ingress.next_expected = monitor.last_sequence + 1
        ingress.pending = {
            sequence: notification
            for sequence, notification in ingress.pending.items()
            if sequence >= ingress.next_expected
        }
        ingress.out_of_band = {
            sequence
            for sequence in ingress.out_of_band
            if sequence >= ingress.next_expected
        }
        for wview in self.views.values():
            if wview.source_id == source_id:
                wview.needs_resync = True

    def resync_view(self, name: str) -> bool:
        """Rebuild one view by recomputation from the current source
        state — the recovery of last resort, O(database size).

        The remote memos and the auxiliary cache are discarded first
        (both may describe pre-loss state), then membership is diffed
        against a fresh evaluation; surviving members are refreshed so
        delegate values catch up too.  Returns True on success; a
        still-unreachable source leaves the view flagged and returns
        False so a later :meth:`heal` retries.
        """
        wview = self.views[name]
        wview.needs_resync = True
        base = wview.maintainer.base
        try:
            if isinstance(base, RemoteBaseStore):
                base.reset()
            if isinstance(wview.maintainer.parent_index, RemoteParentIndex):
                wview.maintainer.parent_index.reset()
            if wview.cache is not None:
                wview.cache.reseed()
            members = compute_view_members(
                wview.view.definition, base  # type: ignore[arg-type]
            )
            for gone in sorted(wview.view.members() - members):
                wview.view.v_delete(gone)
            for member in sorted(members):
                wview.view.v_insert(member)  # refreshes existing delegates
        except (QueryTimeoutError, SourceUnavailableError):
            wview.stats.failures += 1
            return False
        wview.stats.resyncs += 1
        self.counters.view_resyncs += 1
        self.counters.view_recomputations += 1
        wview.needs_resync = False
        if self.query_server is not None:
            self.query_server.invalidate_entry(wview.view.oid)
        return True


@dataclass
class WarehouseView:
    """A warehouse-resident materialized view and its machinery."""

    source_id: str
    view: MaterializedView
    maintainer: RemoteViewMaintainer
    cache: AuxiliaryCache | None
    stats: WarehouseViewStats
    #: set when maintenance failed mid-notification or delivery history
    #: was lost; cleared by a successful :meth:`Warehouse.resync_view`.
    needs_resync: bool = False

    def members(self) -> set[str]:
        return self.view.members()
