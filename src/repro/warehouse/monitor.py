"""Source monitors: detecting updates and reporting them upstream.

Paper Section 5 / Figure 6: "each source is also associated with a
source monitor that detects the update events as described in Section
4.1 and reports them to the warehouse".  Section 5.1 defines the three
reporting levels; the monitor assembles the corresponding
:class:`~repro.warehouse.protocol.UpdateNotification` right after each
update commits at the source (so contents and paths reflect the
post-update state, exactly as Algorithm 1 expects).

For fault recovery (experiment E15) the monitor keeps a bounded history
of the notifications it built, keyed by sequence number.  When the
warehouse detects a delivery gap it asks for a :meth:`Monitor.replay`
of the missing range — O(lost messages), independent of database size —
and only falls back to full view recomputation when the history has
already evicted part of the range.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable

from repro.gsdb.updates import Update
from repro.warehouse.protocol import (
    ObjectPayload,
    PathPayload,
    ReportingLevel,
    UpdateNotification,
    payload_from_object,
)
from repro.warehouse.source import Source

NotificationSink = Callable[[UpdateNotification], None]


class Monitor:
    """Watches one source and ships notifications to registered sinks."""

    def __init__(
        self,
        source: Source,
        level: ReportingLevel = ReportingLevel.OIDS_ONLY,
        *,
        history_limit: int = 256,
    ) -> None:
        self.source = source
        self.level = ReportingLevel(level)
        self.history_limit = history_limit
        self._sinks: list[NotificationSink] = []
        self._sequence = 0
        self._paused = 0
        self._history: OrderedDict[int, UpdateNotification] = OrderedDict()
        source.store.subscribe(self._on_update)

    def register(self, sink: NotificationSink) -> None:
        """Add a warehouse-side receiver of this monitor's reports."""
        self._sinks.append(sink)

    @property
    def last_sequence(self) -> int:
        """Sequence number of the most recently built notification."""
        return self._sequence

    # -- replay (gap-detection resync, experiment E15) -------------------------

    def replay(
        self, sequences: Iterable[int]
    ) -> list[UpdateNotification] | None:
        """Retransmit past notifications by sequence number, in order.

        Returns None when any requested sequence has been evicted from
        the bounded history (the warehouse must then fall back to full
        recomputation for the affected views).  Payloads are the ones
        shipped originally — they reflect the source state at build
        time, so the warehouse processes them as *stale* deliveries.
        """
        out: list[UpdateNotification] = []
        for sequence in sorted(set(sequences)):
            notification = self._history.get(sequence)
            if notification is None:
                return None
            out.append(notification)
        return out

    # -- pausing (bulk-update sessions, Section 6 issue 4) ---------------------

    def pause(self) -> None:
        """Suppress per-update notifications (a bulk descriptor will be
        shipped instead); nestable."""
        self._paused += 1

    def resume(self) -> None:
        if self._paused <= 0:
            raise RuntimeError("monitor is not paused")
        self._paused -= 1

    @property
    def paused(self) -> bool:
        return self._paused > 0

    # -- notification assembly -------------------------------------------------

    def _on_update(self, update: Update) -> None:
        if self._paused:
            return
        self.ship(self.build_notification(update))

    def ship(self, notification: UpdateNotification) -> None:
        """Send one built notification to every registered sink."""
        for sink in self._sinks:
            sink(notification)

    def build_notification(self, update: Update) -> UpdateNotification:
        """Assemble a notification for an already-applied update."""
        self._sequence += 1
        contents: tuple[ObjectPayload, ...] = ()
        paths: tuple[PathPayload, ...] = ()
        if self.level >= ReportingLevel.WITH_CONTENTS:
            contents = self._contents(update)
        if self.level >= ReportingLevel.WITH_PATHS:
            paths = self._paths(update)
        notification = UpdateNotification(
            source_id=self.source.source_id,
            sequence=self._sequence,
            update=update,
            level=self.level,
            contents=contents,
            paths=paths,
        )
        self._history[self._sequence] = notification
        while len(self._history) > self.history_limit:
            self._history.popitem(last=False)
        return notification

    def _contents(self, update: Update) -> tuple[ObjectPayload, ...]:
        payloads = []
        for oid in update.directly_affected:
            obj = self.source.store.get_optional(oid)
            if obj is not None:
                payloads.append(payload_from_object(obj))
        return tuple(payloads)

    def _paths(self, update: Update) -> tuple[PathPayload, ...]:
        """Root paths of the directly affected objects.

        The paper motivates this as nearly free for the source: "when
        the source does the update, it needs to traverse the source
        database until reaching the updated object", so the path is a
        by-product.  We recover it through the source's parent index.
        For ``insert``/``delete`` the *parent*'s path is reported (the
        child's connectivity is exactly what changed).
        """
        payloads = []
        for oid in update.directly_affected:
            answer = self._root_path(oid)
            if answer is not None:
                payloads.append(answer)
        return tuple(payloads)

    def _root_path(self, oid: str) -> PathPayload | None:
        store = self.source.store
        index = self.source.parent_index
        root = self.source.root
        if oid not in store:
            return None
        chain = [oid]
        labels: list[str] = []
        current = oid
        while current != root:
            obj = store.get_optional(current)
            if obj is None:
                return None
            parent = index.parent(current)
            if parent is None:
                return None
            labels.append(obj.label)
            chain.append(parent)
            current = parent
        chain.reverse()
        labels.reverse()
        return PathPayload(
            target=oid, oid_chain=tuple(chain), labels=tuple(labels)
        )
