"""Data sources: autonomous stores with a query interface.

Paper Section 5 / Figure 6: base objects live at sources; the warehouse
"cannot control actions on source objects, but it can send queries to
the source and obtain answers evaluated at the current source state".

A :class:`Source` wraps an :class:`~repro.gsdb.store.ObjectStore` with

* a declared :class:`SourceCapability` — what queries it can answer
  (Section 5.1: "when a source can only support some simple querying
  interface, the warehouse can decompose the evaluation of a function
  into multiple simple queries");
* a parent index (sources know their own structure);
* the ``serve`` method, the single entry point for warehouse queries.

OIDs are made universally unique by prefixing with the source id when
requested (Section 5: "attaching the OIDs at the source with a unique
source ID"); workload generators handle that, the source just owns its
namespace.
"""

from __future__ import annotations

import enum

from repro.errors import (
    CapabilityError,
    SourceUnavailableError,
    UnknownObjectError,
)
from repro.gsdb.indexes import ParentIndex
from repro.gsdb.store import ObjectStore
from repro.gsdb.traversal import follow_path, path_between
from repro.warehouse.protocol import (
    ObjectPayload,
    PathPayload,
    QueryAnswer,
    QueryKind,
    SourceQuery,
    payload_from_object,
)


class SourceCapability(enum.IntEnum):
    """What a source's wrapper can evaluate (ordered by power)."""

    FETCH_ONLY = 1  # fetch by OID, fetch parents of an OID
    PATH_QUERIES = 2  # + path_from (N.p) and path_to_root


class Source:
    """One autonomous data source."""

    def __init__(
        self,
        source_id: str,
        store: ObjectStore,
        root: str,
        *,
        capability: SourceCapability = SourceCapability.PATH_QUERIES,
    ) -> None:
        self.source_id = source_id
        self.store = store
        self.root = root
        self.capability = capability
        self.parent_index = ParentIndex(store)
        self.queries_served = 0
        self.queries_rejected = 0
        self._crashed = False

    # -- availability (fault injection, experiment E15) ----------------------

    @property
    def crashed(self) -> bool:
        """True while the source is down and rejecting queries."""
        return self._crashed

    def crash(self) -> None:
        """Take the source down: every query raises until recovery.

        Local state is preserved (the store is durable); only query
        service stops — the model behind the chaos layer's mid-batch
        source crashes.
        """
        self._crashed = True

    def recover(self) -> None:
        """Bring a crashed source back up (idempotent)."""
        self._crashed = False

    # -- query service -------------------------------------------------------

    def serve(self, query: SourceQuery) -> QueryAnswer:
        """Answer one warehouse query at the current source state.

        Raises:
            SourceUnavailableError: while the source is crashed.
            CapabilityError: when the query exceeds the declared
                capability (the warehouse's wrapper must decompose).
        """
        if self._crashed:
            self.queries_rejected += 1
            raise SourceUnavailableError(self.source_id)
        self.queries_served += 1
        if query.kind is QueryKind.FETCH_OBJECT:
            return self._fetch_object(query.target)
        if query.kind is QueryKind.FETCH_PARENTS:
            return self._fetch_parents(query.target)
        if self.capability < SourceCapability.PATH_QUERIES:
            raise CapabilityError(
                f"source {self.source_id!r} cannot answer {query.kind.value}"
            )
        if query.kind is QueryKind.PATH_FROM:
            return self._path_from(query.target, query.labels)
        if query.kind is QueryKind.PATH_TO_ROOT:
            return self._path_to_root(query.target)
        raise CapabilityError(f"unknown query kind: {query.kind!r}")

    # -- individual query kinds --------------------------------------------------

    def _payloads(self, oids) -> tuple[ObjectPayload, ...]:
        payloads = []
        for oid in sorted(oids):
            obj = self.store.get_optional(oid)
            if obj is not None:
                payloads.append(payload_from_object(obj))
        return tuple(payloads)

    def _fetch_object(self, oid: str) -> QueryAnswer:
        obj = self.store.get_optional(oid)
        if obj is None:
            return QueryAnswer()
        return QueryAnswer(objects=(payload_from_object(obj),))

    def _fetch_parents(self, oid: str) -> QueryAnswer:
        parents = self.parent_index.parents(oid)
        return QueryAnswer(objects=self._payloads(parents))

    def _path_from(self, start: str, labels: tuple[str, ...]) -> QueryAnswer:
        if start not in self.store:
            return QueryAnswer()
        reached = follow_path(self.store, start, labels)
        return QueryAnswer(objects=self._payloads(reached))

    def _path_to_root(self, target: str) -> QueryAnswer:
        if target not in self.store:
            return QueryAnswer()
        labels = path_between(
            self.store, self.root, target, parent_index=self.parent_index
        )
        if labels is None:
            return QueryAnswer()
        chain = [target]
        current = target
        while current != self.root:
            parent = self.parent_index.parent(current)
            if parent is None:  # pragma: no cover - tree precondition
                raise UnknownObjectError(current)
            chain.append(parent)
            current = parent
        chain.reverse()
        return QueryAnswer(
            path=PathPayload(
                target=target,
                oid_chain=tuple(chain),
                labels=tuple(labels),
            )
        )
