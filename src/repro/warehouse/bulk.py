"""Update-query-aware maintenance — the paper's fourth open issue (§6).

"How does one maintain materialized views when not only the updated
base objects, but also the update query that generated them is known?
For example, we may know that the salary of each person named 'Mark'
was increased by $1000.  Then a view containing the salary of persons
named 'John' should be unaffected."

A :class:`BulkUpdate` describes such an update query intensionally:
*owners* selected by a path expression and a guard comparison, whose
atomic children with a given label get their values transformed.
:func:`execute_bulk` applies it at a source as ordinary basic updates;
the warehouse receives **one** descriptor instead of N notifications
and screens whole batches per view with :func:`bulk_is_relevant`.

Soundness analysis (False ⇒ provably unaffected):

*Membership* of a simple/extended view can only change when the
modified atoms can be condition witnesses: the target label must occur
at a feasible position of ``sel_path.cond_path`` *and* the target
selector must intersect that path language.  The guard never helps
here — the transform's output is opaque (renaming the Marks could mint
new Johns), so a guarded witness change must be processed.

*Copied values* (the paper's "view containing the salary"): plain
materialized views with a WHERE clause copy only set objects' OID sets,
which value modifies never touch.  The value dimension matters for
depth-2 :class:`~repro.views.partial.PartialMaterializedView`
fragments, which copy the members' atomic children.  There the owner
of each modified atom *is* the member, so if the guard and the view's
condition are provably disjoint (:func:`comparisons_disjoint`) no
member's fragment is touched — exactly the paper's Marks-vs-Johns
argument.  This step assumes a *functional* guard path (at most one
guard witness per owner, e.g. one name per person — the paper's
implicit reading; an owner with names {'Mark', 'John'} would defeat
existential disjointness), declared via ``BulkUpdate.functional_guard``.
For deeper fragments the owner of a modified atom may be an interior
node the view's condition says nothing about, so the screen stays
conservative (relevant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.gsdb.object import AtomicValue
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Modify
from repro.paths.automaton import compile_expression
from repro.paths.containment import is_empty_intersection
from repro.paths.expression import (
    AnyLabelSegment,
    LabelSegment,
    PathExpression,
)
from repro.query.ast import Comparison
from repro.query.conditions import (
    comparisons_disjoint,
    evaluate_condition,
)
from repro.views.definition import ViewDefinition


@dataclass(frozen=True)
class BulkUpdate:
    """An intensional description of a bulk modify.

    Attributes:
        owner_path: selects the owner objects from the root (e.g.
            ``*.person`` or ``professor``).
        guard: comparison the owner must satisfy (e.g. name = 'Mark');
            None applies to every owner.
        target_label: label of the owners' atomic children to modify.
        transform: value transformation (e.g. ``lambda v: v + 1000``).
        functional_guard: the guard path yields at most one witness per
            owner (one name per person); required for guard-based
            screening to be sound under existential cond() semantics.
        description: human-readable form, for logging.
    """

    owner_path: PathExpression
    guard: Comparison | None
    target_label: str
    transform: Callable[[AtomicValue], AtomicValue]
    functional_guard: bool = True
    description: str = "<bulk update>"

    def target_expression(self) -> PathExpression:
        """Path expression selecting the modified atoms from the root."""
        return self.owner_path.concat(
            PathExpression((LabelSegment(frozenset({self.target_label})),))
        )


def execute_bulk(
    store: ObjectStore, root: str, bulk: BulkUpdate
) -> list[Modify]:
    """Apply *bulk* at the source; returns the basic updates performed."""
    owners = compile_expression(bulk.owner_path).evaluate(store, root)
    applied: list[Modify] = []
    for owner in sorted(owners):
        obj = store.get_optional(owner)
        if obj is None or not obj.is_set:
            continue
        if bulk.guard is not None and not evaluate_condition(
            store, owner, bulk.guard
        ):
            continue
        for child_oid in obj.sorted_children():
            child = store.get_optional(child_oid)
            if (
                child is None
                or child.is_set
                or child.label != bulk.target_label
            ):
                continue
            new_value = bulk.transform(child.atomic_value())
            if new_value != child.atomic_value():
                applied.append(store.modify_value(child_oid, new_value))
    return applied


def bulk_is_relevant(
    definition: ViewDefinition,
    bulk: BulkUpdate,
    *,
    fragment_depth: int = 1,
) -> bool:
    """Can *bulk* possibly affect a view with *definition*?

    Args:
        definition: the view's definition (simple or extended class).
        bulk: the update-query descriptor.
        fragment_depth: 1 for a plain materialized view; ≥ 2 when the
            view partially materializes that many levels per member
            (:class:`~repro.views.partial.PartialMaterializedView`).
    """
    return _membership_relevant(definition, bulk) or _value_relevant(
        definition, bulk, fragment_depth
    )


def _membership_relevant(
    definition: ViewDefinition, bulk: BulkUpdate
) -> bool:
    full = definition.full_expression()
    if bulk.target_label not in _possible_labels(full):
        return False
    return not is_empty_intersection(full, bulk.target_expression())


def _value_relevant(
    definition: ViewDefinition, bulk: BulkUpdate, fragment_depth: int
) -> bool:
    condition = definition.condition
    if fragment_depth <= 1:
        if condition is not None:
            # Members are set objects (atomic members can never satisfy
            # a condition); their copied values are OID sets.
            return False
        # No condition: atomic members' own values are copied.  The
        # modified atoms must be members for their delegates to change.
        return not is_empty_intersection(
            definition.select_expression, bulk.target_expression()
        )
    # Fragments copy descendants down to fragment_depth - 1 levels
    # below each member.  Find at which levels k the modified atoms can
    # sit inside a fragment (target ∈ sel ⧺ ?^k).
    target = bulk.target_expression()
    intersecting_levels = []
    for k in range(1, fragment_depth):
        region = definition.select_expression
        for _ in range(k):
            region = region.concat(PathExpression((AnyLabelSegment(),)))
        if not is_empty_intersection(region, target):
            intersecting_levels.append(k)
    if not intersecting_levels:
        return False
    # Guard screen: sound only when every intersecting level is k = 1,
    # where the owner of each modified atom is the member itself; then
    # disjoint guard/condition ⇒ no member's fragment is touched.  At
    # deeper levels the owner is an interior node the view's condition
    # says nothing about: stay conservative.
    if (
        intersecting_levels == [1]
        and bulk.guard is not None
        and bulk.functional_guard
        and isinstance(condition, Comparison)
        and comparisons_disjoint(bulk.guard, condition)
    ):
        return False
    return True


def _possible_labels(expression: PathExpression) -> "set[str] | _AnyLabels":
    """Concrete labels an instance may step through; wildcard segments
    admit every label."""
    labels: set[str] = set()
    for segment in expression.segments:
        if isinstance(segment, LabelSegment):
            labels.update(segment.labels)
        else:
            return _AnyLabels()
    return labels


class _AnyLabels(set):
    """A set that contains every label (wildcard paths)."""

    def __contains__(self, item) -> bool:
        return True
