"""Auxiliary caching at the warehouse (paper Section 5.2, Example 10).

"The warehouse may be able to store auxiliary data structures to avoid,
or at least reduce the need to query the source."  For a simple view
over ``sel_path.cond_path``, the auxiliary structure is the *region*
of objects reachable from ROOT along *prefixes* of that concatenated
path (Example 10's picture: ROOT, the professors, and their age
subobjects).

Policies:

* ``NONE`` — no cache; every evaluation function queries the source.
* ``STRUCTURE`` — the paper's partial cache: "the warehouse may choose
  to cache part of the above structure, e.g., without the values of
  atomic nodes (which may be large...)".  Structure questions (paths,
  ancestors, children) are answered locally; value tests still query.
* ``FULL`` — everything including atomic values: "the warehouse can
  maintain the view locally, for any base update" (except inserts that
  graft whole unseen subtrees into the region, which the paper also
  flags: "for another update like inserting an edge between object REL
  and another object with label r, the algorithm may still need to
  examine the base database").

"The auxiliary structure itself needs to be maintained ... it is simply
another materialized view": :meth:`AuxiliaryCache.apply_notification`
is that maintenance, fed by the same update stream, pulling missing
contents from the source only when the notification level does not
carry them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.warehouse.protocol import (
    ObjectPayload,
    ReportingLevel,
    UpdateNotification,
)
from repro.gsdb.updates import Delete, Insert, Modify
from repro.warehouse.wrapper import SourceLink


class CachePolicy(enum.Enum):
    """How much of the auxiliary structure the warehouse keeps."""

    NONE = "none"
    STRUCTURE = "structure"  # paper's partial cache: no atomic values
    FULL = "full"


@dataclass
class CacheEntry:
    """One cached object: full payload, minus value under STRUCTURE."""

    oid: str
    label: str
    type: str
    children: tuple[str, ...]  # empty for atomic objects
    value: object | None  # None when not cached (STRUCTURE) or set type
    depth: int  # distance from ROOT along the view path
    parent: str | None

    @property
    def is_set(self) -> bool:
        return self.type == "set"


class AuxiliaryCache:
    """The cached path region for one simple view at one source."""

    def __init__(
        self,
        root: str,
        labels: tuple[str, ...],
        policy: CachePolicy,
        link: SourceLink,
    ) -> None:
        self.root = root
        self.labels = labels
        self.policy = CachePolicy(policy)
        self.link = link
        self.entries: dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    # -- population --------------------------------------------------------

    def seed(self) -> int:
        """Populate the region by querying the source (one-time cost;
        experiments snapshot the message log around it).  Returns the
        number of cached entries."""
        if self.policy is CachePolicy.NONE:
            return 0
        root_payload = self.link.fetch_object(self.root)
        if root_payload is None:
            return 0
        self._admit(root_payload, depth=0, parent=None)
        frontier = [self.root]
        for depth, label in enumerate(self.labels):
            next_frontier: list[str] = []
            for oid in frontier:
                entry = self.entries.get(oid)
                if entry is None or not entry.is_set:
                    continue
                for child_oid in entry.children:
                    payload = self.link.fetch_object(child_oid)
                    if payload is None or payload.label != label:
                        continue
                    self._admit(payload, depth=depth + 1, parent=oid)
                    next_frontier.append(child_oid)
            frontier = next_frontier
        return len(self.entries)

    def reseed(self) -> int:
        """Drop every entry and rebuild the region from the source.

        Used by view resync after lost notifications: the cache is
        another materialized view (Section 5.2), so when its update
        stream has gaps it must be recomputed just like the view.
        Returns the number of cached entries.
        """
        self.entries.clear()
        return self.seed()

    def _admit(
        self, payload: ObjectPayload, *, depth: int, parent: str | None
    ) -> None:
        is_set = payload.type == "set"
        children = tuple(payload.value) if is_set else ()
        value: object | None = None
        if not is_set and self.policy is CachePolicy.FULL:
            value = payload.value
        self.entries[payload.oid] = CacheEntry(
            oid=payload.oid,
            label=payload.label,
            type=payload.type,
            children=children,
            value=value,
            depth=depth,
            parent=parent,
        )

    # -- lookup ---------------------------------------------------------------

    def lookup(self, oid: str) -> CacheEntry | None:
        entry = self.entries.get(oid)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def parent_of(self, oid: str) -> str | None:
        entry = self.entries.get(oid)
        return entry.parent if entry is not None else None

    def root_path(self, oid: str) -> tuple[list[str], list[str]] | None:
        """Reconstruct ``path(ROOT, oid)`` from cached parent pointers.

        Returns ``(oid_chain, labels)`` or None when *oid* is outside
        the region.  Saves the warehouse a ``PATH_TO_ROOT`` query for
        any cached object.
        """
        entry = self.entries.get(oid)
        if entry is None:
            return None
        chain = [oid]
        labels: list[str] = []
        current = entry
        while current.oid != self.root:
            labels.append(current.label)
            if current.parent is None:
                return None
            parent = self.entries.get(current.parent)
            if parent is None:
                return None
            chain.append(parent.oid)
            current = parent
        chain.reverse()
        labels.reverse()
        self.hits += 1
        return chain, labels

    def region_descendants(
        self, oid: str, labels: tuple[str, ...]
    ) -> list[CacheEntry] | None:
        """Walk *labels* below *oid* entirely inside the cached region.

        Returns None when the walk cannot be answered from the cache
        (object not cached, or labels misaligned with the region path).
        The region is *complete*: every child of a cached object whose
        label continues the view path is itself cached (seed and insert
        maintenance both guarantee it), so a non-None answer is exactly
        ``oid.labels`` — the paper's "view maintenance ... can be done
        locally at the warehouse".
        """
        entry = self.entries.get(oid)
        if entry is None:
            return None
        expected = self.labels[entry.depth : entry.depth + len(labels)]
        if tuple(labels) != tuple(expected):
            return None
        if entry.depth + len(labels) > len(self.labels):
            return None
        frontier = [entry]
        for label in labels:
            next_frontier: list[CacheEntry] = []
            for current in frontier:
                for child_oid in current.children:
                    child = self.entries.get(child_oid)
                    if (
                        child is not None
                        and child.depth == current.depth + 1
                        and child.label == label
                    ):
                        next_frontier.append(child)
            frontier = next_frontier
            if not frontier:
                break
        self.hits += 1
        return frontier

    def __len__(self) -> int:
        return len(self.entries)

    # -- maintenance -------------------------------------------------------------

    def apply_notification(self, notification: UpdateNotification) -> None:
        """Keep the region current given one update notification.

        Contents missing from the notification (level 1) are fetched
        from the source — those queries are the "maintenance overhead"
        of the auxiliary view, which the paper assumes is small.
        """
        if self.policy is CachePolicy.NONE:
            return
        update = notification.update
        if isinstance(update, Insert):
            self._on_insert(notification, update)
        elif isinstance(update, Delete):
            self._on_delete(update)
        elif isinstance(update, Modify):
            self._on_modify(notification, update)

    def _payload_for(
        self, notification: UpdateNotification, oid: str
    ) -> ObjectPayload | None:
        if notification.level >= ReportingLevel.WITH_CONTENTS:
            payload = notification.content_for(oid)
            if payload is not None:
                return payload
        return self.link.fetch_object(oid)

    def _on_insert(
        self, notification: UpdateNotification, update: Insert
    ) -> None:
        parent_entry = self.entries.get(update.parent)
        if parent_entry is None:
            return
        parent_entry.children = tuple(
            sorted(set(parent_entry.children) | {update.child})
        )
        depth = parent_entry.depth
        if depth >= len(self.labels):
            return
        child_payload = self._payload_for(notification, update.child)
        if child_payload is None or child_payload.label != self.labels[depth]:
            return
        self._admit(child_payload, depth=depth + 1, parent=update.parent)
        self._extend_below(update.child)

    def _extend_below(self, oid: str) -> None:
        """Pull in the region part of a freshly grafted subtree."""
        entry = self.entries[oid]
        depth = entry.depth
        if depth >= len(self.labels) or not entry.is_set:
            return
        wanted = self.labels[depth]
        for child_oid in entry.children:
            if child_oid in self.entries:
                continue
            payload = self.link.fetch_object(child_oid)
            if payload is None or payload.label != wanted:
                continue
            self._admit(payload, depth=depth + 1, parent=oid)
            self._extend_below(child_oid)

    def _on_delete(self, update: Delete) -> None:
        parent_entry = self.entries.get(update.parent)
        if parent_entry is not None:
            parent_entry.children = tuple(
                c for c in parent_entry.children if c != update.child
            )
        child_entry = self.entries.get(update.child)
        if child_entry is not None and child_entry.parent == update.parent:
            self._evict_subtree(update.child)

    def _evict_subtree(self, oid: str) -> None:
        entry = self.entries.pop(oid, None)
        if entry is None:
            return
        for child_oid in entry.children:
            child = self.entries.get(child_oid)
            if child is not None and child.parent == oid:
                self._evict_subtree(child_oid)

    def _on_modify(
        self, notification: UpdateNotification, update: Modify
    ) -> None:
        entry = self.entries.get(update.oid)
        if entry is None or entry.is_set:
            return
        if self.policy is CachePolicy.FULL:
            entry.value = update.new_value
