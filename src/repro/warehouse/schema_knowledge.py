"""Path ("schema") knowledge for update screening (paper Section 5.2).

"Maintenance can also be improved with knowledge of paths that can
never occur ... at the source.  For example, assume that the warehouse
knows that at the source objects labeled ``student`` do not have a
child object with label ``salary``.  Consider then a view ST defined by
``SELECT ROOT.student.?`` ... when a source update ``modify(X, ov,
nv)`` occurs and ``label(X) = salary``, the warehouse knows that view
ST is unaffected.  This path knowledge can be considered a type of
'schema' for certain objects and their children [GW97]."

:class:`PathKnowledge` records never-follows constraints between parent
and child labels and decides whether a given label can possibly occur
on an instance of a view's path expression.
"""

from __future__ import annotations

from repro.paths.expression import (
    AnyLabelSegment,
    AnyPathSegment,
    LabelSegment,
    PathExpression,
)


class PathKnowledge:
    """Never-follows constraints between labels.

    ``forbid(parent_label, child_label)`` asserts that an object labeled
    *parent_label* never has a direct child labeled *child_label*.
    """

    def __init__(self) -> None:
        self._forbidden: dict[str, set[str]] = {}

    def forbid(self, parent_label: str, child_label: str) -> None:
        self._forbidden.setdefault(parent_label, set()).add(child_label)

    def may_follow(self, parent_label: str, child_label: str) -> bool:
        """Can *child_label* appear directly below *parent_label*?"""
        return child_label not in self._forbidden.get(parent_label, ())

    # -- screening -------------------------------------------------------------

    def label_feasible_on(
        self, expression: PathExpression, label: str
    ) -> bool:
        """Can an object labeled *label* occur anywhere on an instance of
        *expression* (respecting never-follows constraints)?

        Sound over-approximation: returns True when unsure.  A ``False``
        answer lets the warehouse drop the update without any source
        query.
        """
        segments = expression.segments
        for position, segment in enumerate(segments):
            if isinstance(segment, LabelSegment):
                if label not in segment.labels:
                    continue
            elif isinstance(segment, (AnyLabelSegment, AnyPathSegment)):
                pass  # wildcard admits any label a priori
            if self._position_feasible(segments, position, label):
                return True
        return False

    def _position_feasible(
        self, segments, position: int, label: str
    ) -> bool:
        """Check the never-follows constraint against the predecessor
        segment when that predecessor pins down a unique label."""
        if position == 0:
            return True
        predecessor = segments[position - 1]
        if isinstance(predecessor, LabelSegment) and len(predecessor.labels) == 1:
            (parent_label,) = predecessor.labels
            return self.may_follow(parent_label, label)
        if isinstance(predecessor, AnyPathSegment):
            # '*' may match the empty path; then the effective
            # predecessor is the one before it.
            if self._position_feasible(segments, position - 1, label):
                return True
            return True  # '*' may also end on an unknown label: unsure
        return True  # '?' or multi-label: predecessor label unknown

    def constraints(self) -> dict[str, set[str]]:
        """A copy of the never-follows map (for reporting)."""
        return {parent: set(kids) for parent, kids in self._forbidden.items()}
