"""Data warehouse architecture (paper Section 5, Figure 6).

Sources export update notifications at three information levels;
the warehouse maintains materialized views by running Algorithm 1 with
its evaluation functions realized through notification payloads, cached
auxiliary structure, and metered source queries.
"""

from repro.warehouse.bulk import BulkUpdate, bulk_is_relevant, execute_bulk
from repro.warehouse.caching import AuxiliaryCache, CacheEntry, CachePolicy
from repro.warehouse.monitor import Monitor
from repro.warehouse.protocol import (
    MessageLog,
    ObjectPayload,
    PathPayload,
    QueryAnswer,
    QueryKind,
    ReportingLevel,
    SourceQuery,
    UpdateNotification,
)
from repro.warehouse.schema_knowledge import PathKnowledge
from repro.warehouse.source import Source, SourceCapability
from repro.warehouse.warehouse import (
    RemoteBaseStore,
    RemoteParentIndex,
    RemoteViewMaintainer,
    Warehouse,
    WarehouseView,
    WarehouseViewStats,
)
from repro.warehouse.wrapper import SourceLink

__all__ = [
    "AuxiliaryCache",
    "BulkUpdate",
    "bulk_is_relevant",
    "execute_bulk",
    "CacheEntry",
    "CachePolicy",
    "MessageLog",
    "Monitor",
    "ObjectPayload",
    "PathKnowledge",
    "PathPayload",
    "QueryAnswer",
    "QueryKind",
    "RemoteBaseStore",
    "RemoteParentIndex",
    "RemoteViewMaintainer",
    "ReportingLevel",
    "Source",
    "SourceCapability",
    "SourceLink",
    "SourceQuery",
    "UpdateNotification",
    "Warehouse",
    "WarehouseView",
    "WarehouseViewStats",
]
