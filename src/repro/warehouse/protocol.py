"""Warehouse ↔ source protocol messages and traffic accounting.

Paper Section 5: sources report updates through monitors; the warehouse
sends queries back and receives answers through wrappers.  Experiments
E5/E10 need the *number* and *size* of these messages, so every message
type knows how to estimate its payload size and every exchange passes
through a :class:`MessageLog`.

Reporting levels (Section 5.1):

1. type of update + OIDs of directly affected objects;
2. level 1 + label, type and value of the directly affected objects;
3. level 2 + ``path(ROOT, N)`` (labels *and* the OID chain) for each
   directly affected object — "the source may record the path to the
   updated object and report it as part of the update information".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.gsdb.updates import Update


class ReportingLevel(enum.IntEnum):
    """How much a source monitor tells the warehouse (Section 5.1)."""

    OIDS_ONLY = 1
    WITH_CONTENTS = 2
    WITH_PATHS = 3


@dataclass(frozen=True)
class ObjectPayload:
    """Shipped contents of one object (level ≥ 2)."""

    oid: str
    label: str
    type: str
    value: object  # atomic value, or tuple of child OIDs for set objects

    def estimated_size(self) -> int:
        return (
            len(self.oid)
            + len(self.label)
            + len(self.type)
            + len(repr(self.value))
        )


@dataclass(frozen=True)
class PathPayload:
    """Shipped root path of one object (level 3): parallel chains of
    OIDs (``ROOT ... N``) and the labels between them."""

    target: str
    oid_chain: tuple[str, ...]
    labels: tuple[str, ...]

    def estimated_size(self) -> int:
        return sum(len(oid) for oid in self.oid_chain) + sum(
            len(label) for label in self.labels
        )


@dataclass(frozen=True)
class UpdateNotification:
    """One monitored update, at some reporting level."""

    source_id: str
    sequence: int
    update: Update
    level: ReportingLevel
    contents: tuple[ObjectPayload, ...] = ()
    paths: tuple[PathPayload, ...] = ()

    def estimated_size(self) -> int:
        base = len(self.source_id) + 8 + len(repr(self.update))
        base += sum(payload.estimated_size() for payload in self.contents)
        base += sum(payload.estimated_size() for payload in self.paths)
        return base

    def content_for(self, oid: str) -> ObjectPayload | None:
        for payload in self.contents:
            if payload.oid == oid:
                return payload
        return None

    def path_for(self, oid: str) -> PathPayload | None:
        for payload in self.paths:
            if payload.target == oid:
                return payload
        return None


class QueryKind(enum.Enum):
    """Source-query kinds (the ``fetch X where func(X)`` of Example 9)."""

    FETCH_OBJECT = "fetch_object"  # fetch X where oid(X) = o
    FETCH_PARENTS = "fetch_parents"  # fetch X where path(X, o) = label(o)
    PATH_FROM = "path_from"  # fetch X where path(o, X) = p
    PATH_TO_ROOT = "path_to_root"  # fetch path(ROOT, o) (labels + chain)


@dataclass(frozen=True)
class SourceQuery:
    """A query sent from the warehouse to a source."""

    kind: QueryKind
    target: str
    labels: tuple[str, ...] = ()
    root: str | None = None

    def estimated_size(self) -> int:
        return (
            len(self.kind.value)
            + len(self.target)
            + sum(len(label) for label in self.labels)
            + (len(self.root) if self.root else 0)
        )


@dataclass(frozen=True)
class QueryAnswer:
    """A source's reply: objects and/or a path."""

    objects: tuple[ObjectPayload, ...] = ()
    path: PathPayload | None = None

    def estimated_size(self) -> int:
        size = sum(payload.estimated_size() for payload in self.objects)
        if self.path is not None:
            size += self.path.estimated_size()
        return size


@dataclass
class MessageLog:
    """Counts and sizes of protocol traffic (experiments E5/E10)."""

    notifications: int = 0
    notification_bytes: int = 0
    queries: int = 0
    query_bytes: int = 0
    answers_bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    def record_notification(self, notification: UpdateNotification) -> None:
        self.notifications += 1
        self.notification_bytes += notification.estimated_size()

    def record_query(self, query: SourceQuery, answer: QueryAnswer) -> None:
        self.queries += 1
        self.query_bytes += query.estimated_size()
        self.answers_bytes += answer.estimated_size()
        key = query.kind.value
        self.by_kind[key] = self.by_kind.get(key, 0) + 1

    @property
    def total_bytes(self) -> int:
        return self.notification_bytes + self.query_bytes + self.answers_bytes

    def snapshot(self) -> "MessageLog":
        clone = MessageLog(
            notifications=self.notifications,
            notification_bytes=self.notification_bytes,
            queries=self.queries,
            query_bytes=self.query_bytes,
            answers_bytes=self.answers_bytes,
        )
        clone.by_kind = dict(self.by_kind)
        return clone

    def delta_since(self, earlier: "MessageLog") -> "MessageLog":
        delta = MessageLog(
            notifications=self.notifications - earlier.notifications,
            notification_bytes=self.notification_bytes
            - earlier.notification_bytes,
            queries=self.queries - earlier.queries,
            query_bytes=self.query_bytes - earlier.query_bytes,
            answers_bytes=self.answers_bytes - earlier.answers_bytes,
        )
        delta.by_kind = {
            kind: self.by_kind.get(kind, 0) - earlier.by_kind.get(kind, 0)
            for kind in set(self.by_kind) | set(earlier.by_kind)
        }
        return delta


def payload_from_object(obj) -> ObjectPayload:
    """Build an :class:`ObjectPayload` from a store object."""
    value = (
        tuple(obj.sorted_children()) if obj.is_set else obj.atomic_value()
    )
    return ObjectPayload(
        oid=obj.oid, label=obj.label, type=obj.type, value=value
    )


def sequence_chain(
    oids: Sequence[str], labels: Sequence[str], target: str
) -> PathPayload:
    """Convenience constructor for a :class:`PathPayload`."""
    return PathPayload(
        target=target, oid_chain=tuple(oids), labels=tuple(labels)
    )
