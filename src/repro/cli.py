"""A small interactive shell / script runner for GSDB views.

Lets a user drive the whole system from a terminal — load a database in
the paper's angle-bracket syntax, define views, run queries, apply
basic updates, and audit view consistency::

    $ python -m repro demo.gsdb
    gsdb> define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45
    view YP defined (1 member)
    gsdb> insert P2 A2
    ok
    gsdb> members YP
    P1, P2
    gsdb> select ROOT.professor X WHERE X.age > 40
    ANS1 = {P1}

Commands (``help`` prints this at the prompt):

``load FILE``            read objects (paper syntax) into the store
``dump [OID]``           print the store, or one subtree
``db NAME OID...``       create a database object
``define ...``           define a view (``define [m]view N as: SELECT ...``)
``select ...``           run a query
``insert PARENT CHILD``  basic update insert(PARENT, CHILD)
``delete PARENT CHILD``  basic update delete(PARENT, CHILD)
``modify OID VALUE``     basic update modify(OID, old, VALUE)
``new OID LABEL VALUE``  create an atomic object (VALUE parses as a literal)
``newset OID LABEL [CHILD...]``  create a set object
``views``                list defined views and their members counts
``members NAME``         list a view's members
``check [NAME]``         audit one view (or all) against recomputation
``counters``             show cost counters
``shards``               show shard layout (sharded stores only)
``columnar [on|off|status]``  enable/disable the columnar snapshot
``batch-kernel [on|off|status]``  enable/disable the vectorized write path
``chaos [SEED [STEPS [RATE [LEVEL]]]]``  run a fault-injection round
``serve SELECT ...``     run a query through the cached serving layer
``bench-serve [STEPS [RATIO [CACHE [SEED]]]]``  mixed read/update round
``traffic [REQUESTS [RATE [RATIO [SEED]]]]``  open-loop serving round
``quit`` / EOF           leave

The shell is deliberately a thin veneer over :class:`ViewCatalog`; it
exists so the examples in the paper can be replayed by hand.
"""

from __future__ import annotations

import shlex
import sys
from typing import Callable, Iterable, TextIO

from repro.errors import ReproError
from repro.gsdb.serialization import dump_subtree, load_store, parse_object
from repro.views import ViewCatalog

PROMPT = "gsdb> "


def _parse_literal(text: str):
    """Parse a CLI literal: int, float, true/false, or a bare string."""
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if len(text) >= 2 and text[0] == text[-1] == "'":
        return text[1:-1]
    return text


class Shell:
    """One interactive session over a :class:`ViewCatalog`."""

    def __init__(
        self,
        catalog: ViewCatalog | None = None,
        *,
        stdout: TextIO | None = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else ViewCatalog()
        self.out = stdout if stdout is not None else sys.stdout
        self._commands: dict[str, Callable[[list[str]], None]] = {
            "load": self.cmd_load,
            "dump": self.cmd_dump,
            "db": self.cmd_db,
            "insert": self.cmd_insert,
            "delete": self.cmd_delete,
            "modify": self.cmd_modify,
            "new": self.cmd_new,
            "newset": self.cmd_newset,
            "views": self.cmd_views,
            "members": self.cmd_members,
            "check": self.cmd_check,
            "counters": self.cmd_counters,
            "shards": self.cmd_shards,
            "columnar": self.cmd_columnar,
            "batch-kernel": self.cmd_batch_kernel,
            "chaos": self.cmd_chaos,
            "bench-serve": self.cmd_bench_serve,
            "traffic": self.cmd_traffic,
            "help": self.cmd_help,
        }

    # -- plumbing -----------------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def execute(self, line: str) -> bool:
        """Run one command line; returns False when the session ends."""
        line = line.strip()
        if not line or line.startswith("#"):
            return True
        if line in ("quit", "exit"):
            return False
        lowered = line.split(None, 1)[0].lower()
        try:
            if lowered in ("define", "select"):
                self._statement(line)
            elif lowered == "serve":
                self._serve_statement(line.split(None, 1)[1] if " " in line else "")
            elif line.startswith("<"):
                self._add_object_line(line)
            else:
                handler = self._commands.get(lowered)
                if handler is None:
                    self._print(f"unknown command: {lowered} (try 'help')")
                else:
                    handler(shlex.split(line)[1:])
        except ReproError as error:
            self._print(f"error: {error}")
        except (ValueError, KeyError, OSError) as error:
            self._print(f"error: {error}")
        return True

    def run(self, lines: Iterable[str], *, interactive: bool = False) -> None:
        for line in lines:
            if interactive:
                pass  # prompt printed by the REPL loop, not here
            if not self.execute(line):
                break

    def repl(self, stdin: TextIO | None = None) -> None:
        stream = stdin if stdin is not None else sys.stdin
        while True:
            self.out.write(PROMPT)
            self.out.flush()
            line = stream.readline()
            if not line:
                self._print()
                break
            if not self.execute(line):
                break

    # -- statements -----------------------------------------------------------

    def _statement(self, line: str) -> None:
        if line.lower().startswith("define"):
            view = self.catalog.define(line)
            members = (
                len(view.members())
                if hasattr(view, "members")
                else 0
            )
            self._print(
                f"view {view.definition.name} defined ({members} member"
                f"{'s' if members != 1 else ''})"
            )
        else:
            answer = self.catalog.query(line)
            inner = ", ".join(answer.sorted_children())
            self._print(f"{answer.oid} = {{{inner}}}")

    def _add_object_line(self, line: str) -> None:
        obj = parse_object(line)
        previous = self.catalog.store.check_references
        self.catalog.store.check_references = False
        try:
            self.catalog.store.add_object(obj)
        finally:
            self.catalog.store.check_references = previous
        self._print(f"object {obj.oid} created")

    # -- commands ----------------------------------------------------------------

    def cmd_load(self, args: list[str]) -> None:
        if len(args) != 1:
            self._print("usage: load FILE")
            return
        before = len(self.catalog.store)
        with open(args[0], "r", encoding="utf-8") as handle:
            load_store(handle, self.catalog.store)
        self._print(f"loaded {len(self.catalog.store) - before} objects")

    def cmd_dump(self, args: list[str]) -> None:
        store = self.catalog.store
        if args:
            self._print(dump_subtree(store, args[0]).rstrip())
            return
        from repro.gsdb.serialization import dump_store

        self._print(dump_store(store).rstrip())

    def cmd_db(self, args: list[str]) -> None:
        if len(args) < 1:
            self._print("usage: db NAME [OID...]")
            return
        self.catalog.create_database(args[0], args[1:])
        self._print(f"database {args[0]} with {len(args) - 1} members")

    def cmd_insert(self, args: list[str]) -> None:
        if len(args) != 2:
            self._print("usage: insert PARENT CHILD")
            return
        self.catalog.store.insert_edge(args[0], args[1])
        self._print("ok")

    def cmd_delete(self, args: list[str]) -> None:
        if len(args) != 2:
            self._print("usage: delete PARENT CHILD")
            return
        self.catalog.store.delete_edge(args[0], args[1])
        self._print("ok")

    def cmd_modify(self, args: list[str]) -> None:
        if len(args) != 2:
            self._print("usage: modify OID VALUE")
            return
        self.catalog.store.modify_value(args[0], _parse_literal(args[1]))
        self._print("ok")

    def cmd_new(self, args: list[str]) -> None:
        if len(args) != 3:
            self._print("usage: new OID LABEL VALUE")
            return
        self.catalog.store.add_atomic(
            args[0], args[1], _parse_literal(args[2])
        )
        self._print(f"object {args[0]} created")

    def cmd_newset(self, args: list[str]) -> None:
        if len(args) < 2:
            self._print("usage: newset OID LABEL [CHILD...]")
            return
        self.catalog.store.add_set(args[0], args[1], args[2:])
        self._print(f"object {args[0]} created")

    def cmd_views(self, args: list[str]) -> None:
        catalog = self.catalog
        if not catalog.virtual_views and not catalog.materialized_views:
            self._print("no views defined")
            return
        for name in sorted(catalog.virtual_views):
            view = catalog.virtual_views[name]
            view.refresh()
            self._print(f"view  {name}: {len(view)} members (virtual)")
        for name in sorted(catalog.materialized_views):
            view = catalog.materialized_views[name]
            kind = type(catalog.maintainers[name]).__name__
            self._print(
                f"mview {name}: {len(view)} members (maintained by {kind})"
            )

    def cmd_members(self, args: list[str]) -> None:
        if len(args) != 1:
            self._print("usage: members NAME")
            return
        name = args[0]
        catalog = self.catalog
        if name in catalog.materialized_views:
            members = catalog.materialized_views[name].members()
        elif name in catalog.virtual_views:
            view = catalog.virtual_views[name]
            view.refresh()
            members = view.members()
        else:
            self._print(f"no view named {name}")
            return
        self._print(", ".join(sorted(members)) if members else "(empty)")

    def cmd_check(self, args: list[str]) -> None:
        catalog = self.catalog
        names = args if args else sorted(catalog.materialized_views)
        if not names:
            self._print("no materialized views to check")
            return
        for name in names:
            report = catalog.check(name)
            self._print(f"{name}: {report.describe()}")

    def cmd_counters(self, args: list[str]) -> None:
        store = self.catalog.store
        combined = getattr(store, "combined_counters", None)
        counters = (
            combined() if combined is not None else store.counters
        ).as_dict()
        if not counters:
            self._print("(all zero)")
            return
        for key, value in counters.items():
            self._print(f"{key}: {value:,}")

    def cmd_shards(self, args: list[str]) -> None:
        describe = getattr(self.catalog.store, "describe", None)
        if describe is None:
            self._print("store is not sharded (start with --shards N)")
            return
        self._print(describe())

    def cmd_columnar(self, args: list[str]) -> None:
        """columnar [on|off|status] — manage the store's epoch-versioned
        columnar snapshot (CSR adjacency + bitset kernels).  ``on``
        enables (attaching a snapshot if none exists), ``off`` disables
        (readers fall back to the interpreted path), no argument or
        ``status`` reports the snapshot lifecycle."""
        action = args[0] if args else "status"
        store = self.catalog.store
        manager = getattr(store, "columnar", None)
        if action == "on":
            manager = self.catalog.enable_columnar()
            manager.enable()
            self._print(f"columnar snapshot on: {manager.describe()}")
        elif action == "off":
            if manager is None:
                self._print("columnar snapshot was never enabled")
                return
            manager.disable()
            self._print("columnar snapshot off (interpreted fallback)")
        elif action == "status":
            if manager is None:
                self._print("columnar snapshot not enabled (try 'columnar on')")
            else:
                state = "on" if manager.enabled else "off"
                self._print(f"columnar snapshot {state}: {manager.describe()}")
        else:
            self._print("usage: columnar [on|off|status]")

    def cmd_batch_kernel(self, args: list[str]) -> None:
        """batch-kernel [on|off|status] — manage the vectorized write
        path (set-at-a-time batch maintenance over columnar deltas).
        ``on`` enables it (attaching the columnar snapshot if needed),
        ``off`` reverts batches to the interpreted dispatcher, no
        argument or ``status`` reports engagement and fallbacks."""
        action = args[0] if args else "status"
        dispatcher = self.catalog.dispatcher
        if action == "on":
            self.catalog.enable_batch_kernel()
            self._print("batch kernel on (batches dispatch set-at-a-time)")
        elif action == "off":
            dispatcher.batch_kernel = False
            self._print("batch kernel off (interpreted dispatch)")
        elif action == "status":
            counters = self.catalog.store.counters
            state = "on" if dispatcher.batch_kernel else "off"
            self._print(
                f"batch kernel {state}: "
                f"{dispatcher.batch_kernel_batches} batches dispatched, "
                f"{counters.batch_kernel_fallbacks} fallbacks, "
                f"{counters.batch_screens} shared screen masks"
            )
        else:
            self._print("usage: batch-kernel [on|off|status]")

    def _serve_statement(self, text: str) -> None:
        """serve SELECT ... — query through the catalog's cached read
        path; reports whether the answer came from the cache."""
        if not text.lower().startswith("select"):
            self._print("usage: serve SELECT ...")
            return
        self.catalog.enable_serving()
        counters = self.catalog.store.counters
        hits_before = counters.query_cache_hits
        answer = self.catalog.serve(text)
        inner = ", ".join(answer.sorted_children())
        origin = (
            "cache hit"
            if counters.query_cache_hits > hits_before
            else "evaluated"
        )
        self._print(f"{answer.oid} = {{{inner}}} ({origin})")

    def cmd_bench_serve(self, args: list[str]) -> None:
        """bench-serve [STEPS [RATIO [CACHE [SEED]]]] — a self-contained
        mixed read/update serving round on a synthetic tree (not the
        shell's catalog), with the staleness oracle on."""
        from repro.workloads.serving import run_serving_workload

        steps = int(args[0]) if len(args) > 0 else 400
        ratio = float(args[1]) if len(args) > 1 else 0.9
        cache = int(args[2]) if len(args) > 2 else 64
        seed = int(args[3]) if len(args) > 3 else 0
        result = run_serving_workload(
            seed=seed, steps=steps, read_ratio=ratio, cache_size=cache
        )
        self._print(
            f"{result.reads} reads / {result.updates} updates: "
            f"hit rate {result.hit_rate:.1%}, "
            f"{result.invalidations} invalidations "
            f"({result.mean_invalidations_per_update:.2f}/update)"
        )
        self._print(
            f"oracle: {result.oracle_checks} checks, "
            f"{result.oracle_mismatches} stale reads"
        )
        for line in result.stale_reads[:5]:
            self._print(f"  {line}")

    def cmd_traffic(self, args: list[str]) -> None:
        """traffic [REQUESTS [RATE [RATIO [SEED]]]] — a self-contained
        open-loop serving round on a synthetic tree (not the shell's
        catalog): one Poisson/Zipf schedule replayed against the
        sequential QueryServer, then against the epoch-pinned MVCC
        tier, with tail latency and the staleness audit for both."""
        from repro.serving import AsyncQueryServer, EpochServer, QueryServer
        from repro.serving.traffic import run_concurrent, run_sequential
        from repro.workloads.generators import TreeSpec
        from repro.workloads.traffic import (
            TrafficSpec,
            build_traffic_env,
            poisson_schedule,
        )

        requests = int(args[0]) if len(args) > 0 else 600
        rate = float(args[1]) if len(args) > 1 else 600.0
        ratio = float(args[2]) if len(args) > 2 else 0.9
        seed = int(args[3]) if len(args) > 3 else 0
        spec = TrafficSpec(
            seed=seed, requests=requests, rate=rate, read_ratio=ratio
        )
        tree = TreeSpec(depth=4, seed=seed + 17)
        reports = []
        env = build_traffic_env(seed=seed, tree=tree)
        baseline = QueryServer(
            env.registry,
            parent_index=env.parent_index,
            label_index=env.label_index,
            cache_size=64,
        )
        reports.append(
            run_sequential(
                baseline,
                env,
                poisson_schedule(spec, env.pool),
                seed=seed + 1,
            )
        )
        env = build_traffic_env(seed=seed, tree=tree)
        core = EpochServer(
            env.registry,
            parent_index=env.parent_index,
            retention_capacity=4,
            cache_size=64,
        )
        reports.append(
            run_concurrent(
                AsyncQueryServer(core),
                env,
                poisson_schedule(spec, env.pool),
                seed=seed + 1,
            )
        )
        for report in reports:
            latency = report.read_summary()
            self._print(
                f"{report.label}: {report.reads} reads / "
                f"{report.writes} writes, "
                f"{report.throughput:.0f} req/s achieved "
                f"(offered {report.offered_rate:.0f}), "
                f"p50 {latency['p50'] * 1e3:.2f} ms, "
                f"p95 {latency['p95'] * 1e3:.2f} ms, "
                f"p99 {latency['p99'] * 1e3:.2f} ms, "
                f"violations {report.violations}"
            )
            if report.lag_histogram:
                lags = ", ".join(
                    f"{lag}:{count}"
                    for lag, count in sorted(report.lag_histogram.items())
                )
                self._print(f"  staleness lags {{{lags}}}")

    def cmd_chaos(self, args: list[str]) -> None:
        """chaos [SEED [STEPS [RATE [LEVEL]]]] — a self-contained
        fault-injection round on a synthetic warehouse (not the shell's
        catalog): RATE applies to drop/duplicate/reorder alike, LEVEL is
        the reporting level (1/2/3)."""
        from repro.chaos import ChaosHarness
        from repro.workloads.faults import uniform_rates

        seed = int(args[0]) if len(args) > 0 else 0
        steps = int(args[1]) if len(args) > 1 else 80
        rate = float(args[2]) if len(args) > 2 else 0.1
        level = int(args[3]) if len(args) > 3 else 2
        harness = ChaosHarness(seed=seed, level=level, rates=uniform_rates(rate))
        report = harness.run(steps)
        self._print(report.describe())
        for audit in report.audits.values():
            self._print(f"  {audit.describe()}")

    def cmd_help(self, args: list[str]) -> None:
        self._print(__doc__.split("Commands", 1)[1].split("::", 1)[0])
        for line in __doc__.splitlines():
            if line.startswith("``"):
                self._print(line.replace("``", ""))


def _profile_maint_main(args: list[str]) -> int:
    """``repro profile maint [VIEWS [UPDATES [BATCH]]]``.

    Runs the multi-view maintenance stream twice — interpreted, then
    through the batch kernel — and prints the write-path breakdown:
    the kernel's screen/region/apply phase walls next to the
    interpreted dispatch, with each mode's counter charges.
    """
    from repro.workloads.profiling import run_maintenance_profile

    try:
        views = int(args[0]) if len(args) > 0 else 8
        updates = int(args[1]) if len(args) > 1 else 96
        batch_size = int(args[2]) if len(args) > 2 else 16
    except ValueError:
        print(
            "usage: profile maint [VIEWS [UPDATES [BATCH]]]",
            file=sys.stderr,
        )
        return 2
    for kernel in (False, True):
        report = run_maintenance_profile(
            views=views,
            updates=updates,
            batch_size=batch_size,
            kernel=kernel,
        )
        for line in report.describe_lines():
            print(line)
    return 0


def _profile_main(args: list[str]) -> int:
    """``repro profile [DEPTH [FANOUT [UPDATES [SEED]]]]``.

    Runs the canned workload (:mod:`repro.workloads.profiling`) twice —
    interpreted, then columnar — and prints the per-phase wall-time and
    counter breakdown side by side, including the snapshot's
    refresh/rows-scanned/fallback stats.  ``profile maint`` instead
    profiles the write path (see :func:`_profile_maint_main`).
    """
    from repro.workloads.profiling import run_profile

    if args and args[0] == "maint":
        return _profile_maint_main(args[1:])
    try:
        depth = int(args[0]) if len(args) > 0 else 4
        fanout = int(args[1]) if len(args) > 1 else 5
        updates = int(args[2]) if len(args) > 2 else 40
        seed = int(args[3]) if len(args) > 3 else 7
    except ValueError:
        print("usage: profile [DEPTH [FANOUT [UPDATES [SEED]]]]", file=sys.stderr)
        return 2
    for columnar in (False, True):
        report = run_profile(
            depth=depth,
            fanout=fanout,
            updates=updates,
            seed=seed,
            columnar=columnar,
        )
        for line in report.describe_lines():
            print(line)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: ``python -m repro [--shards N] [script.gsdbsh | data.gsdb]``.

    A ``.gsdb`` argument is loaded as data before the REPL starts; any
    other argument is executed as a command script.  ``--shards N``
    (N > 1) backs the session with an OID-hash-partitioned
    :class:`~repro.gsdb.sharding.ShardedStore` and parallel view
    maintenance — the ``shards`` command then shows the layout.
    ``profile`` as the first argument runs the canned profiling
    workload instead of a session (see :func:`_profile_main`).
    """
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "profile":
        return _profile_main(args[1:])
    shards: int | None = None
    remaining: list[str] = []
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--shards":
            if index + 1 >= len(args):
                print("usage: --shards N", file=sys.stderr)
                return 2
            shards = int(args[index + 1])
            index += 2
            continue
        if arg.startswith("--shards="):
            shards = int(arg.split("=", 1)[1])
            index += 1
            continue
        remaining.append(arg)
        index += 1
    args = remaining
    shell = Shell(ViewCatalog(shards=shards) if shards else None)
    for arg in args:
        if arg.endswith(".gsdb"):
            shell.cmd_load([arg])
        else:
            with open(arg, "r", encoding="utf-8") as handle:
                shell.run(handle)
            return 0
    shell.repl()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
