"""Shared maintenance dispatcher for multi-view workloads.

The paper's warehouse architecture (Section 5) assumes *many* views
maintained over one update stream, yet Algorithm 1 as literally
implemented makes each maintainer an independent store subscriber that
recomputes ``path(ROOT, N1)`` for every update — O(views × depth) per
update even when most views are unaffected.  This module makes the
multi-view hot path scale with the *affected* views instead:

:class:`PathContext`
    A per-update (or per-batch) memo of the root chains every
    maintainer needs.  ``path(ROOT, N1)`` / ``chain(ROOT, N1)`` are
    computed once and shared by all views rooted at the same entry.

screening (:class:`_SimpleScreen` / :class:`_ExtendedScreen`)
    Before a maintainer runs, the dispatcher decides from the view's
    ``full_path`` (or path-expression label sets) whether the update
    can possibly affect it.  An incompatible update is dropped with
    zero base accesses — the label test uses the store's uncharged
    ``peek`` and the shared, memoized root chain.  This generalizes the
    warehouse's bulk-update label screening
    (:mod:`repro.warehouse.bulk`) to local maintenance.

    *Soundness* (simple views): the screen replays exactly the checks
    Algorithm 1's decomposition performs — for ``insert``/``delete`` it
    keeps the update iff ``sel_path.cond_path`` starts with
    ``path(ROOT,N1).label(N2)`` or N1 is a member (whose delegate needs
    a value refresh); for ``modify`` iff ``path(ROOT,N) =
    sel_path.cond_path`` (and the view has a condition) or N is a
    member.  Dropped updates are ones on which the maintainer provably
    no-ops, so screening is *exact*, not merely sound.

    *Soundness* (extended views): an edge update can change membership
    only if the new/removed child's label can appear somewhere on an
    instance of the select expression or of some comparison path (else
    no select instance and no condition witness path can pass through
    the edge); a modify only matters when the modified atom's label can
    be the final label of some comparison path.  Wildcard segments make
    every label feasible, disabling the label part of the screen.  The
    reachable-region test (is N1 on the ROOT chain / is N1 a member)
    mirrors the maintainer's own early exit, so screened updates are
    again exact no-ops.

:func:`coalesce_updates`
    Batch pre-processing: cancel insert/delete pairs that leave an edge
    in its pre-batch state, fold modify chains on one object to
    ``(first old, last new)``, and drop modifies that return to the
    original value.  *Correctness conditions*: the whole batch must be
    applied to the base before dispatch (the dispatcher's
    :meth:`MaintenanceDispatcher.batch` guarantees this), the base must
    obey tree discipline, and the views must be consistent at batch
    start.  Then every maintainer decision re-evaluates against the
    final state, temporary intermediate states are never observable,
    and a net-unchanged edge or value contributes no membership delta
    — so the surviving updates cover exactly the pre/post difference.
    Surviving updates keep their relative order (each at its last
    occurrence), which preserves delete-then-reinsert sequencing.

    *Batched deletes are history-dependent.*  Additions are determined
    by the final state alone (a member exists iff derivable now), so
    insert/modify handling — and their screens — may reason from final
    paths.  Removals are not: a delete must evict members that were
    derivable *through the deleted edge at the time it was applied*,
    and later updates in the same batch may have detached or moved
    parts of that subtree before dispatch runs.  Maintainers therefore
    treat a batched delete specially (see
    ``SimpleViewMaintainer._membership_after_delete`` /
    ``ExtendedViewMaintainer._on_edge_change``): they purge every view
    member found in the deleted child's final-state subtree by direct
    ``contains`` inspection — complete where witness-driven discovery
    under-approximates — and skip the no-lost-witness shortcut before
    re-evaluating the surviving ancestor.  Members moved out of the
    subtree mid-batch are covered inductively: whatever op moved them
    is itself in the batch and dispatched in order.  Screens likewise
    must not use final-state reachability to drop a batched delete
    (the parent may have moved after the edge was cut); only the label
    gate remains sound there, because a stranded member always carries
    the deleted child's label on its own select path.

Experiment E14 measures the effect; DESIGN.md §2 row S4b documents the
deviations from the paper.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from repro.gsdb.indexes import ParentIndex
from repro.gsdb.store import ObjectStore
from repro.gsdb.traversal import chain_between, path_between
from repro.gsdb.updates import Delete, Insert, Modify, Update
from repro.paths.expression import LabelSegment, PathExpression
from repro.paths.path import Path
from repro.query.ast import And, Comparison
from repro.views.extended import ExtendedViewMaintainer
from repro.views.maintenance import SimpleViewMaintainer


class PathContext:
    """Per-update memo of root chains, shared across maintainers.

    All lookups are keyed ``(root, oid)`` so views with different entry
    points share nothing by accident.  Labels are resolved through the
    store's uncharged ``peek`` when it has one (screening must not
    charge base accesses); remote store shims without a free ``peek``
    fall back to the charged lookup.

    A context may serve a whole batch *only after* the batch has been
    fully applied to the base: every memoized answer reflects the final
    state, which is exactly the state all maintainers evaluate against.
    ``batched`` tells maintainers (and screens) that the update stream
    was coalesced — deletes then need the history-aware handling
    described in the module docstring.
    """

    def __init__(
        self,
        store: ObjectStore,
        parent_index: ParentIndex | None = None,
        *,
        batched: bool = False,
    ) -> None:
        self.store = store
        self.parent_index = parent_index
        self.batched = batched
        self._labels: dict[str, str | None] = {}
        self._paths: dict[tuple[str, str], list[str] | None] = {}
        self._chains: dict[tuple[str, str], list[str] | None] = {}
        self._chain_sets: dict[str, tuple[frozenset[str], bool]] = {}
        #: oid -> final-state subtree (exclusive), precomputed by the
        #: batch kernel's region sweep; None when not batch-kernel-fed.
        self._subtrees: dict[str, set[str]] | None = None

    def label(self, oid: str) -> str | None:
        """The label of *oid*, or None when absent (uncharged)."""
        if oid not in self._labels:
            peek = getattr(self.store, "peek", None)
            obj = peek(oid) if peek is not None else self.store.get_optional(oid)
            self._labels[oid] = None if obj is None else obj.label
        return self._labels[oid]

    def path_between(self, root: str, oid: str) -> list[str] | None:
        """Memoized ``path(root, oid)`` — callers must not mutate."""
        key = (root, oid)
        if key not in self._paths:
            self._paths[key] = path_between(
                self.store, root, oid, parent_index=self.parent_index
            )
        return self._paths[key]

    def chain_between(self, root: str, oid: str) -> list[str] | None:
        """Memoized OID chain ``[root, ..., oid]`` — do not mutate."""
        key = (root, oid)
        if key not in self._chains:
            self._chains[key] = chain_between(
                self.store, root, oid, parent_index=self.parent_index
            )
        return self._chains[key]

    def chain_set(self, oid: str) -> tuple[frozenset[str], bool] | None:
        """OIDs on *oid*'s upward chain to the top of its tree, plus
        whether the walk stopped at a multi-parent node.

        Entry-point-agnostic ancestry: the read-path invalidator
        screens one update against *many* cached queries with different
        entry points, so instead of one ``chain_between`` per entry it
        takes the whole upward chain once and tests each entry for
        membership.  Returns None when the context has no parent index
        (callers must fail open).
        """
        if self.parent_index is None:
            return None
        if oid not in self._chain_sets:
            oids, stopped = self.parent_index.chain_to_top(oid)
            self._chain_sets[oid] = (frozenset(oids), stopped)
        return self._chain_sets[oid]

    def descendants_of(self, oid: str) -> set[str] | None:
        """The final-state subtree below *oid* (exclusive), when a
        batch kernel precomputed it from one snapshot sweep; None sends
        the caller down the interpreted ``descendants`` walk.  Shared
        by every view purging the same batched-delete subtree —
        callers must not mutate."""
        if self._subtrees is None:
            return None
        return self._subtrees.get(oid)


# ---------------------------------------------------------------------------
# screening
# ---------------------------------------------------------------------------


def expression_labels(expression: PathExpression) -> set[str] | None:
    """Concrete labels an instance may step through; None means "any"
    (the expression contains a wildcard segment).

    The label gate shared by the dispatcher's view screens and the
    serving layer's query-cache invalidator: an edge update is relevant
    to a path expression only if the moved child's label can appear
    somewhere on an instance (every instance path through the edge
    carries that label at the edge's position).
    """
    labels: set[str] = set()
    for segment in expression.segments:
        if isinstance(segment, LabelSegment):
            labels.update(segment.labels)
        else:
            return None
    return labels


#: Backwards-compatible private alias (pre-serving-layer name).
_expression_labels = expression_labels


def _comparisons(condition) -> list[Comparison]:
    if condition is None:
        return []
    if isinstance(condition, Comparison):
        return [condition]
    if isinstance(condition, And):
        return [c for c in condition.operands if isinstance(c, Comparison)]
    return []


class _SimpleScreen:
    """Exact relevance test for a :class:`SimpleViewMaintainer`."""

    def __init__(self, maintainer: SimpleViewMaintainer) -> None:
        self.m = maintainer
        self._full_labels = set(maintainer.full_path.labels)

    def relevant(self, update: Update, ctx: PathContext) -> bool:
        m = self.m
        if isinstance(update, Modify):
            if m.view.contains(update.oid):
                return True  # member value refresh
            if not m.has_condition:
                return False  # membership is pure reachability
            full = m.full_path
            if not full:
                return update.oid == m.root
            if ctx.label(update.oid) != full.labels[-1]:
                return False
            path = ctx.path_between(m.root, update.oid)
            return path is not None and full == tuple(path)
        # Insert / Delete on edge N1 -> N2.
        if m.view.contains(update.parent):
            return True  # member value refresh (children changed)
        label = ctx.label(update.child)
        if label is None or label not in self._full_labels:
            return False  # label(N2) cannot continue sel_path.cond_path
        if ctx.batched and isinstance(update, Delete):
            # Removals are history-dependent: N1's *final* path proves
            # nothing about where the subtree sat when the edge was
            # cut.  Only the label gate above is sound here.
            return True
        prefix = ctx.path_between(m.root, update.parent)
        if prefix is None:
            return False  # N1 unreachable from this view's ROOT
        return (
            m.full_path.strip_prefix(Path(tuple(prefix) + (label,)))
            is not None
        )


class _ExtendedScreen:
    """Label/region relevance test for an :class:`ExtendedViewMaintainer`."""

    def __init__(self, maintainer: ExtendedViewMaintainer) -> None:
        self.m = maintainer
        definition = maintainer.view.definition
        comparisons = _comparisons(definition.condition)
        # Labels that can appear anywhere on a select instance or on a
        # condition witness path (edge updates).
        edge_labels = expression_labels(definition.select_expression)
        for comp in comparisons:
            if edge_labels is None:
                break
            comp_labels = expression_labels(comp.path)
            if comp_labels is None:
                edge_labels = None
            else:
                edge_labels = edge_labels | comp_labels
        self._edge_labels = edge_labels
        # Labels a condition witness (the final object of a comparison
        # path) can carry (modify updates).
        witness_labels: set[str] | None = set()
        for comp in comparisons:
            segments = comp.path.segments
            if not segments or not isinstance(segments[-1], LabelSegment):
                witness_labels = None
                break
            witness_labels.update(segments[-1].labels)
        self._witness_labels = witness_labels

    def relevant(self, update: Update, ctx: PathContext) -> bool:
        m = self.m
        if isinstance(update, Modify):
            if m.view.contains(update.oid):
                return True
            if m.condition is None:
                return False
            if (
                self._witness_labels is not None
                and ctx.label(update.oid) not in self._witness_labels
            ):
                return False
            return ctx.chain_between(m.root, update.oid) is not None
        if m.view.contains(update.parent):
            return True
        if (
            self._edge_labels is not None
            and ctx.label(update.child) not in self._edge_labels
        ):
            return False
        if ctx.batched and isinstance(update, Delete):
            return True  # removals are history-dependent; label gate only
        return ctx.chain_between(m.root, update.parent) is not None


# ---------------------------------------------------------------------------
# replay screening (at-least-once delivery)
# ---------------------------------------------------------------------------


def screen_replayed(
    store, updates: Iterable[Update], *, counters=None
) -> list[Update]:
    """Drop updates whose effect is already reflected in *store*.

    At-least-once delivery means a batch may be a partial or complete
    re-delivery of work the store already applied.  An ``Insert`` whose
    edge exists, a ``Delete`` whose edge is absent, and a ``Modify``
    whose object already carries the new value are exactly such
    replays — ``ObjectStore.apply`` would reject them with
    :class:`~repro.errors.InvalidUpdateError`, turning an idempotent
    retry into a crash.  The screen simulates the batch over an overlay
    of the store's current state (via the uncharged ``peek``) so
    intra-batch sequencing like delete-then-reinsert survives intact,
    and returns only the updates that still have an effect.

    Only *exact* replays are screened.  A genuinely conflicting update
    (e.g. an ``Insert`` of an absent edge whose parent is missing, or a
    ``Modify`` whose old value matches neither the stored nor the new
    value) is kept so the store raises — replay tolerance must not mask
    real protocol errors.

    Charges ``notifications_deduped`` on *counters* for every update
    screened out.
    """
    updates = list(updates)
    peek = getattr(store, "peek", None) or store.get_optional
    edges: dict[tuple[str, str], bool] = {}
    values: dict[str, object] = {}

    def edge_present(parent: str, child: str) -> bool:
        key = (parent, child)
        if key not in edges:
            obj = peek(parent)
            edges[key] = (
                obj is not None and obj.is_set and child in obj.children()
            )
        return edges[key]

    def current_value(oid: str) -> object:
        if oid not in values:
            obj = peek(oid)
            values[oid] = (
                None if obj is None or obj.is_set else obj.atomic_value()
            )
        return values[oid]

    survivors: list[Update] = []
    for update in updates:
        if isinstance(update, Insert):
            if edge_present(update.parent, update.child):
                continue  # edge already in place: a replay
            edges[(update.parent, update.child)] = True
        elif isinstance(update, Delete):
            if not edge_present(update.parent, update.child):
                continue  # edge already gone: a replay
            edges[(update.parent, update.child)] = False
        elif isinstance(update, Modify):
            if current_value(update.oid) == update.new_value:
                continue  # value already current: a replay (or no-op)
            values[update.oid] = update.new_value
        survivors.append(update)
    if counters is not None:
        counters.notifications_deduped += len(updates) - len(survivors)
    return survivors


# ---------------------------------------------------------------------------
# batch coalescing
# ---------------------------------------------------------------------------


def coalesce_updates(
    updates: Iterable[Update], *, counters=None
) -> list[Update]:
    """Reduce an applied batch to its net effect (see module docstring).

    * insert/delete pairs on the same edge cancel when counts balance
      (the edge ends in its pre-batch state); otherwise the last op on
      the edge is the net op and survives alone;
    * modify chains on one object fold to ``(first old, last new)`` and
      vanish entirely when the value returns to the original;
    * a surviving modify whose object is the child of a *surviving*
      insert folds into that insert: the insert handler re-derives
      every membership decision and delegate value about the child
      from the final base state (``v_insert`` refreshes existing
      members), and any effect the value had at the child's *previous*
      position is re-decided by the update that detached it — itself
      in the batch.  A modify whose insert was parity-cancelled (the
      edge is back in its pre-batch place) survives untouched;
    * survivors keep their relative order (each at the position of its
      key's last occurrence).

    Charges ``updates_coalesced`` on *counters* (when given) for every
    update removed or folded away.
    """
    updates = list(updates)
    groups: dict[tuple, list[Update]] = {}
    last_index: dict[tuple, int] = {}
    for i, update in enumerate(updates):
        if isinstance(update, (Insert, Delete)):
            key = ("edge", update.parent, update.child)
        elif isinstance(update, Modify):
            key = ("modify", update.oid)
        else:
            key = ("other", i)
        groups.setdefault(key, []).append(update)
        last_index[key] = i
    result: list[Update] = []
    for key in sorted(groups, key=last_index.__getitem__):
        ops = groups[key]
        if key[0] == "edge":
            inserts = sum(1 for op in ops if isinstance(op, Insert))
            if inserts * 2 == len(ops):
                continue  # net parity: edge is back in its old state
            result.append(ops[-1])
        elif key[0] == "modify":
            first, last = ops[0], ops[-1]
            if first.old_value == last.new_value:
                continue  # value returned to the original
            if len(ops) == 1:
                result.append(last)
            else:
                result.append(
                    Modify(last.oid, first.old_value, last.new_value)
                )
        else:
            result.append(ops[0])
    inserted_children = {
        update.child for update in result if isinstance(update, Insert)
    }
    if inserted_children:
        result = [
            update
            for update in result
            if not (
                isinstance(update, Modify)
                and update.oid in inserted_children
            )
        ]
    if counters is not None:
        counters.updates_coalesced += len(updates) - len(result)
    return result


# ---------------------------------------------------------------------------
# the dispatcher
# ---------------------------------------------------------------------------


class _Registration:
    __slots__ = ("maintainer", "screen", "supports_context")

    def __init__(self, maintainer, screen, supports_context: bool) -> None:
        self.maintainer = maintainer
        self.screen = screen
        self.supports_context = supports_context


class MaintenanceDispatcher:
    """The single store subscriber fanning updates out to maintainers.

    Register it once (``subscribe=True``) instead of subscribing each
    maintainer; per update it builds one :class:`PathContext`, screens
    each registered view, and invokes only the maintainers the update
    can affect.  Per-update dispatch cost is then O(affected views),
    not O(total views) — experiment E14.

    Attributes:
        updates_dispatched: updates fanned out (post-coalescing).
        batch_kernel: when True, batches take the vectorized write path
            (:mod:`repro.views.batch_kernel`) whenever the store has a
            fresh columnar snapshot, falling back to the interpreted
            dispatch (charging ``batch_kernel_fallbacks``) otherwise.
            View extents are byte-identical either way.
        batch_kernel_batches: batches the kernel fully dispatched.
        kernel_phase_seconds: wall seconds per kernel phase
            (``screen`` / ``region`` / ``apply``) — the ``repro
            profile maint`` breakdown.
    """

    def __init__(
        self,
        store: ObjectStore,
        *,
        parent_index: ParentIndex | None = None,
        subscribe: bool = False,
        batch_kernel: bool = False,
    ) -> None:
        self.store = store
        self.parent_index = parent_index
        self._entries: list[_Registration] = []
        self._buffer: list[Update] | None = None
        self.updates_dispatched = 0
        self.batch_kernel = batch_kernel
        self.batch_kernel_batches = 0
        self.kernel_phase_seconds = {
            "screen": 0.0,
            "region": 0.0,
            "apply": 0.0,
        }
        if subscribe:
            store.subscribe(self.handle)

    # -- registration ------------------------------------------------------

    def register(self, maintainer, *, screen: bool = True):
        """Route updates to *maintainer* (anything with ``handle``).

        Simple/extended maintainers get a relevance screen (unless
        *screen* is False) and receive the shared :class:`PathContext`;
        other maintainer kinds (DAG, recompute fallbacks, multi-path
        branches over adapted stores) are dispatched unscreened.
        Returns *maintainer* for chaining.
        """
        screener = None
        supports_context = False
        if isinstance(maintainer, SimpleViewMaintainer):
            supports_context = True
            if screen and hasattr(maintainer.view, "contains"):
                screener = _SimpleScreen(maintainer)
        elif isinstance(maintainer, ExtendedViewMaintainer):
            supports_context = True
            if screen and hasattr(maintainer.view, "contains"):
                screener = _ExtendedScreen(maintainer)
        self._entries.append(
            _Registration(maintainer, screener, supports_context)
        )
        return maintainer

    def unregister(self, maintainer) -> None:
        """Stop routing updates to *maintainer* (no-op when absent)."""
        self._entries = [
            entry
            for entry in self._entries
            if entry.maintainer is not maintainer
        ]

    def registered(self) -> list:
        """The registered maintainers, in registration order."""
        return [entry.maintainer for entry in self._entries]

    # -- dispatch ----------------------------------------------------------

    def handle(self, update: Update) -> None:
        """Store-listener entry point: dispatch one applied update.

        Inside a :meth:`batch` block the update is buffered instead and
        dispatched (coalesced) when the block exits.
        """
        if self._buffer is not None:
            self._buffer.append(update)
            return
        self._dispatch([update])

    def handle_batch(self, updates: Sequence[Update]) -> list[Update]:
        """Dispatch an already-applied batch, coalesced, with one
        shared :class:`PathContext`.  Returns the surviving updates.

        With :attr:`batch_kernel` set and a fresh columnar snapshot
        available, the batch goes through the set-at-a-time kernel
        (:func:`~repro.views.batch_kernel.kernel_dispatch`) instead of
        the update-major interpreted loop — byte-identical extents,
        columnar-currency charges."""
        survivors = coalesce_updates(updates, counters=self.store.counters)
        if not survivors:
            return survivors
        if self.batch_kernel and self._try_batch_kernel(survivors):
            return survivors
        self._dispatch(survivors, batched=True)
        return survivors

    def _try_batch_kernel(self, updates: Sequence[Update]) -> bool:
        """Run *updates* through the batch kernel when possible.

        Declines (returns False, charging ``batch_kernel_fallbacks``)
        when the store has no columnar snapshot manager, the snapshot
        cannot serve (stale with ``auto_refresh=False``, disabled, or
        unstitched shards), or the kernel itself bails on a non-tree
        region.  Snapshot refresh time counts toward the ``region``
        phase — it is the price of the CSR the sweep runs over.
        """
        counters = self.store.counters
        manager = getattr(self.store, "columnar", None)
        if manager is None:
            counters.batch_kernel_fallbacks += 1
            return False
        from time import perf_counter

        began = perf_counter()
        snapshot = manager.current()
        self.kernel_phase_seconds["region"] += perf_counter() - began
        if snapshot is None:
            counters.batch_kernel_fallbacks += 1
            return False
        from repro.views.batch_kernel import kernel_dispatch

        return kernel_dispatch(self, updates, snapshot)

    def _kernel_frames(self, updates: Sequence[Update]):
        """The batch as columnar delta frames (one, when unsharded)."""
        from repro.gsdb.delta import DeltaFrame

        return [
            DeltaFrame(updates, self.store, counters=self.store.counters)
        ]

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Buffer store notifications, then dispatch the net batch.

        ::

            with dispatcher.batch():
                store.apply_all(updates)   # applied, not yet dispatched
            # exiting coalesces + dispatches against the final state

        The flush runs even when the body raises (the updates *were*
        applied, so the views must still catch up).
        """
        if self._buffer is not None:
            raise RuntimeError("dispatcher batch already active")
        self._buffer = []
        try:
            yield
        finally:
            buffered, self._buffer = self._buffer, None
            if buffered:
                self.handle_batch(buffered)

    def _dispatch(
        self, updates: Sequence[Update], *, batched: bool = False
    ) -> None:
        context = PathContext(self.store, self.parent_index, batched=batched)
        counters = self.store.counters
        for update in updates:
            self.updates_dispatched += 1
            for entry in self._entries:
                if entry.screen is not None and not entry.screen.relevant(
                    update, context
                ):
                    counters.updates_screened += 1
                    continue
                if entry.supports_context:
                    entry.maintainer.handle(update, context)
                else:
                    entry.maintainer.handle(update)
