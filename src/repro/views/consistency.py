"""Consistency checking: maintained view vs. recomputed reference.

The paper's correctness criterion (Section 4.3): "starting from an
initially correct materialized view, the view will be consistent with
the base data after processing each update.  That is, the delegates of
all view objects are in MV, and there are no extra objects in MV."
This module checks that — plus, since our delegates copy values, that
every delegate's value matches what the base object currently implies
(modulo swizzling and timestamp annotations).

Used pervasively by the test suite (including the hypothesis property
tests) and available to applications as a safety valve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ViewConsistencyError
from repro.gsdb.database import DatabaseRegistry
from repro.views.materialized import MaterializedView
from repro.views.recompute import compute_view_members


@dataclass
class ConsistencyReport:
    """Differences between a view's state and its definition's truth."""

    missing: set[str] = field(default_factory=set)  # should be in, is not
    extra: set[str] = field(default_factory=set)  # is in, should not be
    stale_values: set[str] = field(default_factory=set)  # wrong delegate value
    broken_delegates: set[str] = field(default_factory=set)  # object missing

    @property
    def ok(self) -> bool:
        return not (
            self.missing
            or self.extra
            or self.stale_values
            or self.broken_delegates
        )

    def describe(self) -> str:
        if self.ok:
            return "consistent"
        parts = []
        for name in ("missing", "extra", "stale_values", "broken_delegates"):
            oids = getattr(self, name)
            if oids:
                shown = ", ".join(sorted(oids)[:5])
                more = f" (+{len(oids) - 5} more)" if len(oids) > 5 else ""
                parts.append(f"{name}: {shown}{more}")
        return "; ".join(parts)


def check_consistency(
    view: MaterializedView,
    *,
    registry: DatabaseRegistry | None = None,
    check_values: bool = True,
) -> ConsistencyReport:
    """Compare *view* against a from-scratch evaluation of its definition.

    Args:
        view: the materialized view to audit.
        registry: needed when the definition has scope clauses.
        check_values: also verify each delegate's copied value (disable
            after manual edits such as
            :meth:`~repro.views.materialized.MaterializedView.strip_base_references`).
    """
    report = ConsistencyReport()
    truth = compute_view_members(
        view.definition, view.base_store, registry=registry
    )
    members = view.members()
    report.missing = truth - members
    report.extra = members - truth

    # Structural check: value(MV) lists exactly the delegate OIDs.
    expected_delegates = {view.delegate_oid(m) for m in members}
    actual_delegates = view.delegates()
    if expected_delegates != actual_delegates:
        report.broken_delegates |= expected_delegates ^ actual_delegates

    if check_values:
        annotations = view.annotation_oids()
        for base_oid in sorted(members & truth):
            delegate = view.delegate(base_oid)
            if delegate is None:
                report.broken_delegates.add(view.delegate_oid(base_oid))
                continue
            expected = view.expected_delegate_value(base_oid)
            if delegate.is_set:
                actual = set(delegate.children()) - annotations
            else:
                actual = delegate.atomic_value()
            if actual != expected:
                report.stale_values.add(base_oid)
    return report


def assert_consistent(
    view: MaterializedView,
    *,
    registry: DatabaseRegistry | None = None,
    check_values: bool = True,
) -> None:
    """Raise :class:`ViewConsistencyError` unless the view is consistent."""
    report = check_consistency(
        view, registry=registry, check_values=check_values
    )
    if not report.ok:
        raise ViewConsistencyError(
            f"view {view.oid!r} inconsistent: {report.describe()}"
        )
