"""Views with multiple select paths (paper Section 6).

"Relaxing some of the restrictions we imposed on the view definition in
Section 4 is easy.  For example, handling views with more than one
select path or more than one condition is straightforward."

A :class:`MultiPathView` is the union of several simple definitions
over the same base: an object is a member while *any* branch selects
it.  One shared :class:`~repro.views.materialized.MaterializedView`
holds the delegates; per-branch support sets play the role of
derivation counting (an object selected by two branches survives the
loss of one).  Each branch gets its own Algorithm 1 maintainer, driving
a thin adapter that translates branch-level ``V_insert``/``V_delete``
into support-set arithmetic.

(Conjunctive multi-*condition* views are already handled by
:class:`~repro.views.extended.ExtendedViewMaintainer`; this module
covers the select-path side of the paper's remark.)
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ViewDefinitionError
from repro.gsdb.indexes import ParentIndex
from repro.gsdb.store import ObjectStore
from repro.views.definition import ViewDefinition
from repro.views.maintenance import SimpleViewMaintainer
from repro.views.materialized import MaterializedView
from repro.views.recompute import compute_view_members


class _Branch:
    """MaterializedView-compatible adapter for one select path."""

    def __init__(self, parent: "MultiPathView", index: int,
                 definition: ViewDefinition) -> None:
        self.parent = parent
        self.index = index
        self.definition = definition
        self.base_store = parent.base_store
        self.view_store = parent.view.view_store

    @property
    def oid(self) -> str:
        return self.parent.name

    def contains(self, base_oid: str) -> bool:
        return self.index in self.parent.support.get(base_oid, ())

    def v_insert(self, base_oid: str) -> bool:
        return self.parent._branch_insert(self.index, base_oid)

    def v_delete(self, base_oid: str) -> bool:
        return self.parent._branch_delete(self.index, base_oid)

    def refresh(self, base_oid: str) -> bool:
        return self.parent.view.refresh(base_oid)


class MultiPathView:
    """Union of simple views over one base, with shared delegates."""

    def __init__(
        self,
        name: str,
        definitions: Sequence[ViewDefinition | str],
        base_store: ObjectStore,
        view_store: ObjectStore | None = None,
        *,
        parent_index: ParentIndex | None = None,
        subscribe: bool = True,
    ) -> None:
        parsed = [
            ViewDefinition.parse(d) if isinstance(d, str) else d
            for d in definitions
        ]
        if not parsed:
            raise ViewDefinitionError("MultiPathView needs >= 1 definition")
        for definition in parsed:
            definition.require_simple()
        entries = {d.entry for d in parsed}
        if len(entries) > 1:
            raise ViewDefinitionError(
                f"branches must share one entry point, got {sorted(entries)}"
            )
        self.name = name
        self.base_store = base_store
        self.definitions = parsed
        self.support: dict[str, set[int]] = {}
        # The shared view carries a synthetic union definition for
        # identity/reporting; its own query is the first branch's.
        carrier = ViewDefinition(
            name=name, query=parsed[0].query, materialized=True
        )
        self.view = MaterializedView(carrier, base_store, view_store)
        if parent_index is not None and self.view.view_store is base_store:
            parent_index.ignore_view(name)
        self.branches = [
            _Branch(self, i, definition)
            for i, definition in enumerate(parsed)
        ]
        # Initial population, branch by branch.
        for branch in self.branches:
            for member in sorted(
                compute_view_members(branch.definition, base_store)
            ):
                branch.v_insert(member)
        self.maintainers = [
            SimpleViewMaintainer(
                branch,  # type: ignore[arg-type]
                parent_index=parent_index,
                subscribe=subscribe,
            )
            for branch in self.branches
        ]

    # -- membership -----------------------------------------------------------

    def members(self) -> set[str]:
        return self.view.members()

    def contains(self, base_oid: str) -> bool:
        return self.view.contains(base_oid)

    def delegate(self, base_oid: str):
        return self.view.delegate(base_oid)

    def __len__(self) -> int:
        return len(self.view)

    def supporting_branches(self, base_oid: str) -> set[int]:
        return set(self.support.get(base_oid, ()))

    # -- branch-level operations ---------------------------------------------------

    def _branch_insert(self, index: int, base_oid: str) -> bool:
        supporters = self.support.setdefault(base_oid, set())
        fresh_for_branch = index not in supporters
        supporters.add(index)
        if not self.view.contains(base_oid):
            return self.view.v_insert(base_oid)
        self.view.refresh(base_oid)
        return fresh_for_branch

    def _branch_delete(self, index: int, base_oid: str) -> bool:
        supporters = self.support.get(base_oid)
        if supporters is None or index not in supporters:
            return False
        supporters.discard(index)
        if not supporters:
            del self.support[base_oid]
            return self.view.v_delete(base_oid)
        return False

    # -- auditing ---------------------------------------------------------------------

    def check(self) -> bool:
        """Members must equal the union of branch truths, and support
        sets must match per-branch truths exactly."""
        union: set[str] = set()
        for i, definition in enumerate(self.definitions):
            truth = compute_view_members(definition, self.base_store)
            union |= truth
            recorded = {
                oid for oid, sup in self.support.items() if i in sup
            }
            if recorded != truth:
                return False
        return self.members() == union

    def __repr__(self) -> str:
        return (
            f"MultiPathView({self.name!r}, branches={len(self.branches)}, "
            f"members={len(self)})"
        )
