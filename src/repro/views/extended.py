"""Extended view maintenance: wildcard paths and compound conditions.

Section 6 of the paper singles out two relaxations of simple views that
are *not* straightforward: select/condition paths that are general path
expressions (requiring path-containment machinery), and non-tree bases.
This module handles the first over tree bases; :mod:`repro.views.dag`
handles the second.

The class of views accepted (``ViewDefinition.is_extended``):

* ``sel_path_exp`` may contain ``?``/``*`` wildcards and alternation;
* the WHERE clause may be a conjunction of comparisons, each with its
  own (possibly wildcard) condition path;
* no scope clauses.

Algorithm ("affected-region" maintenance).  In a tree, an update at
edge ``N1 → N2`` (or a modify at ``N``) can only change membership of:

* **down-candidates** — objects in N2's subtree lying on an instance of
  ``sel_path_exp`` that passes through the updated edge.  These are
  found by feeding the compiled NFA the consumed prefix
  ``path(ROOT,N1).label(N2)`` and continuing evaluation *inside the
  subtree only* (the residual-states trick).
* **up-candidates** — ancestors of ``N1`` (including ``N1``) that lie
  on an instance of ``sel_path_exp``: their condition witnesses live in
  their subtree, which just changed.  These are read off the
  ROOT→``N1`` chain by running the NFA along it.

Every candidate's membership is then re-decided exactly (reachability
is known by construction; conditions are re-evaluated on the current
base).  For tree bases this is exact, not just sound: an object that is
neither an ancestor of ``N1`` nor inside ``N2``'s subtree has an
unchanged subtree and unchanged root path.

Cost: proportional to the affected region (chain length + matching part
of the subtree), never the whole view — compare experiment E9.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import MaintenanceError
from repro.gsdb.indexes import ParentIndex
from repro.gsdb.store import ObjectStore
from repro.gsdb.traversal import chain_between, descendants
from repro.gsdb.updates import Delete, Insert, Modify, Update
from repro.paths.automaton import compile_expression
from repro.query.conditions import evaluate_condition
from repro.views.materialized import MaterializedView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.views.dispatcher import PathContext


class ExtendedViewMaintainer:
    """Incremental maintainer for wildcard/conjunctive views on trees.

    Interface mirrors
    :class:`~repro.views.maintenance.SimpleViewMaintainer`.
    """

    def __init__(
        self,
        view: MaterializedView,
        *,
        parent_index: ParentIndex | None = None,
        subscribe: bool = False,
    ) -> None:
        if not view.definition.is_extended:
            raise MaintenanceError(
                f"view {view.definition.name!r} is outside the extended "
                f"maintainable class: {view.definition.query}"
            )
        self.view = view
        self.base: ObjectStore = view.base_store
        self.parent_index = parent_index
        if parent_index is not None and view.view_store is view.base_store:
            parent_index.ignore_view(view.oid)
        self.root = view.definition.entry
        self.sel_nfa = compile_expression(view.definition.select_expression)
        self.condition = view.definition.condition
        self.updates_processed = 0
        self._context: "PathContext | None" = None
        if subscribe:
            self.base.subscribe(self.handle)

    # -- dispatch ------------------------------------------------------------

    def handle(
        self, update: Update, context: "PathContext | None" = None
    ) -> None:
        """Process one applied update, optionally with a shared
        per-update :class:`~repro.views.dispatcher.PathContext` so
        ROOT→N1 chains are computed once across views."""
        self.updates_processed += 1
        self._context = context
        try:
            if isinstance(update, (Insert, Delete)):
                self._on_edge_change(update)
            elif isinstance(update, Modify):
                self._on_modify(update)
            else:  # pragma: no cover - defensive
                raise MaintenanceError(f"unknown update: {update!r}")
        finally:
            self._context = None

    def handle_all(self, updates) -> None:
        for update in updates:
            self.handle(update)

    # -- candidate discovery ------------------------------------------------------

    def _chain_to(self, oid: str) -> list[str] | None:
        if self._context is not None:
            return self._context.chain_between(self.root, oid)
        return chain_between(
            self.base, self.root, oid, parent_index=self.parent_index
        )

    def _up_candidates(self, chain: list[str]) -> set[str]:
        """Nodes on the ROOT→N1 chain lying on a sel-path instance."""
        candidates: set[str] = set()
        states = self.sel_nfa.initial()
        if self.sel_nfa.is_accepting(states):
            candidates.add(chain[0])
        for node in chain[1:]:
            obj = self.base.get_optional(node)
            if obj is None:
                break
            states = self.sel_nfa.step(states, obj.label)
            if not states:
                break
            if self.sel_nfa.is_accepting(states):
                candidates.add(node)
        return candidates

    def _down_candidates(
        self, chain: list[str], child_oid: str
    ) -> set[str]:
        """Objects in *child_oid*'s subtree on a sel instance through the
        updated edge."""
        states = self.sel_nfa.initial()
        for node in chain[1:]:
            obj = self.base.get_optional(node)
            if obj is None:
                return set()
            states = self.sel_nfa.step(states, obj.label)
            if not states:
                return set()
        child = self.base.get_optional(child_oid)
        if child is None:
            return set()
        states = self.sel_nfa.step(states, child.label)
        if not states:
            return set()
        return self.sel_nfa.evaluate(self.base, child_oid, from_states=states)

    # -- membership decision ----------------------------------------------------------

    def _decide(self, candidate: str, *, reachable: bool) -> None:
        if not reachable:
            self.view.v_delete(candidate)
            return
        if self.condition is None or evaluate_condition(
            self.base, candidate, self.condition
        ):
            self.view.v_insert(candidate)
        else:
            self.view.v_delete(candidate)

    # -- handlers -----------------------------------------------------------------------

    def _on_edge_change(self, update: Insert | Delete) -> None:
        try:
            attached = isinstance(update, Insert)
            batched = self._context is not None and self._context.batched
            if batched and not attached:
                # Batched dispatch sees the *final* state; later batch
                # updates may have detached or moved parts of the
                # subtree this delete cut off, so the NFA walk below
                # under-approximates.  Complete discovery: evict every
                # member stranded in N2's current subtree (exact on
                # trees).  Members moved elsewhere mid-batch are
                # re-decided by their own updates, dispatched in order.
                self._purge_members_below(update.child)
            chain = self._chain_to(update.parent)
            if chain is None:
                return  # update in a detached region; no member involved
            if attached or not batched:
                for candidate in sorted(
                    self._down_candidates(chain, update.child)
                ):
                    self._decide(candidate, reachable=attached)
            for candidate in sorted(self._up_candidates(chain)):
                self._decide(candidate, reachable=True)
        finally:
            if self.view.contains(update.parent):
                self.view.refresh(update.parent)

    def _purge_members_below(self, child_oid: str) -> None:
        """Evict every view member in *child_oid*'s current subtree.

        A batch kernel may have precomputed the subtree from one
        snapshot sweep (shared across views through
        :meth:`~repro.views.dispatcher.PathContext.descendants_of`);
        otherwise walk the base interpreted."""
        if self.view.contains(child_oid):
            self.view.v_delete(child_oid)
        lookup = getattr(self._context, "descendants_of", None)
        subtree = lookup(child_oid) if lookup is not None else None
        if subtree is None:
            subtree = descendants(self.base, child_oid)
        for oid in sorted(subtree):
            if self.view.contains(oid):
                self.view.v_delete(oid)

    def _on_modify(self, update: Modify) -> None:
        try:
            if self.condition is None:
                return  # membership is pure reachability
            chain = self._chain_to(update.oid)
            if chain is None:
                return
            for candidate in sorted(self._up_candidates(chain)):
                self._decide(candidate, reachable=True)
        finally:
            if self.view.contains(update.oid):
                self.view.refresh(update.oid)
