"""Set-at-a-time batch maintenance over columnar deltas.

The interpreted write path (:meth:`~repro.views.dispatcher.
MaintenanceDispatcher._dispatch`) walks a coalesced batch update-major:
for every update, every registered view re-asks its screen, and every
screen that needs ``path(ROOT, N1)`` walks the ParentIndex chain — a
per-update, per-view interpreter loop.  This module is the vectorized
twin, in the style of discrimination networks (Rete; the GDN-based IVM
of PAPERS.md): the whole batch is screened against *all* views in one
pass, and root chains come from one CSR sweep per view root over the
PR 5 columnar snapshot instead of per-update upward walks.

Pipeline (:func:`kernel_dispatch`):

1. **Frames** — the batch becomes one or more columnar
   :class:`~repro.gsdb.delta.DeltaFrame` s (per-shard under a
   :class:`~repro.views.parallel.ParallelDispatcher`, global intake
   positions preserved).  Label gates are evaluated as shared bitmasks:
   one ``batch_screens`` charge per distinct (op kind, label signature)
   per frame, however many views share the gate.
2. **Regions** — one :class:`RootRegion` per distinct view root: a
   downward BFS over the snapshot with predecessor tracking.  Chains
   and root paths for the batch's touched OIDs are then reconstructed
   from the predecessor column instead of per-update ParentIndex
   walks.  When every screen on a root tests against a concrete select
   path (all :class:`~repro.views.dispatcher._SimpleScreen`), the BFS
   descends only through the union of those paths' labels — off-path
   subtrees cannot change any verdict (see :class:`RootRegion`), so
   the sweep's cost tracks the views, not the database.  A region that
   reaches any row twice is *not a tree*; the whole batch falls back
   to the interpreted dispatcher (charging
   ``batch_kernel_fallbacks``), which reproduces the interpreted
   semantics exactly, multi-parent errors included.
3. **Screens** — per (frame, view) verdicts replicating
   :class:`~repro.views.dispatcher._SimpleScreen` /
   :class:`~repro.views.dispatcher._ExtendedScreen` decision-for-
   decision (contains first, then the label mask, then the batched-
   delete gate, then the region path/chain test).  All verdicts are
   computed *before* any apply — the same precompute the parallel
   dispatcher's screening phase runs — so ``view.contains`` reads the
   pre-batch extent.  Against the serial interpreted dispatcher (which
   interleaves screening with apply) a membership-refresh verdict can
   conservatively differ where an earlier update in the same batch
   changed a view's membership; such differences never change an
   extent, because the refresh they gate re-reads the same frozen
   final base (the PR 4 parallel-dispatch argument, verbatim).
4. **Subtrees** — each batched delete needs the deleted child's
   final-state subtree for the maintainers' complete member purge;
   the kernel computes it once per distinct child with
   :func:`~repro.paths.kernel.reachable_on_snapshot` and shares it
   across all views through :meth:`~repro.views.dispatcher.
   PathContext.descendants_of` (the interpreted path re-walks it per
   view).
5. **Apply** — membership deltas apply set-at-a-time *per view*: for
   each view, its relevant updates run through the unchanged
   ``maintainer.handle(update, context)`` in intake order.

Soundness of the view-major apply (DESIGN.md S13): dispatch happens
only after the whole batch is applied, so every handler reads the same
frozen final base state; a maintainer writes only its own view (view
mutations emit no store updates); and each view still sees *its*
relevant updates in intake order.  Screening verdicts are precomputed
against that same final state — the PR 4 parallel dispatcher already
relies on exactly this — so reordering across views cannot change any
verdict, any membership decision, or any final delegate value
(``v_insert`` refreshes existing members to current base values).
View extents are therefore byte-identical to the interpreted
dispatcher's; logical charges are reported in the columnar currency
(``delta_rows_scanned`` / ``snapshot_rows_scanned``) instead of base
accesses — experiment E19 shows both.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.gsdb.delta import DeltaFrame, iter_bits
from repro.gsdb.updates import Update
from repro.paths.kernel import reachable_on_snapshot
from repro.paths.path import Path


class RootRegion:
    """Downward reachability from one view root, with predecessors.

    One BFS per batch per distinct root: every row reachable from
    *root* gets its predecessor row recorded, so ``path(root, oid)`` /
    ``chain(root, oid)`` for any touched OID is a cached upward read of
    the predecessor column (charged ``delta_rows_scanned`` per
    reconstructed chain row) — no ParentIndex walk.

    ``valid`` turns False when some row is reached twice (two in-region
    parents, or a cycle): the region is not a tree and chain
    reconstruction would be ambiguous, so callers must fall back to the
    interpreted dispatcher.

    ``allowed_labels`` restricts the sweep to the labels that can
    appear on some registered select path rooted here: a child whose
    label continues *no* view's path is counted for duplicate detection
    but not descended into, so the region's size tracks the views'
    paths instead of the whole database under the root.  Sound only
    when every screen on this root resolves paths against its full
    select path (:class:`~repro.views.dispatcher._SimpleScreen`): a
    pruned OID answers ``path() is None``, and the interpreted screen
    returns the same False for it — its true path carries the off-path
    label that pruned it, so ``strip_prefix`` (edge) or the exact path
    comparison (modify) must fail.  Reachability screens
    (:class:`~repro.views.dispatcher._ExtendedScreen`) need the whole
    region and must pass ``allowed_labels=None``.  Duplicate detection
    inside a pruned subtree is forgone — tree discipline there is the
    batching precondition already documented on ``coalesce_updates``.
    """

    def __init__(
        self,
        view,
        root: str,
        counters=None,
        allowed_labels: frozenset[str] | None = None,
    ) -> None:
        self.root = root
        self.valid = True
        self.restricted = allowed_labels is not None
        self._view = view
        self._counters = counters
        self._pred: dict[int, int] = {}
        self._paths: dict[str, list[str] | None] = {}
        self._chains: dict[str, list[str] | None] = {}
        root_row = view.row(root)
        self._root_row = root_row
        if root_row is None:
            return  # absent root: every path/chain answers None
        pred = self._pred
        pred[root_row] = -1
        seen = {root_row}
        frontier = [root_row]
        while frontier:
            next_frontier: list[int] = []
            for row in frontier:
                # Per-row gather keeps the parent association the flat
                # frontier sweep would lose; charges are identical.
                for child in view.gather([row], None):
                    if child in seen:
                        self.valid = False
                        return
                    seen.add(child)
                    if (
                        allowed_labels is not None
                        and view.label(child) not in allowed_labels
                    ):
                        continue  # off every select path rooted here
                    pred[child] = row
                    next_frontier.append(child)
            frontier = next_frontier

    def _reconstruct(self, oid: str) -> None:
        row = self._view.row(oid)
        if row is None or row not in self._pred:
            self._paths[oid] = None
            self._chains[oid] = None
            return
        rows: list[int] = []
        while row != -1:
            rows.append(row)
            row = self._pred[row]
        rows.reverse()  # root ... oid
        if self._counters is not None:
            self._counters.delta_rows_scanned += len(rows)
        view = self._view
        self._chains[oid] = [view.oid(r) for r in rows]
        # path_between semantics: target's label in, root's label out.
        self._paths[oid] = [view.label(r) for r in rows[1:]]

    def path(self, oid: str) -> list[str] | None:
        """``path(root, oid)`` labels, or None when unreachable."""
        if oid not in self._paths:
            self._reconstruct(oid)
        return self._paths[oid]

    def chain(self, oid: str) -> list[str] | None:
        """``[root, ..., oid]`` OIDs, or None when unreachable."""
        if oid not in self._chains:
            self._reconstruct(oid)
        return self._chains[oid]


# ---------------------------------------------------------------------------
# vectorized screens (verdict-identical to the interpreted ones)
# ---------------------------------------------------------------------------


def _screen_simple(
    frame: DeltaFrame, screen, region: RootRegion, verdicts, j: int
) -> None:
    """Frame-at-a-time :class:`_SimpleScreen` — same decisions, shared
    label masks, region paths instead of ParentIndex walks."""
    m = screen.m
    view = m.view
    full = m.full_path
    counters = frame.counters
    positions = frame.positions
    anchors = frame.anchors
    if frame.edge_mask:
        candidates = frame.mask_for("edge", frozenset(screen._full_labels))
        delete_mask = frame.delete_mask
        for i in iter_bits(frame.edge_mask):
            pos = positions[i]
            if view.contains(anchors[i]):
                verdicts[(pos, j)] = True  # member value refresh
            elif not (candidates >> i) & 1:
                verdicts[(pos, j)] = False  # label gate
            elif (delete_mask >> i) & 1:
                verdicts[(pos, j)] = True  # batched delete: gate only
            else:
                if counters is not None:
                    counters.delta_rows_scanned += 1
                prefix = region.path(anchors[i])
                verdicts[(pos, j)] = prefix is not None and (
                    full.strip_prefix(
                        Path(tuple(prefix) + (frame.gate_labels[i],))
                    )
                    is not None
                )
    if not frame.modify_mask:
        return
    if not m.has_condition:
        for i in iter_bits(frame.modify_mask):
            verdicts[(positions[i], j)] = view.contains(anchors[i])
        return
    if not full:
        root = m.root
        for i in iter_bits(frame.modify_mask):
            oid = anchors[i]
            verdicts[(positions[i], j)] = view.contains(oid) or oid == root
        return
    candidates = frame.mask_for("modify", frozenset((full.labels[-1],)))
    for i in iter_bits(frame.modify_mask):
        pos = positions[i]
        oid = anchors[i]
        if view.contains(oid):
            verdicts[(pos, j)] = True
        elif not (candidates >> i) & 1:
            verdicts[(pos, j)] = False
        else:
            if counters is not None:
                counters.delta_rows_scanned += 1
            path = region.path(oid)
            verdicts[(pos, j)] = path is not None and full == tuple(path)


def _screen_extended(
    frame: DeltaFrame, screen, region: RootRegion, verdicts, j: int
) -> None:
    """Frame-at-a-time :class:`_ExtendedScreen` twin."""
    m = screen.m
    view = m.view
    counters = frame.counters
    positions = frame.positions
    anchors = frame.anchors
    if frame.edge_mask:
        gate = screen._edge_labels
        candidates = frame.mask_for(
            "edge", None if gate is None else frozenset(gate)
        )
        delete_mask = frame.delete_mask
        for i in iter_bits(frame.edge_mask):
            pos = positions[i]
            if view.contains(anchors[i]):
                verdicts[(pos, j)] = True
            elif not (candidates >> i) & 1:
                verdicts[(pos, j)] = False
            elif (delete_mask >> i) & 1:
                verdicts[(pos, j)] = True  # batched delete: gate only
            else:
                if counters is not None:
                    counters.delta_rows_scanned += 1
                verdicts[(pos, j)] = region.chain(anchors[i]) is not None
    if not frame.modify_mask:
        return
    if m.condition is None:
        for i in iter_bits(frame.modify_mask):
            verdicts[(positions[i], j)] = view.contains(anchors[i])
        return
    gate = screen._witness_labels
    candidates = frame.mask_for(
        "modify", None if gate is None else frozenset(gate)
    )
    for i in iter_bits(frame.modify_mask):
        pos = positions[i]
        oid = anchors[i]
        if view.contains(oid):
            verdicts[(pos, j)] = True
        elif not (candidates >> i) & 1:
            verdicts[(pos, j)] = False
        else:
            if counters is not None:
                counters.delta_rows_scanned += 1
            verdicts[(pos, j)] = region.chain(oid) is not None


# ---------------------------------------------------------------------------
# the kernel dispatch
# ---------------------------------------------------------------------------


def kernel_dispatch(dispatcher, updates: Sequence[Update], snapshot) -> bool:
    """Screen, region-sweep, and apply *updates* set-at-a-time.

    Returns True when the batch was fully dispatched, False when the
    kernel declined (unsupported screen kind, or a non-tree region) —
    the caller then runs the interpreted dispatcher, and
    ``batch_kernel_fallbacks`` is charged here.  *snapshot* must be a
    fresh snapshot view of ``dispatcher.store`` (the caller guarantees
    it via ``manager.current()``).
    """
    from repro.views.dispatcher import (
        PathContext,
        _ExtendedScreen,
        _SimpleScreen,
    )

    store = dispatcher.store
    counters = store.counters
    entries = dispatcher._entries
    screened = [
        (j, entry)
        for j, entry in enumerate(entries)
        if entry.screen is not None
    ]
    for _j, entry in screened:
        if not isinstance(entry.screen, (_SimpleScreen, _ExtendedScreen)):
            counters.batch_kernel_fallbacks += 1
            return False  # pragma: no cover - no third screen kind exists
    walls = dispatcher.kernel_phase_seconds
    # Phase 1: columnar frames (per shard under a parallel dispatcher).
    began = time.perf_counter()
    frames = dispatcher._kernel_frames(updates)
    walls["screen"] += time.perf_counter() - began
    # Phase 2: one region sweep per distinct view root, restricted to
    # the union of select-path labels when every screen on the root is
    # a _SimpleScreen (an _ExtendedScreen's reachability verdicts need
    # the whole region — None there disables the restriction).
    began = time.perf_counter()
    allowed: dict[str, set[str] | None] = {}
    for _j, entry in screened:
        root = entry.screen.m.root
        if isinstance(entry.screen, _SimpleScreen):
            labels = allowed.get(root, set())
            if labels is not None:
                allowed[root] = labels | entry.screen._full_labels
        else:
            allowed[root] = None
    regions: dict[str, RootRegion] = {}
    for root in sorted(allowed):
        labels = allowed[root]
        region = RootRegion(
            snapshot,
            root,
            counters,
            allowed_labels=None if labels is None else frozenset(labels),
        )
        if not region.valid:
            counters.batch_kernel_fallbacks += 1
            walls["region"] += time.perf_counter() - began
            return False
        regions[root] = region
    walls["region"] += time.perf_counter() - began
    # Phase 3: set-at-a-time screens, verdicts keyed by global position.
    began = time.perf_counter()
    verdicts: dict[tuple[int, int], bool] = {}
    for frame in frames:
        for j, entry in screened:
            screen = entry.screen
            region = regions[screen.m.root]
            if isinstance(screen, _SimpleScreen):
                _screen_simple(frame, screen, region, verdicts, j)
            else:
                _screen_extended(frame, screen, region, verdicts, j)
    walls["screen"] += time.perf_counter() - began
    # Phase 4: shared final-state subtrees for the batched-delete purge
    # — once per distinct deleted child, reused by every view.
    began = time.perf_counter()
    unscreened_ctx = any(
        entry.screen is None and entry.supports_context for entry in entries
    )
    subtrees: dict[str, set[str]] = {}
    for frame in frames:
        for i in iter_bits(frame.delete_mask):
            child = frame.updates[i].child
            if child in subtrees:
                continue
            pos = frame.positions[i]
            if unscreened_ctx or any(
                verdicts[(pos, j)] for j, _entry in screened
            ):
                reach = reachable_on_snapshot(snapshot, [child])
                reach.discard(child)
                subtrees[child] = reach
    walls["region"] += time.perf_counter() - began
    # Phase 5: view-major apply in intake order, through the unchanged
    # maintainer handlers, with region memos grafted into the context.
    began = time.perf_counter()
    context = PathContext(store, dispatcher.parent_index, batched=True)
    context._subtrees = subtrees
    for root, region in regions.items():
        # A restricted region's None means "off every select path",
        # not "unreachable": graft only its positive memos, and let
        # maintainers that ask about pruned OIDs fall back to the
        # context's ParentIndex walk.
        for oid, path in region._paths.items():
            if path is not None or not region.restricted:
                context._paths[(root, oid)] = path
        for oid, chain in region._chains.items():
            if chain is not None or not region.restricted:
                context._chains[(root, oid)] = chain
    dispatcher.updates_dispatched += len(updates)
    for j, entry in enumerate(entries):
        maintainer = entry.maintainer
        if entry.screen is not None:
            for pos, update in enumerate(updates):
                if not verdicts[(pos, j)]:
                    counters.updates_screened += 1
                    continue
                maintainer.handle(update, context)
        elif entry.supports_context:
            for update in updates:
                maintainer.handle(update, context)
        else:
            for update in updates:
                maintainer.handle(update)
    walls["apply"] += time.perf_counter() - began
    dispatcher.batch_kernel_batches += 1
    return True


__all__ = ["RootRegion", "kernel_dispatch"]
