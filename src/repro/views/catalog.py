"""The view catalog: the library's high-level façade.

A :class:`ViewCatalog` ties together a store, a database registry, a
parent index, a query evaluator, and any number of virtual and
materialized views with their maintainers.  It is the API the examples
use::

    catalog = ViewCatalog()
    ...populate catalog.store...
    catalog.create_database("PERSON", member_oids)
    catalog.define("define mview YP as: SELECT ROOT.professor X "
                   "WHERE X.age <= 45")
    catalog.store.insert_edge("P2", "A2")      # maintained automatically
    catalog.query("SELECT YP.?.name X")

Maintainer selection (``maintainer='auto'``): simple definitions get
Algorithm 1 (:class:`SimpleViewMaintainer`); extended ones the
affected-region maintainer; everything else falls back to recompute-on-
update.  Pass ``'dag'`` for DAG bases (simple definitions only) or
``'recompute'`` to force the baseline.
"""

from __future__ import annotations

from typing import Iterable, Literal

from repro.errors import ViewDefinitionError, ViewError
from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.indexes import LabelIndex, ParentIndex
from repro.gsdb.object import Object
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Update
from repro.query.ast import Query
from repro.query.evaluator import QueryEvaluator
from repro.query.parser import parse_query
from repro.views.consistency import ConsistencyReport, check_consistency
from repro.views.dag import DagCountingMaintainer
from repro.views.definition import ViewDefinition
from repro.views.dispatcher import MaintenanceDispatcher, screen_replayed
from repro.views.extended import ExtendedViewMaintainer
from repro.views.maintenance import SimpleViewMaintainer
from repro.views.materialized import MaterializedView, SwizzleMode
from repro.views.recompute import populate_view, recompute_view
from repro.views.virtual import VirtualView

MaintainerKind = Literal["auto", "simple", "extended", "dag", "recompute"]


class _RecomputeMaintainer:
    """Fallback: recompute the whole view after every update."""

    def __init__(self, view: MaterializedView, registry: DatabaseRegistry) -> None:
        self.view = view
        self.registry = registry
        self.updates_processed = 0

    def handle(self, update: Update) -> None:
        self.updates_processed += 1
        recompute_view(self.view, registry=self.registry)

    def handle_all(self, updates) -> None:
        for update in updates:
            self.handle(update)


class ViewCatalog:
    """Store + registry + views + maintainers, wired together."""

    def __init__(
        self,
        store: ObjectStore | None = None,
        *,
        with_parent_index: bool = True,
        with_label_index: bool = False,
        shards: int | None = None,
        workers: int = 4,
    ) -> None:
        """Args:
        store: an existing store to wrap; a fresh one is created when
            omitted (sharded when *shards* > 1).
        shards: partition the catalog's store into this many
            OID-hashed shards (see :mod:`repro.gsdb.sharding`) and
            maintain views with the parallel dispatcher.  Only valid
            when *store* is omitted; passing a
            :class:`~repro.gsdb.sharding.ShardedStore` as *store* has
            the same effect.
        workers: screening thread-pool width of the
            :class:`~repro.views.parallel.ParallelDispatcher` (sharded
            catalogs only; results are worker-count-invariant).
        """
        if store is not None and shards is not None:
            raise ValueError("pass either a store or a shard count")
        if store is None:
            if shards is not None and shards > 1:
                from repro.gsdb.sharding import ShardedStore

                store = ShardedStore(shards)
            else:
                store = ObjectStore()
        self.store = store
        sharded = getattr(store, "shard_count", 1) > 1
        self.registry = DatabaseRegistry(self.store)
        if not with_parent_index:
            self.parent_index = None
        elif sharded:
            from repro.gsdb.sharding import ShardedParentIndex

            self.parent_index = ShardedParentIndex(self.store)
        else:
            self.parent_index = ParentIndex(self.store)
        self.label_index = LabelIndex(self.store) if with_label_index else None
        # The single store subscriber fanning updates to all view
        # maintainers (screened, with a shared per-update PathContext).
        # Subscribed after the indexes so they are fresh when
        # maintenance runs.
        if sharded:
            from repro.views.parallel import ParallelDispatcher

            self.dispatcher = ParallelDispatcher(
                self.store,
                parent_index=self.parent_index,
                subscribe=True,
                workers=workers,
            )
        else:
            self.dispatcher = MaintenanceDispatcher(
                self.store, parent_index=self.parent_index, subscribe=True
            )
        self.evaluator = QueryEvaluator(self.registry)
        #: Optional read-path server (see :meth:`enable_serving`).
        self.server = None
        #: Optional MVCC tier (see :meth:`enable_async_serving`).
        self.async_server = None
        self.virtual_views: dict[str, VirtualView] = {}
        self.materialized_views: dict[str, MaterializedView] = {}
        self.maintainers: dict[str, object] = {}
        self._definition_order: list[str] = []

    # -- databases ----------------------------------------------------------

    def create_database(self, name: str, members: Iterable[str] = ()) -> Object:
        """Create a database object; its grouping edges are excluded from
        the parent index automatically."""
        obj = self.registry.create_database(name, members)
        if self.parent_index is not None:
            self.parent_index.ignore_parent(name)
        return obj

    # -- view definition ------------------------------------------------------

    def define(
        self,
        definition: ViewDefinition | str,
        *,
        maintainer: MaintainerKind = "auto",
        swizzle: SwizzleMode = SwizzleMode.NONE,
        annotate_timestamps: bool = False,
        view_store: ObjectStore | None = None,
    ) -> VirtualView | MaterializedView:
        """Define a view from a ``define [m]view ...`` statement.

        Virtual views are registered and evaluated immediately.
        Materialized views are populated, registered, and hooked to a
        maintainer subscribed to the base store.
        """
        if isinstance(definition, str):
            definition = ViewDefinition.parse(definition)
        name = definition.name
        if name in self.virtual_views or name in self.materialized_views:
            raise ViewError(f"view {name!r} already defined")
        if not definition.materialized:
            view = VirtualView(definition, self.registry)
            if self.parent_index is not None:
                self.parent_index.ignore_parent(name)
            self.virtual_views[name] = view
            self._definition_order.append(name)
            return view
        mview = MaterializedView(
            definition,
            self.store,
            view_store,
            registry=self.registry if view_store is None else None,
            swizzle=swizzle,
            annotate_timestamps=annotate_timestamps,
        )
        if self.parent_index is not None and mview.view_store is self.store:
            self.parent_index.ignore_view(name)
        populate_view(mview, registry=self.registry)
        self.materialized_views[name] = mview
        self._definition_order.append(name)
        self.maintainers[name] = self._make_maintainer(mview, maintainer)
        return mview

    def _make_maintainer(
        self, view: MaterializedView, kind: MaintainerKind
    ):
        definition = view.definition
        if kind == "auto":
            if definition.is_simple:
                kind = "simple"
            elif definition.is_extended:
                kind = "extended"
            else:
                kind = "recompute"
        if kind == "simple":
            return self.dispatcher.register(
                SimpleViewMaintainer(
                    view, parent_index=self.parent_index, subscribe=False
                )
            )
        if kind == "extended":
            return self.dispatcher.register(
                ExtendedViewMaintainer(
                    view, parent_index=self.parent_index, subscribe=False
                )
            )
        if kind == "dag":
            if self.parent_index is None:
                raise ViewDefinitionError(
                    "DAG maintenance requires a parent index"
                )
            return self.dispatcher.register(
                DagCountingMaintainer(view, self.parent_index, subscribe=False)
            )
        if kind == "recompute":
            return self.dispatcher.register(
                _RecomputeMaintainer(view, self.registry)
            )
        raise ViewDefinitionError(f"unknown maintainer kind {kind!r}")

    def define_partial(
        self,
        definition: ViewDefinition | str,
        *,
        depth: int = 2,
        view_store: ObjectStore | None = None,
    ):
        """Define a partially materialized view (§6 open issue 3).

        The view's membership is maintained by Algorithm 1; fragment
        interiors are kept fresh by the view's own subscription.
        """
        from repro.views.partial import PartialMaterializedView

        if isinstance(definition, str):
            definition = ViewDefinition.parse(definition)
        name = definition.name
        if name in self.virtual_views or name in self.materialized_views:
            raise ViewError(f"view {name!r} already defined")
        view = PartialMaterializedView(
            definition, self.store, view_store, depth=depth
        )
        if self.parent_index is not None and view.view_store is self.store:
            self.parent_index.ignore_view(name)
        maintainer = self.dispatcher.register(
            SimpleViewMaintainer(
                view,  # type: ignore[arg-type]
                parent_index=self.parent_index,
                subscribe=False,
            )
        )
        from repro.views.recompute import compute_view_members

        view.load_members(
            compute_view_members(definition, self.store, registry=self.registry)
        )
        self.store.subscribe(view.handle_fragment_update)
        self.materialized_views[name] = view  # type: ignore[assignment]
        self.maintainers[name] = maintainer
        self._definition_order.append(name)
        if view.view_store is self.store:
            self.registry.register(name, name)
        return view

    def define_aggregate(
        self,
        name: str,
        over: str,
        kind,
        *,
        value_path: tuple[str, ...] | None = None,
    ):
        """Define an incrementally maintained aggregate (§6 open issue 2)
        over an existing materialized view named *over*."""
        from repro.views.aggregate import AggregateView

        view = self.materialized_views.get(over)
        if view is None:
            raise ViewError(f"no materialized view named {over!r}")
        return AggregateView(
            name, view, kind, value_path=value_path, subscribe=True
        )

    def define_multipath(
        self, name: str, definitions, *, view_store: ObjectStore | None = None
    ):
        """Define a union-of-select-paths view (paper Section 6)."""
        from repro.views.multipath import MultiPathView

        if name in self.virtual_views or name in self.materialized_views:
            raise ViewError(f"view {name!r} already defined")
        view = MultiPathView(
            name,
            definitions,
            self.store,
            view_store,
            parent_index=self.parent_index,
            subscribe=False,
        )
        # Each branch is an ordinary simple maintainer over a branch
        # adapter; register them individually so each gets its own
        # prefix screen.
        for branch_maintainer in view.maintainers:
            self.dispatcher.register(branch_maintainer)
        self.materialized_views[name] = view.view
        self.maintainers[name] = view
        self._definition_order.append(name)
        if view.view.view_store is self.store:
            self.registry.register(name, name)
        return view

    def drop_view(self, name: str) -> None:
        """Remove a view, its maintainer subscription, and its objects."""
        maintainer = self.maintainers.pop(name, None)
        if maintainer is not None:
            self.dispatcher.unregister(maintainer)
            for sub_maintainer in getattr(maintainer, "maintainers", ()):
                self.dispatcher.unregister(sub_maintainer)
            handler = getattr(maintainer, "handle", None)
            if handler is not None:
                try:
                    self.store.unsubscribe(handler)
                except ValueError:
                    pass
        mview = self.materialized_views.pop(name, None)
        if mview is not None:
            mview.clear()
            if mview.oid in mview.view_store:
                mview.view_store.remove_object(mview.oid)
        vview = self.virtual_views.pop(name, None)
        if vview is not None and vview.oid in self.store:
            self.store.remove_object(vview.oid)
        self.registry.unregister(name)
        if name in self._definition_order:
            self._definition_order.remove(name)

    # -- querying ----------------------------------------------------------------

    def query(self, text: str | Query) -> Object:
        """Evaluate a query, refreshing any virtual views it references.

        Virtual views are refreshed in definition order so views defined
        over other views (paper expression 3.4) observe fresh values.
        """
        query = parse_query(text) if isinstance(text, str) else text
        referenced = {query.entry, query.within, query.ans_int}
        if referenced & set(self.virtual_views):
            for name in self._definition_order:
                if name in self.virtual_views:
                    self.virtual_views[name].refresh()
        return self.evaluator.evaluate(query)

    def query_oids(self, text: str | Query) -> set[str]:
        """Like :meth:`query` but returns the raw OID set."""
        return set(self.query(text).children())

    # -- read-path serving (experiment E16) -----------------------------------

    def enable_serving(
        self, *, cache_size: int = 128, use_frontier: bool = True
    ):
        """Attach a :class:`~repro.serving.server.QueryServer`.

        The server shares the catalog's store, registry, parent index,
        and label index (build the catalog with
        ``with_label_index=True`` to give frontier evaluation its
        children-by-label adjacency).  Queries resolving through a
        virtual or materialized view are served fresh, never cached:
        view maintenance rewires delegates without emitting store
        updates, so the invalidator cannot see those changes — and a
        materialized view is already its own cache.  Idempotent.
        """
        if self.server is None:
            from repro.serving.server import QueryServer

            self.server = QueryServer(
                self.registry,
                parent_index=self.parent_index,
                label_index=self.label_index,
                cache_size=cache_size,
                use_frontier=use_frontier,
                cacheable=self._cacheable_query,
            )
        return self.server

    def enable_async_serving(
        self,
        *,
        retention_capacity: int = 4,
        cache_size: int = 128,
        rebuild_threshold: float = 0.25,
    ):
        """Attach the epoch-pinned MVCC tier (experiment E20).

        Builds an :class:`~repro.serving.mvcc.EpochServer` over the
        catalog's store (enabling the columnar snapshot if needed) and
        returns its :class:`~repro.serving.mvcc.AsyncQueryServer`
        front door.  Writer batches routed through the server run this
        catalog's :meth:`apply_batch` — views are maintained before the
        new epoch publishes, so epoch-pinned answers see maintained
        state; conversely, every direct :meth:`apply_batch` call also
        publishes, keeping the retention ring current no matter which
        door the writer used.  View-referencing queries stay on the
        interpreted fresh path (same rule as :meth:`enable_serving`).
        Idempotent.
        """
        if self.async_server is None:
            from repro.serving.mvcc import AsyncQueryServer, EpochServer

            self.enable_columnar(rebuild_threshold=rebuild_threshold)
            core = EpochServer(
                self.registry,
                parent_index=self.parent_index,
                retention_capacity=retention_capacity,
                cache_size=cache_size,
                cacheable=self._cacheable_query,
                apply_fn=self.apply_batch,
                rebuild_threshold=rebuild_threshold,
            )
            self.async_server = AsyncQueryServer(core)
        return self.async_server

    def enable_columnar(
        self,
        *,
        rebuild_threshold: float = 0.25,
        auto_refresh: bool = True,
        stitch_borders: bool = True,
    ):
        """Attach an epoch-versioned columnar snapshot to the store.

        Once enabled, scope-free recomputation, serving cold misses,
        invalidation reachability refinement, and GC marking all run as
        bitset kernels over CSR adjacency (:mod:`repro.gsdb.columnar`,
        :mod:`repro.paths.kernel`) whenever the snapshot is fresh —
        and fall back to the interpreted path (charging
        ``kernel_fallbacks``) whenever it is not.  Idempotent.
        """
        manager = getattr(self.store, "columnar", None)
        if manager is None:
            from repro.gsdb.columnar import enable_columnar

            manager = enable_columnar(
                self.store,
                rebuild_threshold=rebuild_threshold,
                auto_refresh=auto_refresh,
                stitch_borders=stitch_borders,
            )
        return manager

    def enable_batch_kernel(
        self,
        *,
        rebuild_threshold: float = 0.25,
        auto_refresh: bool = True,
        stitch_borders: bool = True,
    ):
        """Turn on the vectorized write path (experiment E19).

        Enables the columnar snapshot (same knobs as
        :meth:`enable_columnar`) and flips the dispatcher's
        ``batch_kernel`` flag, so batches go through
        :mod:`repro.views.batch_kernel` — set-at-a-time screens over
        columnar delta frames plus one region sweep per view root —
        whenever a fresh snapshot is available, and fall back to the
        interpreted dispatcher (charging ``batch_kernel_fallbacks``)
        otherwise.  View extents are byte-identical either way.
        Idempotent; returns the snapshot manager.
        """
        manager = self.enable_columnar(
            rebuild_threshold=rebuild_threshold,
            auto_refresh=auto_refresh,
            stitch_borders=stitch_borders,
        )
        self.dispatcher.batch_kernel = True
        return manager

    def _cacheable_query(self, query: Query) -> bool:
        """False when the query's answer depends on view delegates."""
        names = set(self.virtual_views) | set(self.materialized_views)
        if {query.entry, query.within, query.ans_int} & names:
            return False
        return not any(
            query.entry.startswith(name + ".") for name in names
        )

    def serve(self, text: str | Query) -> Object:
        """Like :meth:`query`, through the serving layer's cache."""
        if self.server is None:
            self.enable_serving()
        query = parse_query(text) if isinstance(text, str) else text
        referenced = {query.entry, query.within, query.ans_int}
        if referenced & set(self.virtual_views):
            for name in self._definition_order:
                if name in self.virtual_views:
                    self.virtual_views[name].refresh()
        return self.server.evaluate(query)

    def serve_oids(self, text: str | Query) -> set[str]:
        """Like :meth:`serve` but returns the raw OID set."""
        if self.server is None:
            self.enable_serving()
        query = parse_query(text) if isinstance(text, str) else text
        referenced = {query.entry, query.within, query.ans_int}
        if referenced & set(self.virtual_views):
            for name in self._definition_order:
                if name in self.virtual_views:
                    self.virtual_views[name].refresh()
        return self.server.evaluate_oids(query)

    # -- maintenance helpers ---------------------------------------------------------

    def apply_batch(self, updates: Iterable[Update]) -> int:
        """Apply a batch of updates, maintaining views once at the end.

        Updates are applied to the store immediately (indexes stay
        fresh) while maintainer dispatch is deferred; on return the
        batch has been coalesced — net-zero edge flips cancelled,
        modify chains folded — and dispatched against the final state.
        Returns the number of updates applied.

        Re-delivering an already-applied batch (or a prefix of one) is
        a no-op: updates whose effect the store already reflects are
        screened out by
        :func:`~repro.views.dispatcher.screen_replayed` before
        application, so at-least-once delivery upstream cannot trigger
        ``InvalidUpdateError`` double-apply failures.

        Limitation: :class:`~repro.views.aggregate.AggregateView`
        instances subscribe to the base store directly and therefore
        observe batched updates against not-yet-maintained membership;
        call their ``refresh_all()`` after a batch that may affect
        their underlying view.
        """
        fresh = screen_replayed(
            self.store, updates, counters=self.store.counters
        )
        with self.dispatcher.batch():
            applied = self.store.apply_all(fresh)
        if self.async_server is not None:
            # Maintained state becomes the next served epoch (E20);
            # checkpoint() re-enters the write mutex when this batch
            # was routed through the MVCC tier itself.
            self.async_server.core.checkpoint()
        return applied

    def check(self, name: str) -> ConsistencyReport:
        """Audit a materialized view against recomputation."""
        view = self.materialized_views.get(name)
        if view is None:
            raise ViewError(f"no materialized view named {name!r}")
        return check_consistency(view, registry=self.registry)

    def check_all(self) -> dict[str, ConsistencyReport]:
        return {name: self.check(name) for name in self.materialized_views}

    def recompute(self, name: str) -> tuple[int, int]:
        """Force full recomputation of a materialized view."""
        view = self.materialized_views.get(name)
        if view is None:
            raise ViewError(f"no materialized view named {name!r}")
        return recompute_view(view, registry=self.registry)
