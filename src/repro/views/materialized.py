"""Materialized views: delegates, semantic OIDs, swizzling, and edits.

Paper Section 3.2.  A materialized view stores a *delegate* — a real
object with the same label, type and value — for every base object in
the view, under the semantic OID ``<view>.<base>`` (Figure 3).  The
materialized view is itself an ordinary GSDB object
``<MV, mview, set, value(MV)>`` whose value holds the delegate OIDs, so
it can be queried, scoped, and used to define further views.

Three optional behaviours from the paper are implemented:

* **Swizzling** — rewriting base OIDs inside delegate values to the
  OIDs of their delegates when those exist in the same view.  Useful
  when the view lives at a remote site or is queried ``WITHIN MV``.
* **Reference stripping** — after swizzling, removing remaining base
  OIDs so queries through the view can never "lead access" back to base
  data (the access-control edit discussed in Section 3.2).
* **Timestamp annotation** — attaching a ``timestamp`` subobject to each
  delegate recording when it was inserted or refreshed, an auxiliary-
  information edit the paper suggests.  Annotations use OIDs under the
  view prefix and are ignored by the consistency checker.
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.errors import ViewError
from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.object import Object
from repro.gsdb.oid import delegate_oid
from repro.gsdb.store import ObjectStore
from repro.views.definition import ViewDefinition

#: Label of the view object itself (paper Figure 3 shows ``<MVJ, view>``).
VIEW_LABEL = "mview"
#: Label of timestamp annotation objects.
TIMESTAMP_LABEL = "timestamp"


class SwizzleMode(enum.Enum):
    """When edge swizzling happens."""

    NONE = "none"  # delegate values keep base OIDs (paper's default)
    EAGER = "eager"  # values are swizzled on insert/refresh


class MaterializedView:
    """The stored copy of a view, with its delegate bookkeeping.

    Args:
        definition: the view definition (used for identity/reporting;
            evaluation is the maintainers' job).
        base_store: where the original objects live.
        view_store: where delegates live — may be the same store
            (centralized case, Section 4) or a separate one (warehouse,
            Section 5).
        registry: optional registry of the *view* store in which to
            register the view under its name, enabling queries like
            ``SELECT MVJ.professor.student WITHIN MVJ``.
        swizzle: edge-swizzling mode.
        annotate_timestamps: attach ``timestamp`` subobjects to
            delegates on insert/refresh (logical clock).
    """

    def __init__(
        self,
        definition: ViewDefinition,
        base_store: ObjectStore,
        view_store: ObjectStore | None = None,
        *,
        registry: DatabaseRegistry | None = None,
        swizzle: SwizzleMode = SwizzleMode.NONE,
        annotate_timestamps: bool = False,
    ) -> None:
        self.definition = definition
        self.base_store = base_store
        self.view_store = view_store if view_store is not None else base_store
        self.swizzle = swizzle
        self.annotate_timestamps = annotate_timestamps
        self._clock = 0
        self._members: set[str] = set()  # base OIDs currently in the view

        self.view_object = Object.set_object(definition.name, VIEW_LABEL)
        previous = self.view_store.check_references
        self.view_store.check_references = False
        try:
            self.view_store.add_object(self.view_object)
        finally:
            self.view_store.check_references = previous
        if registry is not None:
            registry.register(definition.name, definition.name)

    # -- identity ------------------------------------------------------------

    @property
    def oid(self) -> str:
        """The view object's OID (= the view's name)."""
        return self.definition.name

    def delegate_oid(self, base_oid: str) -> str:
        """Semantic OID of *base_oid*'s delegate (``MVJ.P1``)."""
        return delegate_oid(self.oid, base_oid)

    def timestamp_oid(self, base_oid: str) -> str:
        """OID of the timestamp annotation of a delegate."""
        return delegate_oid(self.oid, f"__ts__.{base_oid}")

    # -- membership ------------------------------------------------------------

    def members(self) -> set[str]:
        """Base OIDs whose delegates are currently in the view."""
        return set(self._members)

    def contains(self, base_oid: str) -> bool:
        return base_oid in self._members

    def delegates(self) -> set[str]:
        """OIDs of all delegate objects (the view object's value)."""
        return set(self.view_object.children())

    def delegate(self, base_oid: str) -> Object | None:
        """The delegate object for *base_oid*, or None."""
        if base_oid not in self._members:
            return None
        return self.view_store.get_optional(self.delegate_oid(base_oid))

    def __len__(self) -> int:
        return len(self._members)

    # -- V_insert / V_delete (paper Section 4.3 definitions) --------------------

    def v_insert(self, base_oid: str) -> bool:
        """The paper's ``V_insert(MV, MV.Y)``.

        Creates the delegate of *base_oid* (copying label, type, value)
        and adds it to the view object's value.  Per the paper, an
        insert of an existing child "will be ignored" — but we refresh
        the stored value so delegates stay true copies (a documented
        extension; see DESIGN.md).  Returns True when a new delegate was
        created.
        """
        if base_oid in self._members:
            self.refresh(base_oid)
            return False
        base = self.base_store.get(base_oid)
        doid = self.delegate_oid(base_oid)
        copy = base.copy(oid=doid)
        previous = self.view_store.check_references
        self.view_store.check_references = False
        try:
            if doid in self.view_store:
                self.view_store.remove_object(doid)  # stale leftover
            self.view_store.add_object(copy)
        finally:
            self.view_store.check_references = previous
        self._members.add(base_oid)
        self.view_object.children().add(doid)
        self.view_store.counters.delegates_inserted += 1
        if self.swizzle is SwizzleMode.EAGER:
            self._swizzle_delegate(base_oid)
            self._reswizzle_referrers(base_oid)
        if self.annotate_timestamps:
            self._stamp(base_oid)
        return True

    def v_delete(self, base_oid: str) -> bool:
        """The paper's ``V_delete(MV, MV.Y)``.

        Removes the delegate from the view object's value and garbage
        collects the delegate object.  "If VN2 is not a child of VN1,
        then nothing happens" — returns False in that case.
        """
        if base_oid not in self._members:
            return False
        doid = self.delegate_oid(base_oid)
        self._members.discard(base_oid)
        self.view_object.children().discard(doid)
        if doid in self.view_store:
            self.view_store.remove_object(doid)
        ts_oid = self.timestamp_oid(base_oid)
        if ts_oid in self.view_store:
            self.view_store.remove_object(ts_oid)
        self.view_store.counters.delegates_deleted += 1
        if self.swizzle is SwizzleMode.EAGER:
            self._unswizzle_referrers(base_oid)
        return True

    def refresh(self, base_oid: str) -> bool:
        """Re-copy the base object's current value into its delegate.

        Needed when a member's value changed but its membership did not
        (e.g. ``modify`` on an atomic member, or ``insert``/``delete``
        on a set member's children).  Returns False for non-members.
        """
        if base_oid not in self._members:
            return False
        base = self.base_store.get(base_oid)
        doid = self.delegate_oid(base_oid)
        delegate = self.view_store.get_optional(doid)
        if delegate is None:  # pragma: no cover - defensive
            raise ViewError(f"missing delegate object {doid!r}")
        if base.is_set:
            delegate.value = set(base.children())
        else:
            delegate.value = base.atomic_value()
        delegate.label = base.label
        delegate.type = base.type
        self.view_store.counters.delegates_refreshed += 1
        if self.swizzle is SwizzleMode.EAGER:
            self._swizzle_delegate(base_oid)
        if self.annotate_timestamps:
            self._stamp(base_oid)
        return True

    def clear(self) -> None:
        """Remove every delegate (used before full recomputation)."""
        for base_oid in sorted(self._members):
            self.v_delete(base_oid)

    # -- swizzling (paper Section 3.2) ---------------------------------------------

    def swizzle_all(self) -> int:
        """Swizzle every delegate's value; returns edges rewritten.

        After this call the view keeps swizzling eagerly so maintenance
        preserves the property.
        """
        self.swizzle = SwizzleMode.EAGER
        rewritten = 0
        for base_oid in sorted(self._members):
            rewritten += self._swizzle_delegate(base_oid)
        return rewritten

    def unswizzle_all(self) -> int:
        """Rewrite delegate-OID references back to base OIDs."""
        self.swizzle = SwizzleMode.NONE
        rewritten = 0
        prefix = self.oid + "."
        for base_oid in sorted(self._members):
            delegate = self.delegate(base_oid)
            if delegate is None or not delegate.is_set:
                continue
            children = delegate.children()
            swizzled = {c for c in children if c.startswith(prefix)}
            for child in swizzled:
                children.discard(child)
                children.add(child[len(prefix):])
                rewritten += 1
        return rewritten

    def strip_base_references(self) -> int:
        """The access-control edit: drop un-swizzled base OIDs from
        delegate values so the view cannot lead back to base data.

        Only meaningful after :meth:`swizzle_all`.  Returns the number
        of references removed.  Note: after stripping, delegate values
        no longer equal their originals — the view is *edited* and the
        consistency checker must be told (paper Section 3.2 warns about
        exactly this).
        """
        removed = 0
        prefix = self.oid + "."
        for base_oid in sorted(self._members):
            delegate = self.delegate(base_oid)
            if delegate is None or not delegate.is_set:
                continue
            children = delegate.children()
            base_refs = {c for c in children if not c.startswith(prefix)}
            for ref in base_refs:
                children.discard(ref)
                removed += 1
        return removed

    def strip_all_references(self) -> int:
        """The fully-hidden edge policy: empty every delegate's value.

        Together with :meth:`swizzle_all` + :meth:`strip_base_references`
        (edges visible among members only) and the default (all edges
        visible, as copied), this answers the paper's first Section 6
        open issue — "views whose edges (relationships) can be
        explicitly shown or hidden" — as a spectrum of manual edits:

        ========================  =========================================
        policy                    how
        ========================  =========================================
        show all edges            default delegate values (copies)
        show member edges only    ``swizzle_all(); strip_base_references()``
        hide all edges            ``strip_all_references()``
        ========================  =========================================

        Like every manual edit, hidden-edge views no longer pass value
        checking (use ``check_consistency(..., check_values=False)``).
        Returns the number of references removed.
        """
        removed = 0
        for base_oid in sorted(self._members):
            delegate = self.delegate(base_oid)
            if delegate is None or not delegate.is_set:
                continue
            removed += len(delegate.children())
            delegate.children().clear()
        return removed

    def _swizzle_delegate(self, base_oid: str) -> int:
        delegate = self.delegate(base_oid)
        if delegate is None or not delegate.is_set:
            return 0
        children = delegate.children()
        rewritten = 0
        ts_oid = self.timestamp_oid(base_oid)
        for child in sorted(children):
            if child == ts_oid or child.startswith(self.oid + "."):
                continue
            if child in self._members:
                children.discard(child)
                children.add(self.delegate_oid(child))
                rewritten += 1
        return rewritten

    def _reswizzle_referrers(self, new_member: str) -> None:
        """A new member appeared: swizzle references to it elsewhere."""
        for base_oid in sorted(self._members):
            if base_oid == new_member:
                continue
            delegate = self.delegate(base_oid)
            if delegate is None or not delegate.is_set:
                continue
            children = delegate.children()
            if new_member in children:
                children.discard(new_member)
                children.add(self.delegate_oid(new_member))

    def _unswizzle_referrers(self, gone_member: str) -> None:
        """A member left: references to its delegate revert to base."""
        gone_doid = self.delegate_oid(gone_member)
        for base_oid in sorted(self._members):
            delegate = self.delegate(base_oid)
            if delegate is None or not delegate.is_set:
                continue
            children = delegate.children()
            if gone_doid in children:
                children.discard(gone_doid)
                children.add(gone_member)

    # -- timestamp annotation ----------------------------------------------------------

    def _stamp(self, base_oid: str) -> None:
        delegate = self.delegate(base_oid)
        if delegate is None or not delegate.is_set:
            return  # the paper suggests stamping set objects
        self._clock += 1
        ts_oid = self.timestamp_oid(base_oid)
        existing = self.view_store.get_optional(ts_oid)
        if existing is not None:
            existing.value = self._clock
        else:
            previous = self.view_store.check_references
            self.view_store.check_references = False
            try:
                self.view_store.add_atomic(ts_oid, TIMESTAMP_LABEL, self._clock)
            finally:
                self.view_store.check_references = previous
        delegate.children().add(ts_oid)

    def annotation_oids(self) -> set[str]:
        """All annotation OIDs (ignored by consistency checking)."""
        return {
            self.timestamp_oid(base_oid)
            for base_oid in self._members
            if self.timestamp_oid(base_oid) in self.view_store
        }

    # -- misc --------------------------------------------------------------------------

    def expected_delegate_value(self, base_oid: str) -> object:
        """What the delegate's value *should* be given the base object,
        the swizzle mode, and annotations — used by the consistency
        checker."""
        base = self.base_store.get(base_oid)
        if not base.is_set:
            return base.atomic_value()
        expected = set(base.children())
        if self.swizzle is SwizzleMode.EAGER:
            expected = {
                self.delegate_oid(c) if c in self._members else c
                for c in expected
            }
        return expected

    def load_members(self, base_oids: Iterable[str]) -> None:
        """Bulk-insert delegates for an initial population."""
        for base_oid in sorted(base_oids):
            self.v_insert(base_oid)

    def __repr__(self) -> str:
        return (
            f"MaterializedView({self.oid!r}, members={len(self._members)}, "
            f"swizzle={self.swizzle.value})"
        )
