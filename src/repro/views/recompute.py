"""Full view (re)computation — the baseline incremental maintenance
is measured against (paper Section 4.4, Example 7).

Recomputation evaluates the defining query from scratch on the current
base state and reconciles the materialized view with the result:
missing delegates are inserted, extraneous ones deleted, and survivors
refreshed (the paper notes "many objects would have to be recreated in
the materialized view each time a base update occurs" — the refresh of
survivors is that recreation cost, which we meter).
"""

from __future__ import annotations

from repro.errors import QueryEvaluationError
from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.store import ObjectStore
from repro.paths.automaton import compile_expression
from repro.paths.kernel import evaluate_on_snapshot
from repro.query.conditions import evaluate_condition
from repro.query.evaluator import QueryEvaluator
from repro.views.definition import ViewDefinition
from repro.views.materialized import MaterializedView


def compute_view_members(
    definition: ViewDefinition,
    base_store: ObjectStore,
    *,
    registry: DatabaseRegistry | None = None,
) -> set[str]:
    """Evaluate the defining query, returning the member OID set.

    When the definition has scope clauses (``WITHIN``/``ANS INT``) a
    registry is required to resolve the database names; scope-free
    definitions are evaluated directly against the store.
    """
    query = definition.query
    if query.within is not None or query.ans_int is not None:
        if registry is None:
            raise QueryEvaluationError(
                f"view {definition.name!r} has scope clauses; "
                "a database registry is required"
            )
        return QueryEvaluator(registry).evaluate_oids(query)
    entry = query.entry
    if registry is not None and entry in registry.names():
        entry = registry.resolve(entry).oid
    if entry not in base_store:
        raise QueryEvaluationError(f"entry object {entry!r} not in store")
    nfa = compile_expression(query.select_path)
    snapshot = None
    manager = getattr(base_store, "columnar", None)
    if manager is not None:
        snapshot = manager.current()
        if snapshot is None:
            base_store.counters.kernel_fallbacks += 1
    if snapshot is not None:
        candidates = evaluate_on_snapshot(snapshot, nfa, entry)
    else:
        # Set-at-a-time even without a snapshot: charges are identical
        # to node-at-a-time evaluate (same (object, state-set) product),
        # but whole frontiers share each per-label NFA step.
        candidates = nfa.evaluate_frontier(base_store, entry)
    if query.condition is None:
        return candidates
    return {
        oid
        for oid in candidates
        if evaluate_condition(base_store, oid, query.condition)
    }


def recompute_view(
    view: MaterializedView,
    *,
    registry: DatabaseRegistry | None = None,
) -> tuple[int, int]:
    """Recompute *view* from scratch; returns ``(inserted, deleted)``.

    Surviving members are refreshed (their values re-copied), modelling
    the full "recreate the materialized view" cost the paper describes.
    """
    view.view_store.counters.view_recomputations += 1
    new_members = compute_view_members(
        view.definition, view.base_store, registry=registry
    )
    old_members = view.members()
    deleted = 0
    for base_oid in sorted(old_members - new_members):
        view.v_delete(base_oid)
        deleted += 1
    inserted = 0
    for base_oid in sorted(new_members - old_members):
        view.v_insert(base_oid)
        inserted += 1
    for base_oid in sorted(new_members & old_members):
        view.refresh(base_oid)
    return inserted, deleted


def populate_view(
    view: MaterializedView,
    *,
    registry: DatabaseRegistry | None = None,
) -> int:
    """Initial population of an empty materialized view.

    Returns the number of delegates created.  (Initial computation is
    not metered as a recomputation — every scheme pays it once.)
    """
    members = compute_view_members(
        view.definition, view.base_store, registry=registry
    )
    view.load_members(members)
    return len(members)
