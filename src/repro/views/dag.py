"""DAG-base maintenance by derivation counting.

The second Section 6 relaxation: "allow base databases to be directed
acyclic graphs (DAGs).  The maintenance algorithm will be similar to
Algorithm 1, except that now there may be more than one path between
two objects."  With multiple paths, deleting one derivation must not
remove a member that another derivation still supports — the classic
counting problem of relational view maintenance [GMS93], transplanted
to paths.

:class:`DagCountingMaintainer` maintains, for a *simple* view
``SELECT ROOT.sel_path X WHERE cond(X.cond_path)`` over a DAG:

* ``reach[Y]`` — the number of distinct ROOT→Y paths matching
  ``sel_path`` (> 0 ⇔ Y ∈ ROOT.sel_path);
* ``wit[Y]`` — for each Y with ``reach[Y] > 0``, the number of
  (path instance, atomic object) pairs witnessing the condition under
  Y (> 0 ⇔ ``cond(Y.cond_path)``).

``Y`` is a member iff ``reach[Y] > 0`` and (no condition or
``wit[Y] > 0``).

On ``insert(N1, N2)`` / ``delete(N1, N2)`` the count deltas factor
through the updated edge: for every position ``i`` of ``sel_path``
whose label equals ``label(N2)``,

    Δreach[Y] = (#ROOT→N1 paths matching sel_path[:i])
              × (#N2→Y paths matching sel_path[i+1:])

and analogously for ``wit`` over ``cond_path`` (upward counts locate
the affected ancestors Y, downward counts the witnesses below N2).
Because the base is acyclic, the edge N1→N2 can appear in a matching
path at most once and never lies on paths *to* N1 or *from* N2, so all
factor counts are valid both before and after the update.  ``modify``
adjusts ``wit`` of the ancestors reached upward along ``cond_path``.

Objects becoming reachable for the first time get their witness count
computed directly (they lie inside N2's subgraph, untouched by the
update), and the delegate-refresh extension keeps copied values true.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MaintenanceError
from repro.gsdb.indexes import ParentIndex
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Delete, Insert, Modify, Update
from repro.views.materialized import MaterializedView


class DagCountingMaintainer:
    """Counting-based incremental maintainer for simple views on DAGs.

    Requires a :class:`ParentIndex` (upward counting needs it).
    """

    def __init__(
        self,
        view: MaterializedView,
        parent_index: ParentIndex,
        *,
        subscribe: bool = False,
    ) -> None:
        view.definition.require_simple()
        self.view = view
        self.base: ObjectStore = view.base_store
        self.parent_index = parent_index
        if view.view_store is view.base_store:
            parent_index.ignore_view(view.oid)
        self.root = view.definition.entry
        self.sel_path = tuple(view.definition.sel_path().labels)
        self.cond_path = tuple(view.definition.cond_path().labels)
        self.has_condition = view.definition.has_condition
        self.cond = view.definition.predicate()
        self.reach: dict[str, int] = {}
        self.wit: dict[str, int] = {}
        self.updates_processed = 0
        self._initialize()
        if subscribe:
            self.base.subscribe(self.handle)

    # -- initialization -----------------------------------------------------

    def _initialize(self) -> None:
        self.reach = self._count_down(self.root, self.sel_path)
        self.reach = {y: c for y, c in self.reach.items() if c > 0}
        for member in self.reach:
            self.wit[member] = self._count_witnesses(member)
        for member in sorted(self.reach):
            if self._is_member(member):
                self.view.v_insert(member)

    # -- counting primitives --------------------------------------------------

    def _count_down(
        self, start: str, labels: Sequence[str]
    ) -> dict[str, int]:
        """#paths from *start* to each node matching *labels* exactly."""
        frontier: dict[str, int] = {start: 1}
        for label in labels:
            next_frontier: dict[str, int] = {}
            for oid, count in frontier.items():
                obj = self.base.get_optional(oid)
                if obj is None or not obj.is_set:
                    continue
                for child in obj.children():
                    self.base.counters.edge_traversals += 1
                    child_obj = self.base.get_optional(child)
                    if child_obj is not None and child_obj.label == label:
                        next_frontier[child] = (
                            next_frontier.get(child, 0) + count
                        )
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def _count_up(
        self, node: str, labels: Sequence[str]
    ) -> dict[str, int]:
        """#paths A→*node* matching *labels*, for every ancestor A.

        The last label of *labels* must be *node*'s own label (the path
        ends at *node*); walking proceeds upward through the parent
        index, fanning out over multiple parents.
        """
        frontier: dict[str, int] = {node: 1}
        for label in reversed(labels):
            next_frontier: dict[str, int] = {}
            for oid, count in frontier.items():
                obj = self.base.get_optional(oid)
                if obj is None or obj.label != label:
                    continue
                for parent in self.parent_index.parents(oid):
                    self.base.counters.edge_traversals += 1
                    next_frontier[parent] = (
                        next_frontier.get(parent, 0) + count
                    )
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def _count_witnesses(self, member: str) -> int:
        """#(path, atomic object) pairs witnessing cond under *member*."""
        if not self.has_condition:
            return 1
        total = 0
        for oid, count in self._count_down(member, self.cond_path).items():
            obj = self.base.get_optional(oid)
            if obj is None or obj.is_set:
                continue
            if self.cond(obj.atomic_value()):
                total += count
        return total

    # -- membership -----------------------------------------------------------

    def _is_member(self, oid: str) -> bool:
        if self.reach.get(oid, 0) <= 0:
            return False
        if not self.has_condition:
            return True
        return self.wit.get(oid, 0) > 0

    def _sync_member(self, oid: str) -> None:
        if self._is_member(oid):
            self.view.v_insert(oid)
        else:
            self.view.v_delete(oid)

    # -- dispatch ----------------------------------------------------------------

    def handle(self, update: Update) -> None:
        self.updates_processed += 1
        if isinstance(update, Insert):
            self._on_edge(update.parent, update.child, sign=+1)
        elif isinstance(update, Delete):
            self._on_edge(update.parent, update.child, sign=-1)
        elif isinstance(update, Modify):
            self._on_modify(update)
        else:  # pragma: no cover - defensive
            raise MaintenanceError(f"unknown update: {update!r}")

    def handle_all(self, updates) -> None:
        for update in updates:
            self.handle(update)

    # -- edge updates ----------------------------------------------------------------

    def _on_edge(self, parent: str, child: str, *, sign: int) -> None:
        try:
            self._apply_reach_deltas(parent, child, sign)
            if self.has_condition:
                self._apply_wit_deltas(parent, child, sign)
        finally:
            if self.view.contains(parent):
                self.view.refresh(parent)

    def _edge_positions(self, labels: Sequence[str], child: str) -> list[int]:
        child_obj = self.base.get_optional(child)
        if child_obj is None:
            return []
        return [
            i for i, label in enumerate(labels) if label == child_obj.label
        ]

    def _apply_reach_deltas(self, parent: str, child: str, sign: int) -> None:
        deltas: dict[str, int] = {}
        for i in self._edge_positions(self.sel_path, child):
            upward = self._count_up(parent, self.sel_path[:i])
            through = upward.get(self.root, 0)
            if not through:
                continue
            downward = self._count_down(child, self.sel_path[i + 1:])
            for target, count in downward.items():
                deltas[target] = deltas.get(target, 0) + through * count
        for target in sorted(deltas):
            delta = sign * deltas[target]
            old = self.reach.get(target, 0)
            new = old + delta
            if new < 0:  # pragma: no cover - indicates a precondition breach
                raise MaintenanceError(
                    f"negative reach count for {target!r}; base not a DAG?"
                )
            if new == 0:
                self.reach.pop(target, None)
                self.wit.pop(target, None)
            else:
                self.reach[target] = new
                if old == 0:
                    # Newly reachable: its witness count was untracked;
                    # compute it fresh (its subgraph is unaffected by
                    # this edge — acyclicity).
                    self.wit[target] = self._count_witnesses(target)
            self._sync_member(target)

    def _apply_wit_deltas(self, parent: str, child: str, sign: int) -> None:
        deltas: dict[str, int] = {}
        for j in self._edge_positions(self.cond_path, child):
            upward = self._count_up(parent, self.cond_path[:j])
            if not upward:
                continue
            below = self._count_down(child, self.cond_path[j + 1:])
            witness_total = 0
            for oid, count in below.items():
                obj = self.base.get_optional(oid)
                if obj is None or obj.is_set:
                    continue
                if self.cond(obj.atomic_value()):
                    witness_total += count
            if not witness_total:
                continue
            for ancestor, count in upward.items():
                deltas[ancestor] = (
                    deltas.get(ancestor, 0) + count * witness_total
                )
        for ancestor in sorted(deltas):
            if ancestor not in self.reach:
                continue  # not on a sel path; irrelevant
            if sign > 0 and ancestor not in self.wit:
                # Tracked reach but witness count never initialized —
                # cannot happen (init covers all reachable), defensive.
                self.wit[ancestor] = self._count_witnesses(ancestor)
                self._sync_member(ancestor)
                continue
            new = self.wit.get(ancestor, 0) + sign * deltas[ancestor]
            if new < 0:  # pragma: no cover - precondition breach
                raise MaintenanceError(
                    f"negative witness count for {ancestor!r}"
                )
            self.wit[ancestor] = new
            self._sync_member(ancestor)

    # -- modify -----------------------------------------------------------------------

    def _on_modify(self, update: Modify) -> None:
        try:
            if not self.has_condition:
                return
            was = self.cond(update.old_value)
            now = self.cond(update.new_value)
            if was == now:
                return
            sign = 1 if now else -1
            upward = self._count_up(update.oid, self.cond_path)
            for ancestor in sorted(upward):
                if ancestor not in self.reach:
                    continue
                new = self.wit.get(ancestor, 0) + sign * upward[ancestor]
                if new < 0:  # pragma: no cover - precondition breach
                    raise MaintenanceError(
                        f"negative witness count for {ancestor!r}"
                    )
                self.wit[ancestor] = new
                self._sync_member(ancestor)
        finally:
            if self.view.contains(update.oid):
                self.view.refresh(update.oid)
