"""Aggregate views — the paper's second open issue (Section 6).

"How does one define and handle views in which the value of one
delegate object is obtained from more than one base objects, for
example, aggregate views?"

An :class:`AggregateView` materializes a single object whose value is
an aggregate (count / sum / avg / min / max) over the witness values of
a simple view's members, e.g. "the number of young professors" or "the
minimum age among them".  It is maintained *incrementally on top of* a
maintained :class:`~repro.views.materialized.MaterializedView`: the
aggregate subscribes to the same base store, recomputes only each
member's contribution when that member's region is touched, and applies
algebraic deltas.

Incrementality notes (the classic self-maintainability asymmetry):

* ``count``/``sum``/``avg`` are fully incremental — contributions add
  and subtract.
* ``min``/``max`` are incremental on inserts and on deletes of
  non-extremal contributions; deleting the current extremum triggers a
  rescan of the surviving contributions (still only view members, never
  the base at large).
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.errors import ViewDefinitionError
from repro.gsdb.object import Object

from repro.gsdb.traversal import follow_path
from repro.gsdb.updates import Update
from repro.views.materialized import MaterializedView


class AggregateKind(enum.Enum):
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


class AggregateView:
    """A one-object materialized aggregate over a maintained view.

    Args:
        name: OID/label base for the aggregate object.
        view: the (separately maintained) materialized view to
            aggregate over.  Subscribe this aggregate *after* the
            view's maintainer so it observes post-maintenance state.
        kind: which aggregate.
        value_path: labels from a member to the aggregated atomic
            values; defaults to the view's condition path, so "sum of
            ages of young professors" needs no extra configuration.
        value_filter: optional predicate on atomic values (defaults to
            numbers only, protecting sums from stray strings).
    """

    def __init__(
        self,
        name: str,
        view: MaterializedView,
        kind: AggregateKind,
        *,
        value_path: tuple[str, ...] | None = None,
        value_filter: Callable[[object], bool] | None = None,
        subscribe: bool = False,
    ) -> None:
        self.name = name
        self.view = view
        self.kind = AggregateKind(kind)
        if value_path is None:
            if self.kind is not AggregateKind.COUNT:
                value_path = tuple(view.definition.cond_path().labels)
            else:
                value_path = ()
        self.value_path = tuple(value_path)
        self.value_filter = value_filter or (
            lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
        )
        self._contributions: dict[str, list[float]] = {}
        self.object = Object.atomic(name, f"{self.kind.value}", 0)
        store = view.view_store
        previous = store.check_references
        store.check_references = False
        try:
            store.add_object(self.object)
        finally:
            store.check_references = previous
        self.refresh_all()
        if subscribe:
            view.base_store.subscribe(self.handle)

    # -- contribution extraction --------------------------------------------

    def _member_contribution(self, member: str) -> list[float]:
        base = self.view.base_store
        if self.kind is AggregateKind.COUNT and not self.value_path:
            return [1.0]
        values: list[float] = []
        for oid in sorted(follow_path(base, member, self.value_path)):
            obj = base.get_optional(oid)
            if obj is None or obj.is_set:
                continue
            value = obj.atomic_value()
            if not self.value_filter(value):
                continue
            if self.kind is AggregateKind.COUNT:
                values.append(1.0)  # count matches; no numeric coercion
            else:
                values.append(float(value))
        return values

    # -- recomputation ---------------------------------------------------------

    def refresh_all(self) -> None:
        """Recompute every contribution (initialization / audit)."""
        self._contributions = {
            member: self._member_contribution(member)
            for member in self.view.members()
        }
        self._publish()

    # -- maintenance --------------------------------------------------------------

    def handle(self, update: Update) -> None:
        """React to one base update (after the view's maintainer ran).

        Membership changes and value changes are detected by comparing
        the view's current member set with the tracked contributions,
        plus re-extracting contributions of members whose region the
        update touched.
        """
        members = self.view.members()
        tracked = set(self._contributions)
        for gone in tracked - members:
            del self._contributions[gone]
        for new in members - tracked:
            self._contributions[new] = self._member_contribution(new)
        # A value change below a surviving member: re-extract only the
        # members whose value region contains a directly affected object.
        affected = set(update.directly_affected)
        for member in members & tracked:
            if self._touches(member, affected):
                self._contributions[member] = self._member_contribution(
                    member
                )
        self._publish()

    def _touches(self, member: str, affected: set[str]) -> bool:
        """Is a directly affected object anywhere on the member's value
        path (including the member itself)?"""
        base = self.view.base_store
        for length in range(len(self.value_path) + 1):
            prefix = self.value_path[:length]
            if affected & follow_path(base, member, prefix):
                return True
        return False

    # -- publication ------------------------------------------------------------------

    def _flat_values(self) -> list[float]:
        return [
            value
            for values in self._contributions.values()
            for value in values
        ]

    def current_value(self) -> float | int | None:
        values = self._flat_values()
        if self.kind is AggregateKind.COUNT:
            return len(values)
        if not values:
            return None
        if self.kind is AggregateKind.SUM:
            return sum(values)
        if self.kind is AggregateKind.AVG:
            return sum(values) / len(values)
        if self.kind is AggregateKind.MIN:
            return min(values)
        if self.kind is AggregateKind.MAX:
            return max(values)
        raise ViewDefinitionError(f"unknown aggregate {self.kind}")

    def _publish(self) -> None:
        value = self.current_value()
        self.object.value = value if value is not None else 0

    def check(self) -> bool:
        """Audit: recompute from scratch and compare."""
        snapshot = self.object.value
        contributions = dict(self._contributions)
        self.refresh_all()
        ok = self.object.value == snapshot and (
            self._contributions == contributions
        )
        return ok
