"""View clusters: several views sharing one delegate per base object.

Paper Section 3.2 (end): "if a remote site defines several views that
share common objects, it may end up with multiple delegates for the
same base object.  The notion of a *view cluster* avoids this, by
making all views in a cluster share delegates."

A :class:`ViewCluster` owns a pool of reference-counted shared
delegates with OIDs ``<cluster>.<base>``; each
:class:`ClusterMemberView` is a view object whose value points into the
shared pool.  Member views expose the same surface as
:class:`~repro.views.materialized.MaterializedView` (``v_insert``,
``v_delete``, ``refresh``, ``contains``, ``members``, ...), so the
ordinary maintainers drive them unchanged (duck typing).

Swizzling and timestamping are not supported on clustered views — a
shared delegate cannot be swizzled per-view.
"""

from __future__ import annotations

from repro.errors import ViewError
from repro.gsdb.object import Object
from repro.gsdb.oid import delegate_oid
from repro.gsdb.store import ObjectStore
from repro.views.definition import ViewDefinition
from repro.views.materialized import VIEW_LABEL

#: Label of the cluster's bookkeeping object.
CLUSTER_LABEL = "view_cluster"


class ViewCluster:
    """A pool of shared, reference-counted delegates."""

    def __init__(
        self,
        cluster_oid: str,
        base_store: ObjectStore,
        view_store: ObjectStore | None = None,
    ) -> None:
        self.oid = cluster_oid
        self.base_store = base_store
        self.view_store = view_store if view_store is not None else base_store
        self._refcounts: dict[str, int] = {}
        self.views: dict[str, "ClusterMemberView"] = {}
        self.cluster_object = Object.set_object(cluster_oid, CLUSTER_LABEL)
        previous = self.view_store.check_references
        self.view_store.check_references = False
        try:
            self.view_store.add_object(self.cluster_object)
        finally:
            self.view_store.check_references = previous

    # -- delegate pool ------------------------------------------------------

    def delegate_oid(self, base_oid: str) -> str:
        return delegate_oid(self.oid, base_oid)

    def refcount(self, base_oid: str) -> int:
        return self._refcounts.get(base_oid, 0)

    def acquire(self, base_oid: str) -> str:
        """Take a reference on *base_oid*'s shared delegate, creating it
        on the first reference.  Returns the delegate OID."""
        doid = self.delegate_oid(base_oid)
        count = self._refcounts.get(base_oid, 0)
        if count == 0:
            base = self.base_store.get(base_oid)
            previous = self.view_store.check_references
            self.view_store.check_references = False
            try:
                if doid in self.view_store:
                    self.view_store.remove_object(doid)
                self.view_store.add_object(base.copy(oid=doid))
            finally:
                self.view_store.check_references = previous
            self.cluster_object.children().add(doid)
            self.view_store.counters.delegates_inserted += 1
        self._refcounts[base_oid] = count + 1
        return doid

    def release(self, base_oid: str) -> None:
        """Drop a reference; the delegate is collected at zero."""
        count = self._refcounts.get(base_oid, 0)
        if count <= 0:
            raise ViewError(
                f"release of unreferenced delegate for {base_oid!r}"
            )
        if count == 1:
            del self._refcounts[base_oid]
            doid = self.delegate_oid(base_oid)
            self.cluster_object.children().discard(doid)
            if doid in self.view_store:
                self.view_store.remove_object(doid)
            self.view_store.counters.delegates_deleted += 1
        else:
            self._refcounts[base_oid] = count - 1

    def refresh_delegate(self, base_oid: str) -> None:
        if self._refcounts.get(base_oid, 0) == 0:
            return
        base = self.base_store.get(base_oid)
        delegate = self.view_store.get_optional(self.delegate_oid(base_oid))
        if delegate is None:  # pragma: no cover - defensive
            raise ViewError(f"missing shared delegate for {base_oid!r}")
        delegate.value = (
            set(base.children()) if base.is_set else base.atomic_value()
        )
        delegate.label = base.label
        delegate.type = base.type
        self.view_store.counters.delegates_refreshed += 1

    def shared_delegates(self) -> set[str]:
        return set(self.cluster_object.children())

    def add_view(self, definition: ViewDefinition) -> "ClusterMemberView":
        """Create a member view in this cluster."""
        if definition.name in self.views:
            raise ViewError(f"view {definition.name!r} already in cluster")
        view = ClusterMemberView(definition, self)
        self.views[definition.name] = view
        return view


class ClusterMemberView:
    """One view inside a cluster — MaterializedView-compatible surface."""

    def __init__(self, definition: ViewDefinition, cluster: ViewCluster) -> None:
        self.definition = definition
        self.cluster = cluster
        self.base_store = cluster.base_store
        self.view_store = cluster.view_store
        self._members: set[str] = set()
        self.view_object = Object.set_object(definition.name, VIEW_LABEL)
        previous = self.view_store.check_references
        self.view_store.check_references = False
        try:
            self.view_store.add_object(self.view_object)
        finally:
            self.view_store.check_references = previous

    @property
    def oid(self) -> str:
        return self.definition.name

    def delegate_oid(self, base_oid: str) -> str:
        """Clustered views share the cluster's delegate namespace."""
        return self.cluster.delegate_oid(base_oid)

    def members(self) -> set[str]:
        return set(self._members)

    def contains(self, base_oid: str) -> bool:
        return base_oid in self._members

    def delegates(self) -> set[str]:
        return set(self.view_object.children())

    def delegate(self, base_oid: str) -> Object | None:
        if base_oid not in self._members:
            return None
        return self.view_store.get_optional(self.delegate_oid(base_oid))

    def __len__(self) -> int:
        return len(self._members)

    # -- MaterializedView-compatible mutators --------------------------------

    def v_insert(self, base_oid: str) -> bool:
        if base_oid in self._members:
            self.refresh(base_oid)
            return False
        doid = self.cluster.acquire(base_oid)
        self._members.add(base_oid)
        self.view_object.children().add(doid)
        return True

    def v_delete(self, base_oid: str) -> bool:
        if base_oid not in self._members:
            return False
        self._members.discard(base_oid)
        self.view_object.children().discard(self.delegate_oid(base_oid))
        self.cluster.release(base_oid)
        return True

    def refresh(self, base_oid: str) -> bool:
        if base_oid not in self._members:
            return False
        self.cluster.refresh_delegate(base_oid)
        return True

    def clear(self) -> None:
        for base_oid in sorted(self._members):
            self.v_delete(base_oid)

    def load_members(self, base_oids) -> None:
        for base_oid in sorted(base_oids):
            self.v_insert(base_oid)

    # -- consistency-checker hooks --------------------------------------------

    def expected_delegate_value(self, base_oid: str) -> object:
        base = self.base_store.get(base_oid)
        if base.is_set:
            return set(base.children())
        return base.atomic_value()

    def annotation_oids(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return (
            f"ClusterMemberView({self.oid!r}, cluster={self.cluster.oid!r}, "
            f"members={len(self._members)})"
        )
