"""Partially materialized views — the paper's third open issue (§6).

"How does one define and maintain partially materialized views, for
example, views that materialize a few levels of objects and leave the
rest as pointers back to base data?  This type of views may be useful
for caching some but not all data of interest."

A :class:`PartialMaterializedView` copies, for every view member, a
*fragment*: the member and its descendants down to ``depth`` levels.
Inside a fragment, edges are swizzled to the copied objects; at the
fragment frontier, set values keep base OIDs — the "pointers back to
base data".  ``depth=1`` copies just the member objects (the paper's
ordinary materialized view with eager swizzling); larger depths cache
more context locally.

The class exposes the same mutation surface as
:class:`~repro.views.materialized.MaterializedView` (``v_insert`` /
``v_delete`` / ``refresh`` / ``contains`` / ...), so the ordinary
maintainers drive *membership* unchanged.  Fragment *contents* below
the member are outside what Algorithm 1 refreshes, so the view also
subscribes to the base store and rebuilds any fragment whose interior
an update touches.  Fragments may overlap (a member nested inside
another member's fragment); copied objects are reference counted.
"""

from __future__ import annotations

from typing import Iterable

from repro.gsdb.object import Object
from repro.gsdb.oid import delegate_oid
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Update
from repro.views.definition import ViewDefinition
from repro.views.materialized import VIEW_LABEL


class PartialMaterializedView:
    """Materialize ``depth`` levels per member; deeper data stays remote."""

    def __init__(
        self,
        definition: ViewDefinition,
        base_store: ObjectStore,
        view_store: ObjectStore | None = None,
        *,
        depth: int = 2,
        subscribe_fragments: bool = False,
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.definition = definition
        self.base_store = base_store
        self.view_store = view_store if view_store is not None else base_store
        self.depth = depth
        self._members: set[str] = set()
        self._refcounts: dict[str, int] = {}
        self._fragments: dict[str, tuple[str, ...]] = {}  # member -> oids
        self.view_object = Object.set_object(definition.name, VIEW_LABEL)
        previous = self.view_store.check_references
        self.view_store.check_references = False
        try:
            self.view_store.add_object(self.view_object)
        finally:
            self.view_store.check_references = previous
        if subscribe_fragments:
            base_store.subscribe(self.handle_fragment_update)

    # -- identity / lookup -----------------------------------------------------

    @property
    def oid(self) -> str:
        return self.definition.name

    def delegate_oid(self, base_oid: str) -> str:
        return delegate_oid(self.oid, base_oid)

    def members(self) -> set[str]:
        return set(self._members)

    def contains(self, base_oid: str) -> bool:
        return base_oid in self._members

    def delegates(self) -> set[str]:
        return set(self.view_object.children())

    def copied_oids(self) -> set[str]:
        """Every base OID with a local copy (members + fragment interiors)."""
        return set(self._refcounts)

    def delegate(self, base_oid: str) -> Object | None:
        if base_oid not in self._refcounts:
            return None
        return self.view_store.get_optional(self.delegate_oid(base_oid))

    def fragment_of(self, member: str) -> tuple[str, ...]:
        return self._fragments.get(member, ())

    def __len__(self) -> int:
        return len(self._members)

    # -- fragment computation -----------------------------------------------------

    def _fragment_oids(self, member: str) -> list[str]:
        """Member + descendants within ``depth`` levels (BFS order)."""
        oids = [member]
        seen = {member}
        frontier = [member]
        for _ in range(self.depth - 1):
            next_frontier: list[str] = []
            for oid in frontier:
                obj = self.base_store.get_optional(oid)
                if obj is None or not obj.is_set:
                    continue
                for child in obj.sorted_children():
                    if child not in seen:
                        seen.add(child)
                        oids.append(child)
                        next_frontier.append(child)
            frontier = next_frontier
        return oids

    def _copy_one(self, base_oid: str, in_fragment: set[str]) -> None:
        base = self.base_store.get(base_oid)
        doid = self.delegate_oid(base_oid)
        if base.is_set:
            # Interior edges swizzle; frontier edges point back to base.
            value = {
                self.delegate_oid(c) if c in in_fragment else c
                for c in base.children()
            }
            copy = Object(doid, base.label, "set", value)
        else:
            copy = Object(doid, base.label, base.type, base.atomic_value())
        previous = self.view_store.check_references
        self.view_store.check_references = False
        try:
            if doid in self.view_store:
                self.view_store.remove_object(doid)
            self.view_store.add_object(copy)
        finally:
            self.view_store.check_references = previous

    def _build_fragment(self, member: str) -> None:
        oids = self._fragment_oids(member)
        in_fragment = set(oids)
        for base_oid in oids:
            self._copy_one(base_oid, in_fragment)
            self._refcounts[base_oid] = self._refcounts.get(base_oid, 0) + 1
        self._fragments[member] = tuple(oids)

    def _drop_fragment(self, member: str) -> None:
        for base_oid in self._fragments.pop(member, ()):
            count = self._refcounts.get(base_oid, 0) - 1
            if count <= 0:
                self._refcounts.pop(base_oid, None)
                doid = self.delegate_oid(base_oid)
                if doid in self.view_store:
                    self.view_store.remove_object(doid)
            else:
                self._refcounts[base_oid] = count

    # -- MaterializedView-compatible mutators ------------------------------------------

    def v_insert(self, member: str) -> bool:
        if member in self._members:
            self.refresh(member)
            return False
        self._members.add(member)
        self._build_fragment(member)
        self.view_object.children().add(self.delegate_oid(member))
        self.view_store.counters.delegates_inserted += 1
        return True

    def v_delete(self, member: str) -> bool:
        if member not in self._members:
            return False
        self._members.discard(member)
        self._drop_fragment(member)
        self.view_object.children().discard(self.delegate_oid(member))
        self.view_store.counters.delegates_deleted += 1
        return True

    def refresh(self, member: str) -> bool:
        """Rebuild the member's whole fragment from current base state."""
        if member not in self._members:
            return False
        self._drop_fragment(member)
        self._build_fragment(member)
        self.view_store.counters.delegates_refreshed += 1
        return True

    def clear(self) -> None:
        for member in sorted(self._members):
            self.v_delete(member)

    def load_members(self, members: Iterable[str]) -> None:
        for member in sorted(members):
            self.v_insert(member)

    # -- fragment-interior maintenance ----------------------------------------------------

    def handle_fragment_update(self, update: Update) -> None:
        """Rebuild fragments whose interior the update touched.

        Membership itself is the job of the attached maintainer (which
        runs first — it subscribed first); this pass only keeps copied
        interiors fresh, the analogue of the delegate-refresh extension
        for multi-level copies.
        """
        affected = set(update.directly_affected)
        for member in sorted(self._members):
            fragment = set(self._fragments.get(member, ()))
            if fragment & affected:
                self.refresh(member)

    # -- consistency-checker hooks ------------------------------------------------------------

    def expected_delegate_value(self, base_oid: str) -> object:
        """What a member's delegate value should hold: interior children
        swizzled, frontier children as base OIDs."""
        base = self.base_store.get(base_oid)
        if not base.is_set:
            return base.atomic_value()
        copied = self.copied_oids()
        return {
            self.delegate_oid(c) if c in copied and self._interior(base_oid, c)
            else c
            for c in base.children()
        }

    def _interior(self, parent: str, child: str) -> bool:
        """Is the edge parent→child interior to some fragment?"""
        for member, fragment in self._fragments.items():
            oids = set(fragment)
            if parent in oids and child in oids:
                return True
        return False

    def annotation_oids(self) -> set[str]:
        return set()

    def check_fragments(self) -> list[str]:
        """Audit every copied object against the base; returns a list of
        OIDs whose copy is stale (empty = consistent)."""
        stale: list[str] = []
        for member in sorted(self._members):
            expected = self._fragment_oids(member)
            if tuple(expected) != self._fragments.get(member, ()):
                stale.append(member)
                continue
            in_fragment = set(expected)
            for base_oid in expected:
                base = self.base_store.get(base_oid)
                copy = self.delegate(base_oid)
                if copy is None or copy.label != base.label:
                    stale.append(base_oid)
                    continue
                if base.is_set:
                    want = {
                        self.delegate_oid(c) if c in in_fragment else c
                        for c in base.children()
                    }
                    if copy.children() != want:
                        stale.append(base_oid)
                elif copy.atomic_value() != base.atomic_value():
                    stale.append(base_oid)
        return stale

    def __repr__(self) -> str:
        return (
            f"PartialMaterializedView({self.oid!r}, depth={self.depth}, "
            f"members={len(self._members)}, copies={len(self._refcounts)})"
        )
