"""Parallel multi-view maintenance over a sharded store.

:class:`ParallelDispatcher` splits :class:`~repro.views.dispatcher.
MaintenanceDispatcher`'s per-batch work into the phase that dominates
it — *screening*, the relevance walks up the tree for every (update,
view) pair — and the *apply* phase that mutates view extents.  The
screening phase fans out to a thread pool, one task per shard of the
underlying :class:`~repro.gsdb.sharding.ShardedStore`; the apply phase
stays serial and runs in the batch's original intake order.

Why this split preserves the single-threaded semantics exactly:

1. **Screening is read-only over a frozen state.**  Dispatch happens
   only after the whole batch is applied to the base (the superclass's
   ``batch()``/``handle_batch`` contract), so every worker reads the
   same final state and no worker writes to the store, the indexes, or
   the views.  Workers touch shared structures exclusively through
   uncharged reads (``peek``, raw parent-map lookups) and charge their
   work to *private* per-shard counters, so there are no data races and
   no racy ``+=`` on shared counters.

2. **The unit of parallelism is the shard, not the thread.**  Each
   update is screened by the task for the shard that *owns* it (the
   edge's parent shard; the modified object's shard — the same routing
   :meth:`~repro.gsdb.sharding.ShardedStore.owner` uses to apply it).
   A task processes its updates in intake order with its own private
   path memo.  Thread count only changes how tasks interleave on the
   pool, never what any task computes — so verdicts, memo contents,
   and per-shard counter deltas are identical with 1 or 8 workers.

3. **The merge is deterministic.**  After the pool joins, per-shard
   results merge in ascending shard order: counter deltas add into
   each shard's own counters, and the workers' path memos graft into
   one shared :class:`~repro.views.dispatcher.PathContext` (memo
   entries computed by different shards for the same key are equal —
   they describe the same final state — so merge order cannot change a
   value).  The apply phase then replays the batch in global intake
   order, consulting the precomputed verdicts, which is observably the
   same schedule the serial dispatcher runs — hence identical view
   extents and identical update-log order (the determinism test of
   ``tests/views/test_parallel.py``).

Because screening charges land on the counters of the shard that owns
each update, experiment E17 can report the *critical path* of a batch
— ``max`` over shards of the per-shard cost — which is the wall-clock
model of a real deployment with one maintenance worker per shard (the
thread pool here buys no CPU parallelism under the GIL; the logical
cost model is the honest metric, as everywhere in this repo).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.errors import UnknownObjectError
from repro.gsdb.sharding import ShardedParentIndex, ShardedStore
from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Update
from repro.instrumentation.counters import CostCounters
from repro.views.dispatcher import MaintenanceDispatcher, PathContext


class _ShardReadView:
    """Store facade for one screening task: real data, private charges.

    Reads go through the sharded store's uncharged ``peek`` so
    concurrent tasks never touch shared counters; the charges the real
    store would have made land on this task's private counters instead.
    """

    __slots__ = ("_store", "counters")

    def __init__(self, store, counters: CostCounters) -> None:
        self._store = store
        self.counters = counters

    def peek(self, oid: str):
        return self._store.peek(oid)

    def get_optional(self, oid: str):
        self.counters.object_reads += 1
        return self._store.peek(oid)

    def get(self, oid: str):
        self.counters.object_reads += 1
        obj = self._store.peek(oid)
        if obj is None:
            raise UnknownObjectError(oid)
        return obj


class _ShardIndexView:
    """Parent-index facade for one screening task.

    Mirrors the lookup surface screening reaches (``parent`` /
    ``parents`` / ``memoized_path`` / ``memoized_chain`` /
    ``chain_to_top``) over *uncharged* reads of the real index's maps,
    charging the walk to the task's private counters with the same
    pattern as :meth:`~repro.gsdb.indexes.ParentIndex._upward_chain`
    (one read + probe per node, one traversal per hop, a private chain
    memo with suffix caching).  The real index's memo is neither read
    nor written — it stays race-free and is warmed later by the merge.
    """

    __slots__ = ("_index", "_store", "counters", "_chain_cache")

    def __init__(self, index, store, counters: CostCounters) -> None:
        self._index = index
        self._store = store
        self.counters = counters
        self._chain_cache: dict[
            str, tuple[tuple[tuple[str, str], ...], bool]
        ] = {}

    def _parents_uncharged(self, oid: str) -> set[str]:
        index = self._index
        if isinstance(index, ShardedParentIndex):
            return index._raw_parents(oid, charged=False)
        return {
            p
            for p in index._parents.get(oid, ())
            if not index._is_ignored(p)
        }

    def parents(self, oid: str) -> set[str]:
        self.counters.index_probes += 1
        return self._parents_uncharged(oid)

    def parent(self, oid: str) -> str | None:
        self.counters.index_probes += 1
        parents = self._parents_uncharged(oid)
        if not parents:
            return None
        if len(parents) > 1:
            raise ValueError(
                f"object {oid!r} has {len(parents)} parents; "
                "base is not a tree"
            )
        return next(iter(parents))

    def _upward_chain(
        self, oid: str
    ) -> tuple[tuple[tuple[str, str], ...], bool]:
        counters = self.counters
        cached = self._chain_cache.get(oid)
        if cached is not None:
            counters.index_probes += 1
            counters.chain_cache_hits += 1
            return cached
        counters.chain_cache_misses += 1
        entries: list[tuple[str, str]] = []
        stopped_at_multi = False
        current = oid
        while True:
            obj = self._store.peek(current)
            if obj is None:
                break
            counters.object_reads += 1
            entries.append((current, obj.label))
            counters.index_probes += 1
            parents = self._parents_uncharged(current)
            if not parents:
                break
            if len(parents) > 1:
                stopped_at_multi = True
                break
            counters.edge_traversals += 1
            current = next(iter(parents))
        result = (tuple(entries), stopped_at_multi)
        self._chain_cache[oid] = result
        for i in range(1, len(entries)):
            self._chain_cache.setdefault(
                entries[i][0], (result[0][i:], stopped_at_multi)
            )
        return result

    def _scan_chain(
        self, ancestor: str, descendant: str
    ) -> tuple[tuple[tuple[str, str], ...], int] | None:
        chain, stopped_at_multi = self._upward_chain(descendant)
        if not chain or chain[0][0] != descendant:
            return None
        for i, (oid, _label) in enumerate(chain):
            if oid == ancestor:
                return chain, i
        if stopped_at_multi:
            top = chain[-1][0]
            raise ValueError(
                f"object {top!r} has multiple parents; base is not a tree"
            )
        return None

    def memoized_path(
        self, ancestor: str, descendant: str
    ) -> list[str] | None:
        located = self._scan_chain(ancestor, descendant)
        if located is None:
            return None
        chain, i = located
        labels = [label for (_oid, label) in chain[:i]]
        labels.reverse()
        return labels

    def memoized_chain(
        self, ancestor: str, descendant: str
    ) -> list[str] | None:
        located = self._scan_chain(ancestor, descendant)
        if located is None:
            return None
        chain, i = located
        oids = [entry_oid for (entry_oid, _lab) in chain[: i + 1]]
        oids.reverse()
        return oids

    def chain_to_top(self, oid: str) -> tuple[tuple[str, ...], bool]:
        chain, stopped_at_multi = self._upward_chain(oid)
        return (
            tuple(entry_oid for entry_oid, _label in chain),
            stopped_at_multi,
        )


class _ShardScreenTask:
    """One shard's screening work: verdicts + memos + private charges."""

    __slots__ = ("items", "entries", "ctx", "counters", "verdicts")

    def __init__(
        self,
        store,
        parent_index,
        items: list[tuple[int, Update]],
        entries: list[tuple[int, object]],
        *,
        batched: bool,
    ) -> None:
        self.items = items
        self.entries = entries
        self.counters = CostCounters()
        read_view = _ShardReadView(store, self.counters)
        index_view = (
            _ShardIndexView(parent_index, store, self.counters)
            if parent_index is not None
            else None
        )
        self.ctx = PathContext(read_view, index_view, batched=batched)
        self.verdicts: dict[tuple[int, int], bool] = {}

    def run(self) -> None:
        for i, update in self.items:
            for j, entry in self.entries:
                self.verdicts[(i, j)] = entry.screen.relevant(
                    update, self.ctx
                )


class ParallelDispatcher(MaintenanceDispatcher):
    """A maintenance dispatcher with per-shard parallel screening.

    Drop-in for :class:`~repro.views.dispatcher.MaintenanceDispatcher`
    (same registration, batching, and subscription surface).  Over a
    plain :class:`~repro.gsdb.store.ObjectStore` — or with a single
    shard, a single worker, or a single-update batch — it degrades to
    the serial dispatcher.

    Attributes:
        workers: thread-pool width; tasks (one per non-empty shard) are
            independent, so this bounds concurrency without affecting
            any result (the determinism contract above).
        parallel_batches: batches that took the fan-out path.
    """

    def __init__(
        self,
        store: ObjectStore | ShardedStore,
        *,
        parent_index=None,
        subscribe: bool = False,
        workers: int = 4,
    ) -> None:
        super().__init__(
            store, parent_index=parent_index, subscribe=subscribe
        )
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.parallel_batches = 0

    # -- routing -------------------------------------------------------------

    def _shard_count(self) -> int:
        return getattr(self.store, "shard_count", 1)

    def _owner(self, update: Update) -> int:
        owner = getattr(self.store, "owner", None)
        return owner(update) if owner is not None else 0

    def _kernel_frames(self, updates: Sequence[Update]):
        """Cut one batch into per-shard delta frames.

        Each frame keeps its updates in intake order and remembers
        their *global* batch positions, so the kernel's verdicts merge
        back deterministically; frame-building and screen-mask charges
        land on the owning shard's counters (the same critical-path
        accounting the interpreted fan-out uses).  Frames are emitted
        in ascending shard order.
        """
        shards = self._shard_count()
        if shards <= 1:
            return super()._kernel_frames(updates)
        from repro.gsdb.delta import DeltaFrame

        by_shard: list[list[tuple[int, Update]]] = [
            [] for _ in range(shards)
        ]
        for i, update in enumerate(updates):
            by_shard[self._owner(update)].append((i, update))
        frames = []
        for shard, items in enumerate(by_shard):
            if not items:
                continue
            frames.append(
                DeltaFrame(
                    [update for _i, update in items],
                    self.store,
                    positions=[i for i, _update in items],
                    counters=self._shard_sink(shard),
                )
            )
        return frames

    # -- dispatch ------------------------------------------------------------

    def _dispatch(
        self, updates: Sequence[Update], *, batched: bool = False
    ) -> None:
        shards = self._shard_count()
        screened = [
            (j, entry)
            for j, entry in enumerate(self._entries)
            if entry.screen is not None
        ]
        if shards <= 1 or len(updates) <= 1 or not screened:
            super()._dispatch(updates, batched=batched)
            return
        # Phase 1: group by owning shard (intake order kept per shard)
        # and screen every (update, view) pair on the pool.
        by_shard: list[list[tuple[int, Update]]] = [[] for _ in range(shards)]
        for i, update in enumerate(updates):
            by_shard[self._owner(update)].append((i, update))
        tasks = [
            _ShardScreenTask(
                self.store,
                self.parent_index,
                items,
                screened,
                batched=batched,
            )
            for items in by_shard
        ]
        live = [task for task in tasks if task.items]
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(live))
        ) as pool:
            for future in [pool.submit(task.run) for task in live]:
                future.result()  # propagate screening errors
        # Phase 2: deterministic merge, ascending shard order.  Charges
        # go to the owning shard's counters (the critical-path model);
        # memos graft into the shared apply context (equal keys hold
        # equal values — all describe the same final state).
        context = PathContext(
            self.store, self.parent_index, batched=batched
        )
        verdicts: dict[tuple[int, int], bool] = {}
        for shard, task in enumerate(tasks):
            if not task.items:
                continue
            self._shard_sink(shard).add(task.counters)
            context._labels.update(task.ctx._labels)
            context._paths.update(task.ctx._paths)
            context._chains.update(task.ctx._chains)
            context._chain_sets.update(task.ctx._chain_sets)
            verdicts.update(task.verdicts)
        # Phase 3: serial apply in global intake order — observably the
        # serial dispatcher's schedule with screening answers prepaid.
        counters = self.store.counters
        for i, update in enumerate(updates):
            self.updates_dispatched += 1
            for j, entry in enumerate(self._entries):
                if entry.screen is not None and not verdicts[(i, j)]:
                    counters.updates_screened += 1
                    continue
                if entry.supports_context:
                    entry.maintainer.handle(update, context)
                else:
                    entry.maintainer.handle(update)
        self.parallel_batches += 1

    def _shard_sink(self, shard: int) -> CostCounters:
        """Where shard *shard*'s screening charges accumulate."""
        shard_counters = getattr(self.store, "shard_counters", None)
        if shard_counters is not None:
            return shard_counters(shard)
        return self.store.counters


def critical_path_cost(store: ShardedStore) -> int:
    """The batch-cost model of one maintenance worker per shard: the
    busiest shard's base accesses (reads + scans + traversals).

    With per-shard charging (the sharded store's reads and the
    dispatcher's screening both land on the owning shard), total work
    is conserved across shard counts while the max shrinks — the E17
    scaling curve.
    """
    return max(
        shard.counters.total_base_accesses()
        for shard in store.shard_stores()
    )


__all__ = ["ParallelDispatcher", "critical_path_cost"]
