"""Algorithm 1: incremental maintenance of simple materialized views.

This is the paper's core contribution (Section 4.3).  Given a simple
view ``SELECT ROOT.sel_path X WHERE cond(X.cond_path)`` over a
tree-structured base, the maintainer reacts to each basic update:

``insert(N1, N2)``
    If ``sel_path.cond_path = path(ROOT,N1).label(N2).p`` for some path
    ``p``, let ``S = eval(N2, p, cond)``; for each witness ``X ∈ S``,
    ``V_insert(MV, MV.Y)`` where ``Y = ancestor(X, cond_path)``.

``delete(N1, N2)``
    Same decomposition; for each ``X ∈ S``: if ``p = p1.cond_path``
    (``Y`` lies inside the detached subtree) then ``V_delete``
    unconditionally, else re-evaluate ``eval(Y, cond_path, cond)`` on
    the post-update base and delete only when no other derivation
    remains (the paper's non-unique-label caveat).

``modify(N, oldv, newv)``
    If ``path(ROOT,N) = sel_path.cond_path``, let
    ``Y = ancestor(N, cond_path)``; insert when ``cond(newv)``, delete
    when ``cond(oldv)`` held and no witness remains.

Deviations/extensions, both documented in DESIGN.md:

* **Value refresh** — delegates copy values (Section 3.2), so whenever a
  directly affected object is itself a view member, its delegate's
  value is refreshed.  Algorithm 1 as printed tracks membership only.
* **Views without a WHERE clause** (e.g. ``define view PROF as: SELECT
  ROOT.*.professor``'s constant-path analogue): membership is pure
  reachability; the witness set is ``N2.p`` itself.

The evaluation functions ``path()``, ``ancestor()`` and ``eval()`` are
exactly the ones the paper isolates because they may touch base data;
with a parent index they run in O(path length), without one they fall
back to root-down traversal (Section 4.4's cost discussion, measured in
experiment E8).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import MaintenanceError
from repro.gsdb.indexes import ParentIndex
from repro.gsdb.store import ObjectStore
from repro.gsdb.traversal import (
    ancestor_by_path,
    ancestor_via_root,
    chain_between,
    descendants,
    eval_path_condition,
    follow_path,
    path_between,
)
from repro.gsdb.updates import Delete, Insert, Modify, Update
from repro.paths.path import Path
from repro.views.materialized import MaterializedView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.views.dispatcher import PathContext


class SimpleViewMaintainer:
    """Incremental maintainer implementing the paper's Algorithm 1.

    Args:
        view: the materialized view to maintain.
        parent_index: the base store's inverse index; when None the
            maintainer uses root-down traversal for ``path()`` and
            ``ancestor()`` (the expensive case of Section 4.4).
        subscribe: when True, register with the base store so every
            applied update triggers maintenance automatically.  Note
            listener order matters: construct the parent index *before*
            the maintainer so the index is up to date when maintenance
            runs (stores notify listeners in subscription order).
    """

    def __init__(
        self,
        view: MaterializedView,
        *,
        parent_index: ParentIndex | None = None,
        subscribe: bool = False,
    ) -> None:
        view.definition.require_simple()
        self.view = view
        self.base: ObjectStore = view.base_store
        self.parent_index = parent_index
        if parent_index is not None and view.view_store is view.base_store:
            # Centralized case: the view object and its delegates live in
            # the base store; their edges are copies, not base structure.
            parent_index.ignore_view(view.oid)
        self.root = view.definition.entry
        self.sel_path: Path = view.definition.sel_path()
        self.cond_path: Path = view.definition.cond_path()
        self.full_path: Path = self.sel_path + self.cond_path
        self.has_condition = view.definition.has_condition
        self.cond = view.definition.predicate()
        self.updates_processed = 0
        self._context: "PathContext | None" = None
        if subscribe:
            self.base.subscribe(self.handle)

    # -- dispatch ---------------------------------------------------------

    def handle(
        self, update: Update, context: "PathContext | None" = None
    ) -> None:
        """Process one already-applied base update.

        *context* is an optional per-update
        :class:`~repro.views.dispatcher.PathContext` supplied by a
        dispatcher so ``path(ROOT, N1)`` / ancestor chains computed for
        one view are reused by every other view handling the same
        update.
        """
        self.updates_processed += 1
        self._context = context
        try:
            if isinstance(update, Insert):
                self._on_insert(update)
            elif isinstance(update, Delete):
                self._on_delete(update)
            elif isinstance(update, Modify):
                self._on_modify(update)
            else:  # pragma: no cover - defensive
                raise MaintenanceError(f"unknown update: {update!r}")
        finally:
            self._context = None

    def handle_all(self, updates) -> None:
        for update in updates:
            self.handle(update)

    # -- the paper's evaluation functions ------------------------------------

    def _path_from_root(self, oid: str) -> Path | None:
        """``path(ROOT, N)`` — None when N is not reachable from ROOT."""
        if self._context is not None:
            labels = self._context.path_between(self.root, oid)
        else:
            labels = path_between(
                self.base, self.root, oid, parent_index=self.parent_index
            )
        if labels is None:
            return None
        return Path(labels)

    def _ancestor(self, oid: str, path: Path, *, search_root: str) -> str | None:
        """``ancestor(N, p)``.

        With a parent index, walks upward; otherwise searches downward
        from *search_root* (ROOT in general, or the detached subtree's
        root for the delete case).
        """
        if self.parent_index is not None:
            return ancestor_by_path(self.base, oid, path.labels, self.parent_index)
        return ancestor_via_root(self.base, search_root, oid, path.labels)

    def _eval(self, oid: str, path: Path) -> set[str]:
        """``eval(N, p, cond)`` — witnesses of the condition under N."""
        return eval_path_condition(self.base, oid, path.labels, self.cond)

    # -- insert -------------------------------------------------------------

    def _on_insert(self, update: Insert) -> None:
        try:
            self._membership_after_insert(update)
        finally:
            self._refresh_affected(update.parent)

    def _membership_after_insert(self, update: Insert) -> None:
        remainder = self._decompose(update.parent, update.child)
        if remainder is None:
            return
        child = update.child
        if not self.has_condition:
            for member in sorted(follow_path(self.base, child, remainder.labels)):
                self.view.v_insert(member)
            return
        witnesses = self._eval(child, remainder)
        targets: set[str] = set()
        for witness in witnesses:
            ancestor = self._ancestor(
                witness, self.cond_path, search_root=self.root
            )
            if ancestor is not None:
                targets.add(ancestor)
        for target in sorted(targets):
            self.view.v_insert(target)

    # -- delete -------------------------------------------------------------

    def _on_delete(self, update: Delete) -> None:
        try:
            self._membership_after_delete(update)
        finally:
            self._refresh_affected(update.parent)

    def _membership_after_delete(self, update: Delete) -> None:
        # Under batched dispatch the base is already at the *final*
        # state, where later batch updates may have detached or moved
        # parts of the subtree this delete cut off — witness-driven
        # discovery then under-approximates the members to evict.
        # Complete discovery instead: every member stranded at or below
        # N2 leaves the view (exact on trees — membership requires
        # reachability from ROOT).  Members moved elsewhere mid-batch
        # are re-decided by their own updates, dispatched in order.
        batched = self._context is not None and self._context.batched
        if batched:
            self._purge_members_below(update.child)
        remainder = self._decompose(update.parent, update.child)
        if remainder is None:
            return
        child = update.child
        if not self.has_condition:
            if batched:
                return  # purge above is a superset of N2.p
            # Tree base: everything on N2.p lost its only derivation.
            for member in sorted(follow_path(self.base, child, remainder.labels)):
                self.view.v_delete(member)
            return
        inside_subtree = remainder.endswith(self.cond_path)
        if inside_subtree:
            if batched:
                return  # Y is inside the subtree; the purge covered it
            # Paper: p = p1.cond_path — Y is in the detached subtree and
            # unconditionally leaves the view.
            witnesses = self._eval(child, remainder)
            targets: set[str] = set()
            for witness in witnesses:
                ancestor = self._ancestor(
                    witness, self.cond_path, search_root=child
                )
                if ancestor is not None:
                    targets.add(ancestor)
            for target in sorted(targets):
                self.view.v_delete(target)
            return
        # Y survives above the deleted edge; other descendants may still
        # witness the condition (non-unique labels), so re-evaluate.
        if not batched:
            # No witness was lost => Y unaffected.  Only sound when the
            # subtree still is as it was the moment the edge was cut.
            if not self._eval(child, remainder):
                return
        target = self._surviving_ancestor(update.parent)
        if target is None:
            return
        if not self._eval(target, self.cond_path):
            self.view.v_delete(target)

    def _purge_members_below(self, child_oid: str) -> None:
        """Evict every view member in *child_oid*'s current subtree.

        A batch kernel may have precomputed the subtree from one
        snapshot sweep (shared across views through
        :meth:`~repro.views.dispatcher.PathContext.descendants_of`);
        otherwise walk the base interpreted."""
        if self.view.contains(child_oid):
            self.view.v_delete(child_oid)
        lookup = getattr(self._context, "descendants_of", None)
        subtree = lookup(child_oid) if lookup is not None else None
        if subtree is None:
            subtree = descendants(self.base, child_oid)
        for oid in sorted(subtree):
            if self.view.contains(oid):
                self.view.v_delete(oid)

    def _surviving_ancestor(self, parent_oid: str) -> str | None:
        """The Y above the deleted edge: the node at depth |sel_path| on
        the ROOT → N1 chain (N1 remains reachable after the delete)."""
        if self._context is not None:
            chain = self._context.chain_between(self.root, parent_oid)
        else:
            chain = chain_between(
                self.base, self.root, parent_oid, parent_index=self.parent_index
            )
        # chain = [ROOT, ..., N1] has depth(N1)+1 entries; Y sits at
        # index |sel_path|, which exists iff |sel_path| <= depth(N1).
        if chain is None or len(self.sel_path) >= len(chain):
            return None
        return chain[len(self.sel_path)]

    # -- modify -------------------------------------------------------------

    def _on_modify(self, update: Modify) -> None:
        try:
            self._membership_after_modify(update)
        finally:
            self._refresh_affected(update.oid)

    def _membership_after_modify(self, update: Modify) -> None:
        if not self.has_condition:
            return  # membership is pure reachability; values irrelevant
        full = self._path_from_root(update.oid)
        if full is None or full != self.full_path:
            return
        target = self._ancestor(
            update.oid, self.cond_path, search_root=self.root
        )
        if target is None:
            return
        if self.cond(update.new_value):
            self.view.v_insert(target)
        elif self.cond(update.old_value):
            if not self._eval(target, self.cond_path):
                self.view.v_delete(target)

    # -- shared helpers -------------------------------------------------------

    def _decompose(self, parent_oid: str, child_oid: str) -> Path | None:
        """Match ``sel_path.cond_path = path(ROOT,N1).label(N2).p``.

        Returns the remainder ``p``, or None when the update cannot
        affect membership (N1 unreachable, or labels do not line up).
        """
        prefix = self._path_from_root(parent_oid)
        if prefix is None:
            return None
        child = self.base.get_optional(child_oid)
        if child is None:
            return None
        return self.full_path.strip_prefix(prefix + Path((child.label,)))

    def _refresh_affected(self, oid: str) -> None:
        """Value-refresh extension: keep member delegates true copies."""
        if self.view.contains(oid):
            self.view.refresh(oid)
