"""Virtual views (paper Section 3.1).

A virtual view is "the result of a query": an object ``<V, view, set,
value(V)>`` whose value is the defining query's answer.  Virtual views
are not stored copies — each evaluation reflects the current base state
— but the view *object* can be registered as a database so follow-on
queries can use it as an entry point or scope (``ANS INT VJ``), exactly
as the paper's Examples 3 and 3.3–3.4 do.
"""

from __future__ import annotations

from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.object import Object
from repro.gsdb.store import ObjectStore
from repro.views.definition import ViewDefinition
from repro.views.recompute import compute_view_members

#: Label of virtual view objects (Example 3 uses ``view``).
VIRTUAL_VIEW_LABEL = "view"


class VirtualView:
    """A named virtual view over a base store.

    The view object is created in the base store (virtual views have no
    separate storage) and registered in the registry under the view's
    name.  :meth:`refresh` re-evaluates the definition; queries that use
    the view should refresh first (or use a
    :class:`~repro.views.catalog.ViewCatalog`, which refreshes
    automatically).
    """

    def __init__(
        self,
        definition: ViewDefinition,
        registry: DatabaseRegistry,
        *,
        auto_refresh: bool = True,
    ) -> None:
        self.definition = definition
        self.registry = registry
        self.store: ObjectStore = registry.store
        self.view_object = Object.set_object(
            definition.name, VIRTUAL_VIEW_LABEL
        )
        previous = self.store.check_references
        self.store.check_references = False
        try:
            self.store.add_object(self.view_object)
        finally:
            self.store.check_references = previous
        registry.register(definition.name, definition.name)
        if auto_refresh:
            self.refresh()

    @property
    def oid(self) -> str:
        return self.definition.name

    def refresh(self) -> set[str]:
        """Re-evaluate the definition and update ``value(V)``.

        Returns the new member set.
        """
        members = compute_view_members(
            self.definition, self.store, registry=self.registry
        )
        self.view_object.value = set(members)
        return members

    def members(self) -> set[str]:
        """Current ``value(V)`` (as of the last refresh)."""
        return set(self.view_object.children())

    def contains(self, oid: str) -> bool:
        return oid in self.view_object.children()

    def __len__(self) -> int:
        return len(self.view_object.children())

    def __repr__(self) -> str:
        return f"VirtualView({self.oid!r}, members={len(self)})"
