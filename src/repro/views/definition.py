"""View definitions and their classification.

A view is defined by a query (paper Section 3.1).  The *simple views*
of Section 4.2 — the class Algorithm 1 maintains — are the restriction

    define mview MV as: SELECT ROOT.sel_path X WHERE cond(X.cond_path)

where ``sel_path`` and ``cond_path`` are constant paths (no wildcards)
and the base below ROOT is a tree.  :class:`ViewDefinition` normalizes a
parsed query into the pieces the maintainers consume and classifies it:

* ``is_simple`` — constant paths, at most one comparison condition, no
  scope clauses: handled by
  :class:`~repro.views.maintenance.SimpleViewMaintainer`.
* ``is_extended`` — conjunctions of comparisons and/or wildcard paths:
  handled by :class:`~repro.views.extended.ExtendedViewMaintainer`.
* anything else is maintainable only by recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ViewDefinitionError
from repro.gsdb.object import AtomicValue
from repro.paths.expression import PathExpression
from repro.paths.path import EMPTY_PATH, Path
from repro.query.ast import And, Comparison, Condition, Query
from repro.query.parser import ViewDefinitionStatement, parse_statement


@dataclass(frozen=True)
class ViewDefinition:
    """A normalized view definition.

    Attributes:
        name: the view's name — also used as the view object's OID, so
            delegate OIDs read like the paper's (``MVJ.P1``).
        query: the defining query.
        materialized: ``define mview`` vs ``define view``.
    """

    name: str
    query: Query
    materialized: bool = True

    @classmethod
    def parse(cls, text: str) -> "ViewDefinition":
        """Parse a ``define [m]view NAME as: SELECT ...`` statement."""
        statement = parse_statement(text)
        if not isinstance(statement, ViewDefinitionStatement):
            raise ViewDefinitionError(
                f"expected a view definition, got a bare query: {text!r}"
            )
        return cls(
            name=statement.name,
            query=statement.query,
            materialized=statement.materialized,
        )

    # -- classification ----------------------------------------------------

    @property
    def entry(self) -> str:
        """The ROOT entry point of the defining query."""
        return self.query.entry

    @property
    def select_expression(self) -> PathExpression:
        return self.query.select_path

    @property
    def condition(self) -> Condition | None:
        return self.query.condition

    @property
    def is_simple(self) -> bool:
        """True for the Section 4.2 class maintained by Algorithm 1."""
        query = self.query
        if query.within is not None or query.ans_int is not None:
            return False
        if not query.select_path.is_constant:
            return False
        if query.condition is None:
            return True
        return (
            isinstance(query.condition, Comparison)
            and query.condition.path.is_constant
        )

    @property
    def is_extended(self) -> bool:
        """True for the Section 6 relaxations our extended maintainer
        accepts: wildcard paths and/or conjunctions of comparisons (no
        scope clauses, no OR/NOT/EXISTS)."""
        query = self.query
        if query.within is not None or query.ans_int is not None:
            return False
        condition = query.condition
        if condition is None or isinstance(condition, Comparison):
            return True
        return isinstance(condition, And) and all(
            isinstance(operand, Comparison) for operand in condition.operands
        )

    # -- simple-view accessors (Algorithm 1 inputs) --------------------------

    def sel_path(self) -> Path:
        """The constant ``sel_path`` (simple views only)."""
        if not self.query.select_path.is_constant:
            raise ViewDefinitionError(
                f"view {self.name!r} has a non-constant select path"
            )
        return self.query.select_path.as_path()

    def cond_path(self) -> Path:
        """The constant ``cond_path`` — empty when there is no WHERE."""
        condition = self.query.condition
        if condition is None:
            return EMPTY_PATH
        if not isinstance(condition, Comparison):
            raise ViewDefinitionError(
                f"view {self.name!r} has a compound condition"
            )
        if not condition.path.is_constant:
            raise ViewDefinitionError(
                f"view {self.name!r} has a non-constant condition path"
            )
        return condition.path.as_path()

    def predicate(self) -> Callable[[AtomicValue], bool]:
        """The value predicate ``cond()`` (constant-true when no WHERE).

        Note: with no WHERE clause the "condition" accepts *objects of
        any kind*, handled specially by the maintainers (members are the
        reached objects themselves, not atomic witnesses).
        """
        condition = self.query.condition
        if condition is None:
            return lambda _value: True
        if not isinstance(condition, Comparison):
            raise ViewDefinitionError(
                f"view {self.name!r} has a compound condition"
            )
        return condition.predicate()

    @property
    def has_condition(self) -> bool:
        return self.query.condition is not None

    def full_path(self) -> Path:
        """``sel_path.cond_path`` — the concatenation Algorithm 1 matches
        against ``path(ROOT, N1).label(N2).p``."""
        return self.sel_path() + self.cond_path()

    def full_expression(self) -> PathExpression:
        """``sel_path_exp . cond_path_exp`` for extended views."""
        condition = self.query.condition
        parts = [self.query.select_path]
        if isinstance(condition, Comparison):
            parts.append(condition.path)
        result = parts[0]
        for part in parts[1:]:
            result = result.concat(part)
        return result

    def require_simple(self) -> None:
        """Raise unless this definition is in the Algorithm 1 class."""
        if not self.is_simple:
            raise ViewDefinitionError(
                f"view {self.name!r} is not a simple view "
                f"(paper Section 4.2): {self.query}"
            )

    def __str__(self) -> str:
        keyword = "mview" if self.materialized else "view"
        return f"define {keyword} {self.name} as: {self.query}"
