"""Views over GSDBs — the paper's primary contribution (Sections 3–4, 6).

* :class:`~repro.views.definition.ViewDefinition` — parsed definitions
  and classification (simple / extended).
* :class:`~repro.views.virtual.VirtualView` — query-result views.
* :class:`~repro.views.materialized.MaterializedView` — delegates with
  semantic OIDs, swizzling, edits.
* :class:`~repro.views.maintenance.SimpleViewMaintainer` — Algorithm 1.
* :class:`~repro.views.dispatcher.MaintenanceDispatcher` — the shared
  multi-view dispatcher (path sharing, screening, batch coalescing).
* :class:`~repro.views.extended.ExtendedViewMaintainer` — wildcard and
  conjunctive views on trees (Section 6 relaxation 1).
* :class:`~repro.views.dag.DagCountingMaintainer` — DAG bases via
  derivation counting (Section 6 relaxation 2).
* :class:`~repro.views.cluster.ViewCluster` — shared delegates.
* :class:`~repro.views.catalog.ViewCatalog` — the high-level façade.
"""

from repro.views.aggregate import AggregateKind, AggregateView
from repro.views.catalog import ViewCatalog
from repro.views.cluster import ClusterMemberView, ViewCluster
from repro.views.multipath import MultiPathView
from repro.views.partial import PartialMaterializedView
from repro.views.consistency import (
    ConsistencyReport,
    assert_consistent,
    check_consistency,
)
from repro.views.dag import DagCountingMaintainer
from repro.views.definition import ViewDefinition
from repro.views.dispatcher import (
    MaintenanceDispatcher,
    PathContext,
    coalesce_updates,
)
from repro.views.extended import ExtendedViewMaintainer
from repro.views.maintenance import SimpleViewMaintainer
from repro.views.materialized import MaterializedView, SwizzleMode
from repro.views.parallel import ParallelDispatcher, critical_path_cost
from repro.views.recompute import (
    compute_view_members,
    populate_view,
    recompute_view,
)
from repro.views.virtual import VirtualView

__all__ = [
    "AggregateKind",
    "AggregateView",
    "ClusterMemberView",
    "MultiPathView",
    "PartialMaterializedView",
    "ConsistencyReport",
    "DagCountingMaintainer",
    "ExtendedViewMaintainer",
    "MaintenanceDispatcher",
    "MaterializedView",
    "ParallelDispatcher",
    "PathContext",
    "SimpleViewMaintainer",
    "SwizzleMode",
    "ViewCatalog",
    "ViewCluster",
    "ViewDefinition",
    "VirtualView",
    "assert_consistent",
    "check_consistency",
    "coalesce_updates",
    "compute_view_members",
    "critical_path_cost",
    "populate_view",
    "recompute_view",
]
