"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Sub-hierarchies mirror the major
subsystems: the object store, the path machinery, the query language, the
view layer, the relational substrate, and the warehouse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Object store / data model
# ---------------------------------------------------------------------------


class GSDBError(ReproError):
    """Base class for object-model and store errors."""


class UnknownObjectError(GSDBError, KeyError):
    """An OID was referenced that is not present in the store."""

    def __init__(self, oid: str) -> None:
        super().__init__(oid)
        self.oid = oid

    def __str__(self) -> str:  # KeyError quotes its arg; we want a message.
        return f"unknown object: {self.oid!r}"


class DuplicateObjectError(GSDBError):
    """An object with the same OID already exists in the store."""

    def __init__(self, oid: str) -> None:
        super().__init__(f"duplicate object: {oid!r}")
        self.oid = oid


class TypeMismatchError(GSDBError):
    """An operation required a set (or atomic) object but got the other."""


class InvalidUpdateError(GSDBError):
    """A basic update (insert/delete/modify) was not applicable."""


class IntegrityError(GSDBError):
    """A structural invariant of the database was violated.

    Raised by :mod:`repro.gsdb.validation` when, e.g., a set value
    references a missing OID, or a base claimed to be a tree contains a
    node with two parents.
    """


class PinnedEpochError(GSDBError):
    """A retained snapshot epoch was reclaimed while readers still pin it.

    Raised by :meth:`~repro.gsdb.columnar.SnapshotRetention.reclaim`:
    reclaiming a pinned epoch would pull an immutable view out from
    under a concurrent reader, so it is refused outright.  Superseded
    epochs with live pins are instead retained past the ring's capacity
    and reclaimed lazily once their last pin drops.
    """

    def __init__(self, seq: int, pins: int) -> None:
        super().__init__(
            f"epoch publication {seq} still has {pins} reader pin(s)"
        )
        self.seq = seq
        self.pins = pins


# ---------------------------------------------------------------------------
# Paths
# ---------------------------------------------------------------------------


class PathError(ReproError):
    """Base class for path and path-expression errors."""


class PathSyntaxError(PathError):
    """A path or path expression string could not be parsed."""

    def __init__(self, text: str, position: int, message: str) -> None:
        super().__init__(f"{message} at position {position} in {text!r}")
        self.text = text
        self.position = position


# ---------------------------------------------------------------------------
# Query language
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for query-language errors."""


class QuerySyntaxError(QueryError):
    """A query string could not be tokenized or parsed."""

    def __init__(self, text: str, position: int, message: str) -> None:
        super().__init__(f"{message} at position {position} in {text!r}")
        self.text = text
        self.position = position


class QueryEvaluationError(QueryError):
    """A well-formed query failed during evaluation."""


class UnknownDatabaseError(QueryError):
    """A ``WITHIN`` or ``ANS INT`` clause named an unregistered database."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown database: {name!r}")
        self.name = name


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------


class ViewError(ReproError):
    """Base class for view-layer errors."""


class ViewDefinitionError(ViewError):
    """A view definition is malformed or unsupported by a maintainer."""


class MaintenanceError(ViewError):
    """Incremental maintenance failed or detected an inconsistency."""


class ViewConsistencyError(MaintenanceError):
    """A maintained view diverged from its recomputed reference."""


# ---------------------------------------------------------------------------
# Relational substrate
# ---------------------------------------------------------------------------


class RelationalError(ReproError):
    """Base class for relational-substrate errors."""


class SchemaError(RelationalError):
    """A tuple did not match its table schema."""


# ---------------------------------------------------------------------------
# Warehouse
# ---------------------------------------------------------------------------


class WarehouseError(ReproError):
    """Base class for warehouse-architecture errors."""


class CapabilityError(WarehouseError):
    """A source was asked a query beyond its declared capability."""


class ProtocolError(WarehouseError):
    """A malformed or out-of-order warehouse protocol message."""


class SourceUnavailableError(WarehouseError):
    """A source could not be reached (crashed or partitioned).

    Raised by :meth:`~repro.warehouse.source.Source.serve` while the
    source is down, and re-raised by
    :meth:`~repro.warehouse.wrapper.SourceLink.ask` once its retry
    budget is exhausted.
    """

    def __init__(self, source_id: str) -> None:
        super().__init__(f"source {source_id!r} is unavailable")
        self.source_id = source_id


class QueryTimeoutError(WarehouseError):
    """A source query timed out: the source may have served it, but the
    answer was lost in flight (the timeout-then-late-reply race).  The
    query is read-only, so retrying is always safe."""


class QuiescenceError(WarehouseError):
    """The quiescence oracle found a maintained view that differs from
    fresh recomputation after the update channel drained."""
