"""Mixed read/update workloads for the serving layer (experiment E16).

Drives a :class:`~repro.serving.server.QueryServer` with an interleaved
stream of reads (drawn from a deterministic query pool over a layered
tree) and valid random updates (:class:`~repro.workloads.updates.
UpdateStream`), auditing served answers against fresh uncached
evaluation with the byte-equality oracle
(:func:`repro.chaos.oracle.audit_serving`) along the way.  Shared by
benchmark E16, the ``bench-serve`` shell command, and the CI smoke job.

Hit/miss/invalidation statistics are accumulated per workload step so
oracle audits (which read through the same cache) do not distort them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.oracle import audit_serving
from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.indexes import LabelIndex, ParentIndex
from repro.serving.server import QueryServer
from repro.workloads.generators import TreeSpec, layered_tree
from repro.workloads.updates import UpdateMix, UpdateStream


def build_query_pool(
    root: str,
    spec: TreeSpec,
    *,
    conditions: bool = True,
    store=None,
) -> list[str]:
    """A deterministic pool of queries over a layered tree.

    One unconditioned prefix query per depth from the root, plus
    (optionally) threshold conditions over the remaining suffix path.
    With *store*, subtree-entry queries (entered at each of the root's
    children) join the pool — those exercise the invalidator's
    reachability screen, since updates in one subtree must not evict
    another subtree's answers.
    """
    pool: list[str] = []
    for k in range(1, spec.depth + 1):
        path = ".".join(spec.labels[:k])
        pool.append(f"SELECT {root}.{path} X")
    if store is not None and spec.depth >= 2:
        deep = ".".join(spec.labels[1:])
        for entry in sorted(store.get(root).children()):
            pool.append(f"SELECT {entry}.{deep} X")
            if conditions and spec.depth >= 3:
                head = spec.labels[1]
                rest = ".".join(spec.labels[2:])
                pool.append(
                    f"SELECT {entry}.{head} X WHERE X.{rest} > 50"
                )
    if conditions:
        for k in range(1, spec.depth):
            path = ".".join(spec.labels[:k])
            rest = ".".join(spec.labels[k:])
            for threshold in (25, 50, 75):
                pool.append(
                    f"SELECT {root}.{path} X WHERE X.{rest} > {threshold}"
                )
    return pool


@dataclass
class ServingRunResult:
    """Outcome of one mixed read/update serving run."""

    steps: int
    reads: int
    updates: int
    read_hits: int
    read_misses: int
    evictions: int
    invalidations: int
    oracle_checks: int
    oracle_mismatches: int
    stale_reads: list[str] = field(default_factory=list)
    per_update_invalidations: list[int] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    @property
    def mean_invalidations_per_update(self) -> float:
        if not self.per_update_invalidations:
            return 0.0
        return sum(self.per_update_invalidations) / len(
            self.per_update_invalidations
        )


def run_serving_workload(
    *,
    seed: int = 0,
    steps: int = 400,
    read_ratio: float = 0.9,
    cache_size: int = 64,
    spec: TreeSpec | None = None,
    use_frontier: bool = True,
    with_label_index: bool = True,
    audit_every: int = 50,
    mix: UpdateMix | None = None,
    skew: float = 0.0,
    server: QueryServer | None = None,
    pool: list[str] | None = None,
) -> ServingRunResult:
    """Run an interleaved read/update stream against a query server.

    With the default arguments the base is a fresh layered tree and the
    server is built over it (parent + label index); pass *server* and
    *pool* to reuse an environment.  ``audit_every`` > 0 re-audits the
    whole pool every that many steps (and once at the end) — a sound
    invalidator yields zero mismatches.  ``skew`` > 0 draws reads with
    Zipf-like popularity (query *i* weighted ``(i+1)**-skew``) instead
    of uniformly — the usual shape of read-heavy serving traffic.
    """
    protected: set[str] = set()
    if server is None:
        spec = spec if spec is not None else TreeSpec(depth=4, seed=seed + 17)
        store, root = layered_tree(spec)
        registry = DatabaseRegistry(store)
        parent_index = ParentIndex(store)
        label_index = LabelIndex(store) if with_label_index else None
        server = QueryServer(
            registry,
            parent_index=parent_index,
            label_index=label_index,
            cache_size=cache_size,
            use_frontier=use_frontier,
        )
        protected.add(root)
        if pool is None:
            pool = build_query_pool(root, spec, store=store)
    elif pool is None:
        raise ValueError("a reused server needs an explicit query pool")
    store = server.store
    counters = store.counters
    protected |= server.registry.grouping_oids()
    stream = UpdateStream(
        store,
        seed=seed + 1,
        mix=mix if mix is not None else UpdateMix(),
        protected=frozenset(protected),
        protected_prefixes=("ANS",),
    )
    rng = random.Random(seed)
    weights = [(i + 1) ** -skew for i in range(len(pool))]
    result = ServingRunResult(
        steps=0,
        reads=0,
        updates=0,
        read_hits=0,
        read_misses=0,
        evictions=0,
        invalidations=0,
        oracle_checks=0,
        oracle_mismatches=0,
    )

    def audit() -> None:
        for verdict in audit_serving(server, pool):
            result.oracle_checks += 1
            if not verdict.consistent:
                result.oracle_mismatches += 1
                result.stale_reads.append(verdict.describe())

    for step in range(steps):
        result.steps += 1
        if rng.random() < read_ratio:
            hits_before = counters.query_cache_hits
            misses_before = counters.query_cache_misses
            evictions_before = counters.query_cache_evictions
            server.evaluate_oids(rng.choices(pool, weights=weights)[0])
            result.reads += 1
            result.read_hits += counters.query_cache_hits - hits_before
            result.read_misses += (
                counters.query_cache_misses - misses_before
            )
            result.evictions += (
                counters.query_cache_evictions - evictions_before
            )
        else:
            invalidations_before = counters.query_cache_invalidations
            evictions_before = counters.query_cache_evictions
            if stream.step() is not None:
                result.updates += 1
                fired = (
                    counters.query_cache_invalidations
                    - invalidations_before
                )
                result.invalidations += fired
                result.per_update_invalidations.append(fired)
                result.evictions += (
                    counters.query_cache_evictions - evictions_before
                )
        if audit_every and (step + 1) % audit_every == 0:
            audit()
    audit()
    return result
