"""The E14 multi-view workload, re-expressed as a reusable fixture.

Benchmark E14 introduced the shape — a 64-branch tree (``root -> s<b>
-> item<b>_<i> -> val<b>_<i>``), disjoint-prefix views (``SELECT
root.s<v>.item X WHERE X.val > 50``), and a deterministic round-robin
update stream — but kept it module-private.  Experiment E17 (sharded
scaling) and the parallel-dispatch determinism tests need the *same*
bytes over different stores (plain vs :class:`~repro.gsdb.sharding.
ShardedStore`) and different dispatchers (serial vs :class:`~repro.
views.parallel.ParallelDispatcher`, 1 vs N workers), so the fixture
lives here, parameterized by the store and dispatcher it drives.

Everything is seed-free and hash-order-free: object placement, update
order, and values derive from arithmetic on loop indices only, so two
runs agree byte-for-byte regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from typing import Sequence

from repro.gsdb.store import ObjectStore
from repro.views import (
    MaterializedView,
    SimpleViewMaintainer,
    ViewDefinition,
    check_consistency,
    populate_view,
)

#: The E14 constants — shared so E17 measures the workload E14 defined.
BRANCHES = 64
ITEMS = 8
UPDATES = 256
VIEWS = 32


def branch_value(branch: int, item: int) -> int:
    """The deterministic seed value of ``val<branch>_<item>``."""
    return (branch * 13 + item * 37) % 100


def build_store(store=None, *, branches: int = BRANCHES, items: int = ITEMS):
    """Populate *store* (default: a fresh :class:`ObjectStore`) with the
    E14 tree and return it.  Works over any store with ``add_tree``."""
    if store is None:
        store = ObjectStore()
    branch_specs = []
    for b in range(branches):
        item_specs = [
            (
                f"item{b}_{i}",
                "item",
                [(f"val{b}_{i}", "val", branch_value(b, i))],
            )
            for i in range(items)
        ]
        branch_specs.append((f"s{b}", f"s{b}", item_specs))
    store.add_tree(("root", "root", branch_specs))
    return store


def definition_text(view: int) -> str:
    """The disjoint-prefix definition of view number *view*."""
    return (
        f"define mview V{view} as: "
        f"SELECT root.s{view}.item X WHERE X.val > 50"
    )


def build_views(
    store,
    nviews: int = VIEWS,
    *,
    parent_index=None,
    dispatcher=None,
) -> list[MaterializedView]:
    """*nviews* maintained views over *store*.

    With a *dispatcher*, maintainers register there (screened, shared
    path context); without one, each subscribes to the store directly.
    """
    views = []
    for v in range(nviews):
        definition = ViewDefinition.parse(definition_text(v))
        view = MaterializedView(definition, store, ObjectStore())
        populate_view(view)
        maintainer = SimpleViewMaintainer(
            view, parent_index=parent_index, subscribe=(dispatcher is None)
        )
        if dispatcher is not None:
            dispatcher.register(maintainer)
        views.append(view)
    return views


def run_stream(
    store,
    *,
    updates: int = UPDATES,
    branches: int = BRANCHES,
    items: int = ITEMS,
    dispatcher=None,
    batch_size: int | None = None,
) -> None:
    """The E14 update stream: groups of four per branch — two modifies
    on the same atom (the second meets a warm chain cache), then item
    insert/delete churn (which clears it).

    With *batch_size* and a *dispatcher*, updates flow through
    ``dispatcher.batch()`` in fixed-size chunks (coalesced, and fanned
    out per shard when the dispatcher is parallel); otherwise each
    update dispatches as it applies.
    """

    def step(k: int) -> None:
        b = (k // 4) % branches
        i = (k // (4 * branches)) % items
        if k % 4 < 2:
            store.modify_value(f"val{b}_{i}", (k * 7) % 100)
        elif k % 4 == 2:
            store.add_set(f"extra{k}", "item")
            store.add_atomic(f"extraval{k}", "val", 75)
            store.insert_edge(f"extra{k}", f"extraval{k}")
            store.insert_edge(f"s{b}", f"extra{k}")
        else:
            store.delete_edge(f"s{b}", f"extra{k - 1}")

    if batch_size is None or dispatcher is None:
        for k in range(updates):
            step(k)
        return
    start = 0
    while start < updates:
        with dispatcher.batch():
            for k in range(start, min(start + batch_size, updates)):
                step(k)
        start += batch_size


def view_extents(views: Sequence[MaterializedView]) -> dict[str, frozenset[str]]:
    """Name -> member OIDs, for byte-equality across runs."""
    return {
        view.definition.name: frozenset(view.members()) for view in views
    }


def audit_views(views: Sequence[MaterializedView]) -> list[str]:
    """Recompute every view; returns the failing reports' descriptions
    (empty means all consistent)."""
    failures = []
    for view in views:
        report = check_consistency(view)
        if not report.ok:
            failures.append(f"{view.definition.name}: {report.describe()}")
    return failures


__all__ = [
    "BRANCHES",
    "ITEMS",
    "UPDATES",
    "VIEWS",
    "audit_views",
    "branch_value",
    "build_store",
    "build_views",
    "definition_text",
    "run_stream",
    "view_extents",
]
