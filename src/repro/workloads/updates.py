"""Seeded random update streams over a live store.

The maintenance experiments and the hypothesis property tests need
streams of *valid* basic updates (paper Section 4.1) against an
evolving base.  :class:`UpdateStream` generates them, optionally
preserving tree shape (Algorithm 1's precondition) and optionally
keeping a set of protected OIDs (roots, database objects) untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


from repro.gsdb.store import ObjectStore
from repro.gsdb.updates import Delete, Insert, Update


@dataclass
class UpdateMix:
    """Relative weights of the three basic update kinds."""

    insert: float = 1.0
    delete: float = 1.0
    modify: float = 2.0


@dataclass
class UpdateStream:
    """Generates and applies random valid updates.

    Args:
        store: the live base store.
        seed: RNG seed.
        mix: kind weights.
        preserve_tree: only generate inserts whose child has no current
            parent (keeps a tree base a tree).  Requires tracking, so
            the stream maintains its own parent census from the log.
        protected: OIDs never chosen as update subjects (e.g. the root).
        protected_prefixes: OID prefixes never chosen — pass a view's
            OID + "." to shield its delegates when views live in the
            same store as the base.
        labels_for_new: labels for freshly created atomic objects.
        value_range: value range for new/modified atomics.
    """

    store: ObjectStore
    seed: int = 42
    mix: UpdateMix = field(default_factory=UpdateMix)
    preserve_tree: bool = True
    protected: frozenset[str] = frozenset()
    protected_prefixes: tuple[str, ...] = ()
    labels_for_new: tuple[str, ...] = ("age", "name", "score")
    value_range: tuple[int, int] = (0, 100)

    def _is_protected(self, oid: str) -> bool:
        return oid in self.protected or any(
            oid.startswith(prefix) for prefix in self.protected_prefixes
        )

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._fresh = 0
        self._parents: dict[str, set[str]] = {}
        for oid in self.store.oids():
            obj = self.store.get_optional(oid)
            if obj is not None and obj.is_set:
                for child in obj.children():
                    self._parents.setdefault(child, set()).add(oid)

    # -- census maintenance -----------------------------------------------------

    def _note(self, update: Update) -> None:
        if isinstance(update, Insert):
            self._parents.setdefault(update.child, set()).add(update.parent)
        elif isinstance(update, Delete):
            parents = self._parents.get(update.child)
            if parents is not None:
                parents.discard(update.parent)

    # -- candidate pools -----------------------------------------------------------

    # Candidate pools use store.peek(): workload *generation* must not
    # charge the cost counters the experiments measure.

    def _set_oids(self) -> list[str]:
        return [
            oid
            for oid in self.store.oids()
            if (obj := self.store.peek(oid)) is not None
            and obj.is_set
            and not self._is_protected(oid)
        ]

    def _atomic_oids(self) -> list[str]:
        return [
            oid
            for oid in self.store.oids()
            if (obj := self.store.peek(oid)) is not None
            and obj.is_atomic
            and not self._is_protected(oid)
        ]

    def _edges(self) -> list[tuple[str, str]]:
        edges = []
        for oid in self.store.oids():
            if self._is_protected(oid):
                continue
            obj = self.store.peek(oid)
            if obj is not None and obj.is_set:
                for child in obj.sorted_children():
                    edges.append((oid, child))
        return edges

    # -- generation --------------------------------------------------------------------

    def step(self) -> Update | None:
        """Generate and apply one random update; None if impossible."""
        weights = [self.mix.insert, self.mix.delete, self.mix.modify]
        kinds = ["insert", "delete", "modify"]
        for _ in range(8):  # retry on infeasible picks
            kind = self._rng.choices(kinds, weights=weights)[0]
            update = getattr(self, f"_try_{kind}")()
            if update is not None:
                self._note(update)
                return update
        return None

    def run(self, count: int) -> list[Update]:
        """Apply up to *count* updates; returns those applied."""
        applied = []
        for _ in range(count):
            update = self.step()
            if update is None:
                break
            applied.append(update)
        return applied

    # -- per-kind attempts ----------------------------------------------------------------

    def _try_insert(self) -> Update | None:
        parents = self._set_oids()
        if not parents:
            return None
        parent = self._rng.choice(parents)
        # Either create a fresh atomic child, or (when allowed) re-link
        # an existing orphan subtree.
        if not self.preserve_tree and self._rng.random() < 0.3:
            orphanable = [
                oid
                for oid in self.store.oids()
                if not self._parents.get(oid) and oid != parent
                and not self._is_protected(oid)
            ]
            if orphanable:
                child = self._rng.choice(orphanable)
                parent_obj = self.store.peek(parent)
                if child not in parent_obj.children():
                    return self.store.insert_edge(parent, child)
        self._fresh += 1
        child = f"gen{self._fresh}"
        label = self._rng.choice(self.labels_for_new)
        self.store.add_atomic(
            child, label, self._rng.randint(*self.value_range)
        )
        return self.store.insert_edge(parent, child)

    def _try_delete(self) -> Update | None:
        edges = self._edges()
        if not edges:
            return None
        parent, child = self._rng.choice(edges)
        return self.store.delete_edge(parent, child)

    def _try_modify(self) -> Update | None:
        atoms = self._atomic_oids()
        candidates = [
            oid
            for oid in atoms
            if isinstance(self.store.peek(oid).atomic_value(), int)
        ]
        if not candidates:
            return None
        oid = self._rng.choice(candidates)
        return self.store.modify_value(
            oid, self._rng.randint(*self.value_range)
        )


def burst_of_tuples(
    store: ObjectStore,
    relation_oid: str,
    count: int,
    *,
    prefix: str,
    age_range: tuple[int, int] = (20, 60),
    seed: int = 7,
) -> list[str]:
    """Insert *count* Example 7 tuples under one relation (E2 workload)."""
    from repro.workloads.scenarios import insert_tuple

    rng = random.Random(seed)
    inserted = []
    for i in range(count):
        inserted.append(
            insert_tuple(
                store,
                relation_oid,
                f"{prefix}{i}",
                age=rng.randint(*age_range),
            )
        )
    return inserted
