"""Synthetic GSDB generators: random trees, DAGs, and layered bases.

Experiments E3/E8/E9 sweep structural parameters the paper's cost
discussion identifies as decisive: path depth, fan-out, view
selectivity, and sharing (tree vs DAG).  All generators are seeded and
fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.gsdb.store import ObjectStore


@dataclass(frozen=True)
class TreeSpec:
    """Parameters for :func:`layered_tree`."""

    depth: int = 3  # number of label levels below the root
    fanout: int = 3  # children per internal node
    value_range: tuple[int, int] = (0, 100)
    seed: int = 42

    @property
    def labels(self) -> tuple[str, ...]:
        """One label per level: ``l1 ... l<depth>`` (constant-path views
        over the generated tree use prefixes of this)."""
        return tuple(f"l{i + 1}" for i in range(self.depth))


def layered_tree(
    spec: TreeSpec, store: ObjectStore | None = None
) -> tuple[ObjectStore, str]:
    """A uniform tree: level *i* nodes carry label ``l<i>``; leaves are
    atomic with random integer values, inner nodes are sets.

    Returns ``(store, root_oid)``.  A simple view over it is
    ``SELECT root.l1...l<k> X WHERE X.l<k+1>...l<depth> <op> <v>``.
    """
    s = store if store is not None else ObjectStore()
    rng = random.Random(spec.seed)
    counter = 0

    def build(level: int) -> str:
        nonlocal counter
        counter += 1
        oid = f"n{counter}"
        label = "root" if level == 0 else spec.labels[level - 1]
        if level == spec.depth:
            s.add_atomic(oid, label, rng.randint(*spec.value_range))
            return oid
        children = [build(level + 1) for _ in range(spec.fanout)]
        s.add_set(oid, label, children)
        return oid

    root = build(0)
    return s, root


def random_labelled_tree(
    *,
    nodes: int,
    labels: tuple[str, ...] = ("a", "b", "c"),
    value_range: tuple[int, int] = (0, 100),
    atomic_fraction: float = 0.5,
    seed: int = 42,
    store: ObjectStore | None = None,
) -> tuple[ObjectStore, str]:
    """A random tree with arbitrary (repeatable) labels.

    Node *i*'s parent is chosen uniformly among earlier set nodes, so
    shapes vary from paths to stars.  Used by the property tests, where
    non-unique labels must exercise the re-derivation logic of
    Algorithm 1.  Returns ``(store, root_oid)``.
    """
    s = store if store is not None else ObjectStore()
    rng = random.Random(seed)
    s.add_set("root0", "root", [])
    set_nodes = ["root0"]
    for i in range(1, nodes):
        oid = f"node{i}"
        label = rng.choice(labels)
        parent = rng.choice(set_nodes)
        if rng.random() < atomic_fraction:
            s.add_atomic(oid, label, rng.randint(*value_range))
        else:
            s.add_set(oid, label, [])
            set_nodes.append(oid)
        s.insert_edge(parent, oid)
    return s, "root0"


def layered_dag(
    *,
    depth: int = 3,
    width: int = 4,
    edges_per_node: int = 2,
    value_range: tuple[int, int] = (0, 100),
    seed: int = 42,
    store: ObjectStore | None = None,
    uniform_label: str | None = None,
) -> tuple[ObjectStore, str]:
    """A layered DAG: *width* nodes per level, each level-``i`` node
    pointed at by ``edges_per_node`` random level-``i-1`` nodes, so
    objects have multiple parents and multiple root paths — the
    Section 6 DAG relaxation.  Level-``i`` nodes carry label ``l<i>``;
    the last level is atomic.  Returns ``(store, root_oid)``.
    """
    s = store if store is not None else ObjectStore()
    rng = random.Random(seed)
    layers: list[list[str]] = []
    # Build bottom-up: last layer first.  With *uniform_label*, every
    # level shares one label — the repeated-label stress case for
    # counting maintenance (an edge can match several path positions).
    for level in reversed(range(1, depth + 1)):
        label = uniform_label if uniform_label is not None else f"l{level}"
        layer: list[str] = []
        for w in range(width):
            oid = f"d{level}_{w}"
            if level == depth:
                s.add_atomic(oid, label, rng.randint(*value_range))
            else:
                below = layers[-1]
                kids = rng.sample(below, min(edges_per_node, len(below)))
                s.add_set(oid, label, kids)
            layer.append(oid)
        layers.append(layer)
    top = layers[-1]
    s.add_set("dagroot", "root", top)
    # Add extra cross edges parent→child between adjacent layers.
    layers.reverse()  # now layers[0] = level 1 ... layers[-1] = level depth
    for level in range(len(layers) - 1):
        for oid in layers[level]:
            obj = s.get(oid)
            candidates = [
                c for c in layers[level + 1] if c not in obj.children()
            ]
            extras = rng.sample(
                candidates, min(edges_per_node - 1, len(candidates))
            )
            for child in extras:
                s.insert_edge(oid, child)
    return s, "dagroot"


def count_objects(store: ObjectStore) -> tuple[int, int]:
    """(set objects, atomic objects) in *store* — workload reporting."""
    sets = atoms = 0
    for oid in store.oids():
        obj = store.get_optional(oid)
        if obj is None:
            continue
        if obj.is_set:
            sets += 1
        else:
            atoms += 1
    return sets, atoms
