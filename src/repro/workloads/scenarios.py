"""The paper's own example databases, reconstructed exactly.

* :func:`person_db` — Example 2 / Figure 2 (professors, a student, a
  secretary).  The paper's graph is actually a small DAG (P3 is a child
  of both ROOT and P1); ``tree=True`` gives the tree variant used when
  exercising Algorithm 1, whose precondition is a tree base.
* :func:`relations_db` — Example 7 / Figure 5: a GSDB encoding a set of
  "relations" whose "tuples" have schemaless fields.  Parametrized so
  experiment E2 can sweep view sizes.
* :func:`web_db` — the Section 1 motivation: interlinked pages whose
  word lists drive a "contains 'flower'" view.
"""

from __future__ import annotations

import random

from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.store import ObjectStore


def person_db(
    store: ObjectStore | None = None, *, tree: bool = False
) -> ObjectStore:
    """Build Example 2's PERSON database contents.

    Args:
        store: target store (a fresh one when omitted).
        tree: drop the ROOT → P3 edge so the base is a tree (P3 remains
            reachable through P1), as required by Algorithm 1.
    """
    s = store if store is not None else ObjectStore()
    s.add_atomic("N1", "name", "John")
    s.add_atomic("A1", "age", 45)
    s.add_atomic("S1", "salary", 100_000, type="dollar")
    s.add_atomic("N3", "name", "John")
    s.add_atomic("A3", "age", 20)
    s.add_atomic("M3", "major", "education")
    s.add_set("P3", "student", ["N3", "A3", "M3"])
    s.add_set("P1", "professor", ["N1", "A1", "S1", "P3"])
    s.add_atomic("N2", "name", "Sally")
    s.add_atomic("ADD2", "address", "Palo Alto")
    s.add_set("P2", "professor", ["N2", "ADD2"])
    s.add_atomic("N4", "name", "Tom")
    s.add_atomic("A4", "age", 40)
    s.add_set("P4", "secretary", ["N4", "A4"])
    children = ["P1", "P2", "P4"] if tree else ["P1", "P2", "P3", "P4"]
    s.add_set("ROOT", "person", children)
    return s


PERSON_OIDS = (
    "ROOT P1 P2 P3 N1 A1 S1 N2 ADD2 N3 A3 M3 P4 N4 A4".split()
)


def register_person_database(target) -> None:
    """Create the PERSON database object of Example 2.

    *target* is anything with a ``create_database(name, members)``
    method — a :class:`~repro.views.catalog.ViewCatalog` (preferred:
    it also excludes the grouping edges from the parent index) or a
    bare :class:`DatabaseRegistry`.
    """
    target.create_database("PERSON", PERSON_OIDS)


def relations_db(
    store: ObjectStore | None = None,
    *,
    relations: int = 2,
    tuples_per_relation: int = 10,
    fields_per_tuple: int = 3,
    age_range: tuple[int, int] = (20, 60),
    seed: int = 7,
) -> tuple[ObjectStore, str]:
    """Build the Figure 5 database: ``REL`` → relations → tuples.

    Each tuple gets an ``age`` field plus ``fields_per_tuple - 1``
    filler fields (schemaless, as the paper notes: "each 'tuple' can
    have different 'attributes'").  Returns ``(store, root_oid)``; the
    root is ``REL``, relation r0 is labelled ``r`` (the paper's view
    targets ``REL.r.tuple``), further relations get distinct labels.
    """
    s = store if store is not None else ObjectStore()
    rng = random.Random(seed)
    relation_oids = []
    for r in range(relations):
        label = "r" if r == 0 else f"rel{r}"
        tuple_oids = []
        for t in range(tuples_per_relation):
            tid = f"t_{r}_{t}"
            field_oids = []
            age_oid = f"age_{r}_{t}"
            s.add_atomic(age_oid, "age", rng.randint(*age_range))
            field_oids.append(age_oid)
            for f in range(fields_per_tuple - 1):
                foid = f"f_{r}_{t}_{f}"
                s.add_atomic(foid, f"field{f}", rng.randint(0, 1000))
                field_oids.append(foid)
            s.add_set(tid, "tuple", field_oids)
            tuple_oids.append(tid)
        roid = f"R{r}"
        s.add_set(roid, label, tuple_oids)
        relation_oids.append(roid)
    s.add_set("REL", "relations", relation_oids)
    return s, "REL"


def insert_tuple(
    store: ObjectStore,
    relation_oid: str,
    tuple_id: str,
    *,
    age: int,
    extra_fields: int = 2,
) -> str:
    """Example 7's update: insert a new tuple ``T`` into a relation.

    Creates the tuple object with an ``age`` field plus fillers, then
    applies ``insert(relation, T)`` through the normal update path.
    Returns the tuple OID.
    """
    field_oids = []
    age_oid = f"age_{tuple_id}"
    store.add_atomic(age_oid, "age", age)
    field_oids.append(age_oid)
    for f in range(extra_fields):
        foid = f"f_{tuple_id}_{f}"
        store.add_atomic(foid, f"field{f}", f)
        field_oids.append(foid)
    store.add_set(tuple_id, "tuple", field_oids)
    store.insert_edge(relation_oid, tuple_id)
    return tuple_id


_WORDS = (
    "flower garden rose tulip sun rain soil seed bloom leaf "
    "stem petal bee honey tree park spring color scent vase"
).split()


def web_db(
    store: ObjectStore | None = None,
    *,
    pages: int = 30,
    words_per_page: int = 5,
    links_per_page: int = 2,
    seed: int = 13,
) -> tuple[ObjectStore, str]:
    """The Section 1 web scenario: pages with word and link children.

    Pages form a tree below a ``site`` root (page p links to pages with
    higher indexes so the base stays acyclic and singly-parented); each
    page has ``word`` children drawn from a small flower-ish vocabulary
    and a ``url`` child.  Returns ``(store, root_oid)``.
    """
    s = store if store is not None else ObjectStore()
    rng = random.Random(seed)
    page_children: dict[int, list[str]] = {p: [] for p in range(pages)}

    # Assign each page (except page 0, the root's child layer) a single
    # parent page with a smaller index: a tree of pages.
    for p in range(1, pages):
        parent = rng.randrange(0, p)
        if len(page_children[parent]) < links_per_page:
            page_children[parent].append(f"page{p}")
        else:
            page_children[0].append(f"page{p}")

    # Build bottom-up so reference checking passes.
    for p in reversed(range(pages)):
        children: list[str] = []
        url_oid = f"url{p}"
        s.add_atomic(url_oid, "url", f"http://example.org/{p}")
        children.append(url_oid)
        for w in range(words_per_page):
            woid = f"word{p}_{w}"
            s.add_atomic(woid, "word", rng.choice(_WORDS))
            children.append(woid)
        children.extend(page_children[p])
        s.add_set(f"page{p}", "page", children)
    s.add_set("SITE", "site", ["page0"])
    return s, "SITE"
