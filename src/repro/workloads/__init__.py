"""Workloads: the paper's example databases and synthetic generators."""

from repro.workloads.generators import (
    TreeSpec,
    count_objects,
    layered_dag,
    layered_tree,
    random_labelled_tree,
)
from repro.workloads.multiview import (
    build_store as build_multiview_store,
    build_views as build_multiview_views,
    run_stream as run_multiview_stream,
)
from repro.workloads.scenarios import (
    PERSON_OIDS,
    insert_tuple,
    person_db,
    register_person_database,
    relations_db,
    web_db,
)
from repro.workloads.traffic import (
    TrafficEnv,
    TrafficEvent,
    TrafficSpec,
    build_traffic_env,
    poisson_schedule,
)
from repro.workloads.updates import UpdateMix, UpdateStream, burst_of_tuples

__all__ = [
    "PERSON_OIDS",
    "TrafficEnv",
    "TrafficEvent",
    "TrafficSpec",
    "TreeSpec",
    "UpdateMix",
    "UpdateStream",
    "build_traffic_env",
    "poisson_schedule",
    "build_multiview_store",
    "build_multiview_views",
    "burst_of_tuples",
    "count_objects",
    "run_multiview_stream",
    "insert_tuple",
    "layered_dag",
    "layered_tree",
    "person_db",
    "random_labelled_tree",
    "register_person_database",
    "relations_db",
    "web_db",
]
