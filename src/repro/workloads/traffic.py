"""Open-loop traffic schedules for the serving tiers (experiment E20).

Closed-loop drivers (issue the next request when the previous answer
returns) hide saturation: a slow server simply gets asked less often.
The E20 harness is *open-loop*: arrivals are scheduled ahead of time
from a Poisson process at a fixed offered rate, and a request's latency
is measured from its **scheduled arrival** to its completion — queueing
delay counts, so a server that falls behind shows it in the tail
percentiles instead of quietly shedding load.

The schedule is deterministic in the seed: a list of
:class:`TrafficEvent` with exponential inter-arrival gaps, Zipf-skewed
query popularity (query *i* weighted ``(i+1)**-skew``, the usual
hot-key shape of read traffic), a Bernoulli read/write split, and
per-read freshness policies drawn from an explicit distribution.  The
same schedule can then drive the sequential
:class:`~repro.serving.server.QueryServer` baseline and the concurrent
:class:`~repro.serving.mvcc.AsyncQueryServer` tier — identical offered
load, comparable tails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.indexes import LabelIndex, ParentIndex
from repro.workloads.generators import TreeSpec, layered_tree
from repro.workloads.serving import build_query_pool


@dataclass(frozen=True)
class TrafficEvent:
    """One scheduled arrival.

    ``at`` is the arrival offset in seconds from the start of the run;
    ``kind`` is ``"read"`` or ``"write"``; reads carry a query string
    and a freshness-policy spec (``"fresh"`` / ``"any"`` / a lag bound
    as text), writes carry the update-batch size.
    """

    at: float
    kind: str
    query: str | None = None
    policy: str = "fresh"
    batch: int = 0


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of an open-loop run (all randomness hangs off ``seed``).

    ``rate`` is the offered arrival rate in requests/second; the run
    schedules exactly ``requests`` arrivals, so the nominal horizon is
    ``requests / rate`` seconds.  ``policies`` weights the per-read
    freshness mix — the default sends most reads with a small staleness
    budget, the bounded-staleness regime the MVCC tier is built for.
    """

    seed: int = 0
    requests: int = 2000
    rate: float = 400.0
    read_ratio: float = 0.9
    skew: float = 1.1
    write_batch: int = 8
    policies: tuple[tuple[str, float], ...] = (
        ("fresh", 0.2),
        ("2", 0.6),
        ("any", 0.2),
    )

    @property
    def horizon(self) -> float:
        """Nominal schedule length in seconds."""
        return self.requests / self.rate


def poisson_schedule(
    spec: TrafficSpec, pool: list[str]
) -> list[TrafficEvent]:
    """The deterministic open-loop schedule for *spec* over *pool*."""
    if not pool:
        raise ValueError("traffic needs a non-empty query pool")
    rng = random.Random(spec.seed)
    weights = [(i + 1) ** -spec.skew for i in range(len(pool))]
    policy_specs = [name for name, _ in spec.policies]
    policy_weights = [weight for _, weight in spec.policies]
    events: list[TrafficEvent] = []
    at = 0.0
    for _ in range(spec.requests):
        at += rng.expovariate(spec.rate)
        if rng.random() < spec.read_ratio:
            events.append(
                TrafficEvent(
                    at=at,
                    kind="read",
                    query=rng.choices(pool, weights=weights)[0],
                    policy=rng.choices(
                        policy_specs, weights=policy_weights
                    )[0],
                )
            )
        else:
            events.append(
                TrafficEvent(at=at, kind="write", batch=spec.write_batch)
            )
    return events


@dataclass
class TrafficEnv:
    """A serving environment the schedules run against: a layered tree,
    its registry/indexes, and the deterministic query pool."""

    store: object
    root: str
    registry: DatabaseRegistry
    parent_index: ParentIndex
    label_index: LabelIndex
    pool: list[str] = field(default_factory=list)


def build_traffic_env(
    *, seed: int = 0, tree: TreeSpec | None = None
) -> TrafficEnv:
    """Build the shared E20 environment (same shape as E16's)."""
    tree = tree if tree is not None else TreeSpec(depth=4, seed=seed + 17)
    store, root = layered_tree(tree)
    registry = DatabaseRegistry(store)
    return TrafficEnv(
        store=store,
        root=root,
        registry=registry,
        parent_index=ParentIndex(store),
        label_index=LabelIndex(store),
        pool=build_query_pool(root, tree, store=store),
    )


__all__ = [
    "TrafficEnv",
    "TrafficEvent",
    "TrafficSpec",
    "build_traffic_env",
    "poisson_schedule",
]
