"""Fault-schedule generators for the chaos harness (experiment E15).

Thin, seeded constructors over :mod:`repro.chaos.faults` so benchmarks,
the CLI and the property suite all derive schedules the same way.  This
module is intentionally **not** re-exported from
:mod:`repro.workloads` — importing it pulls in :mod:`repro.chaos`, and
the chaos harness itself imports :mod:`repro.workloads`; keeping the
dependency one-directional at package level avoids the cycle.
"""

from __future__ import annotations

from repro.chaos.faults import FaultRates, FaultSchedule

#: The named severity presets the benchmark sweeps (message-fault mass
#: split evenly across drop/duplicate/reorder, plus a small crash and
#: query-timeout share at the heavier settings).
SEVERITIES: dict[str, FaultRates] = {
    "none": FaultRates(),
    "light": FaultRates(drop=0.05, duplicate=0.05, reorder=0.05),
    "moderate": FaultRates(
        drop=0.1, duplicate=0.1, reorder=0.1, crash=0.02, timeout=0.1
    ),
    "heavy": FaultRates(
        drop=0.2, duplicate=0.15, reorder=0.15, crash=0.05, timeout=0.2
    ),
    "extreme": FaultRates(
        drop=0.3, duplicate=0.3, reorder=0.3, crash=0.1, timeout=0.5
    ),
}


def uniform_rates(rate: float, *, timeout: float | None = None) -> FaultRates:
    """One *rate* applied to drop, duplicate and reorder alike (the CLI's
    single-knob shape).  ``timeout`` defaults to the same rate, capped so
    retries still terminate in reasonable time."""
    if not 0.0 <= rate <= 1.0 / 3.0:
        raise ValueError(
            f"uniform rate {rate} must stay in [0, 1/3] so the three "
            "message-fault kinds fit one draw"
        )
    return FaultRates(
        drop=rate,
        duplicate=rate,
        reorder=rate,
        timeout=min(rate, 0.5) if timeout is None else timeout,
    )


def fault_schedule(
    seed: int,
    severity: str | float = "moderate",
    *,
    max_hold: int = 4,
    downtime: float = 2.0,
) -> FaultSchedule:
    """A seeded schedule at a named severity (or a uniform rate)."""
    if isinstance(severity, str):
        try:
            rates = SEVERITIES[severity]
        except KeyError:
            raise ValueError(
                f"unknown severity {severity!r}; "
                f"pick one of {sorted(SEVERITIES)}"
            ) from None
    else:
        rates = uniform_rates(float(severity))
    return FaultSchedule(rates, seed=seed, max_hold=max_hold, downtime=downtime)
