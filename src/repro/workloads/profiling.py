"""The canned profiling workload behind ``repro profile``.

One deterministic end-to-end round over a layered tree — build, view
definition, update churn with live maintenance, full recomputation,
cached serving, and a GC mark — timed phase by phase with the cost
counters each phase charged.  Run once interpreted and once columnar
(``repro profile`` does both) the report shows exactly where the
columnar snapshot pays off and what it costs (refreshes, rows scanned,
fallbacks).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.gsdb.gc import catalog_roots, collect_garbage
from repro.views import ViewCatalog
from repro.workloads.generators import TreeSpec, layered_tree


@dataclass
class PhaseProfile:
    """One timed phase: wall seconds + the counter deltas it charged."""

    name: str
    seconds: float
    counters: dict[str, int] = field(default_factory=dict)


@dataclass
class ProfileReport:
    """The full profile: ordered phases plus snapshot lifecycle stats."""

    mode: str
    phases: list[PhaseProfile]
    total_seconds: float
    snapshot: str | None = None

    def phase(self, name: str) -> PhaseProfile:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(name)

    def describe_lines(self, *, counters_per_phase: int = 4) -> list[str]:
        """Human-readable breakdown for the CLI."""
        lines = [f"[{self.mode}] total {self.total_seconds * 1000:.1f} ms"]
        for phase in self.phases:
            lines.append(
                f"  {phase.name:<12} {phase.seconds * 1000:8.1f} ms"
            )
            top = sorted(
                phase.counters.items(), key=lambda kv: -kv[1]
            )[:counters_per_phase]
            for key, value in top:
                lines.append(f"    {key}: {value:,}")
        if self.snapshot is not None:
            lines.append(f"  snapshot     {self.snapshot}")
        return lines


def run_profile(
    *,
    depth: int = 4,
    fanout: int = 5,
    updates: int = 40,
    queries: int = 24,
    seed: int = 7,
    columnar: bool = True,
) -> ProfileReport:
    """Run the canned workload; all phases are seed-deterministic.

    The same phases run in both modes; only the read-path machinery
    differs.  Phase counters are deltas (``counters.delta_since``), so
    snapshot refresh/scan/fallback charges land in the phase that
    incurred them.
    """
    catalog = ViewCatalog(with_label_index=True)
    store = catalog.store
    phases: list[PhaseProfile] = []
    started = time.perf_counter()

    def timed(name: str, action) -> None:
        before = store.counters.snapshot()
        begin = time.perf_counter()
        action()
        seconds = time.perf_counter() - begin
        phases.append(
            PhaseProfile(
                name,
                seconds,
                store.counters.delta_since(before).as_dict(),
            )
        )

    spec = TreeSpec(depth=depth, fanout=fanout, seed=seed)
    root_holder: list[str] = []
    timed(
        "build",
        lambda: root_holder.extend(
            [layered_tree(spec, store)[1]]
        ),
    )
    root = root_holder[0]
    if columnar:
        catalog.enable_columnar()

    path = ".".join(spec.labels[:-1])
    deep = ".".join(spec.labels)

    def define_views() -> None:
        catalog.define(f"define mview PV as: SELECT {root}.{path} X")
        catalog.define(
            f"define mview WV as: SELECT {root}.* X "
            f"WHERE X.{spec.labels[-1]} >= 50"
        )

    timed("define", define_views)

    def churn() -> None:
        # Deterministic churn: walk the penultimate level, detach and
        # re-attach each node's first leaf, and modify another leaf.
        view = catalog.materialized_views["PV"]
        members = sorted(view.members())
        for i in range(updates):
            parent = members[i % len(members)]
            child = sorted(store.peek(parent).children())[0]
            store.delete_edge(parent, child)
            store.insert_edge(parent, child)
            leaf = sorted(store.peek(parent).children())[-1]
            if not store.peek(leaf).is_set:
                store.modify_value(leaf, (i * 13) % 100)

    timed("updates", churn)

    def recompute_all() -> None:
        for name in sorted(catalog.materialized_views):
            catalog.recompute(name)

    timed("recompute", recompute_all)

    def serve_round() -> None:
        catalog.enable_serving(cache_size=64)
        texts = [
            f"SELECT {root}.{path} X",
            f"SELECT {root}.{deep} X",
            f"SELECT {root}.* X WHERE X.{spec.labels[-1]} < 50",
        ]
        for i in range(queries):
            catalog.serve_oids(texts[i % len(texts)])

    timed("serve", serve_round)

    timed(
        "gc-mark",
        lambda: collect_garbage(
            store, catalog_roots(catalog) | {root}, dry_run=True
        ),
    )

    total = time.perf_counter() - started
    manager = getattr(store, "columnar", None)
    return ProfileReport(
        mode="columnar" if columnar else "interpreted",
        phases=phases,
        total_seconds=total,
        snapshot=manager.describe() if manager is not None else None,
    )


def run_maintenance_profile(
    *,
    views: int = 8,
    updates: int = 96,
    batch_size: int = 16,
    branches: int = 16,
    kernel: bool = True,
) -> ProfileReport:
    """The write-path profile behind ``repro profile maint``.

    Runs the E14/E19 multi-view stream through a batching dispatcher
    and reports the maintenance breakdown.  With *kernel*, the phases
    are the batch kernel's own (``screen`` / ``region`` / ``apply``
    from the dispatcher's ``kernel_phase_seconds``, plus coalescing and
    everything else as ``other``); interpreted, the whole dispatch is
    one ``dispatch`` phase.  Counters are stream-wide deltas in both
    modes, attached to the mode's headline phase so the two reports
    line up in the CLI.
    """
    from repro.gsdb.indexes import ParentIndex
    from repro.gsdb.store import ObjectStore
    from repro.views.dispatcher import MaintenanceDispatcher
    from repro.workloads import multiview

    store = multiview.build_store(
        ObjectStore(), branches=branches, items=multiview.ITEMS
    )
    parent_index = ParentIndex(store)
    dispatcher = MaintenanceDispatcher(
        store, parent_index=parent_index, subscribe=True
    )
    if kernel:
        from repro.gsdb.columnar import enable_columnar

        enable_columnar(store)
        dispatcher.batch_kernel = True
    multiview.build_views(
        store, views, parent_index=parent_index, dispatcher=dispatcher
    )
    before = store.counters.snapshot()
    started = time.perf_counter()
    multiview.run_stream(
        store,
        updates=updates,
        branches=branches,
        items=multiview.ITEMS,
        dispatcher=dispatcher,
        batch_size=batch_size,
    )
    total = time.perf_counter() - started
    charged = store.counters.delta_since(before).as_dict()
    phases: list[PhaseProfile] = []
    if kernel:
        walls = dispatcher.kernel_phase_seconds
        accounted = 0.0
        for name in ("screen", "region", "apply"):
            phases.append(PhaseProfile(name, walls[name]))
            accounted += walls[name]
        phases.append(
            PhaseProfile("other", max(0.0, total - accounted))
        )
        phases[0].counters = charged
    else:
        phases.append(PhaseProfile("dispatch", total, charged))
    manager = getattr(store, "columnar", None)
    return ProfileReport(
        mode="kernel" if kernel else "interpreted",
        phases=phases,
        total_seconds=total,
        snapshot=manager.describe() if manager is not None else None,
    )
