"""Quickstart: the paper's PERSON database, views, and maintenance.

Builds Example 2's database, defines the paper's views (virtual and
materialized), applies the updates of Examples 5-6, and shows that the
materialized view tracks the base automatically.

Run:  python examples/quickstart.py
"""

from repro import ViewCatalog
from repro.gsdb import dump_subtree
from repro.workloads import person_db, register_person_database


def main() -> None:
    # -- build the base (paper Example 2, tree variant) -----------------
    catalog = ViewCatalog()
    person_db(catalog.store, tree=True)
    register_person_database(catalog)

    print("The PERSON database (paper Figure 2):")
    print(dump_subtree(catalog.store, "ROOT"))

    # -- a query (paper Section 2) ---------------------------------------
    answer = catalog.query_oids("SELECT ROOT.professor X WHERE X.age > 40")
    print(f"professors older than 40: {sorted(answer)}")  # ['P1']

    # -- a virtual view (paper Example 3) --------------------------------
    catalog.define(
        "define view VJ as: SELECT ROOT.* X "
        "WHERE X.name = 'John' WITHIN PERSON"
    )
    vj = catalog.virtual_views["VJ"]
    print(f"virtual view VJ (persons named John): {sorted(vj.members())}")

    # Views constrain queries (paper query 3.3) ...
    constrained = catalog.query_oids("SELECT ROOT.professor X ANS INT VJ")
    print(f"professors, restricted to VJ: {sorted(constrained)}")  # ['P1']

    # ... and serve as starting points (ages of the Johns).
    ages = catalog.query_oids("SELECT VJ.?.age X")
    print(f"age objects of the Johns: {sorted(ages)}")  # ['A1', 'A3']

    # -- a maintained materialized view (paper Examples 4-6) -------------
    yp = catalog.define(
        "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"
    )
    print(f"\nmaterialized view YP starts with: {sorted(yp.members())}")

    # Example 5's update: P2 gains an age of 40.
    catalog.store.add_atomic("A2", "age", 40)
    catalog.store.insert_edge("P2", "A2")
    print(f"after insert(P2, A2):  {sorted(yp.members())}")  # P1, P2

    # Example 6's update: P1 is removed from ROOT.
    catalog.store.delete_edge("ROOT", "P1")
    print(f"after delete(ROOT, P1): {sorted(yp.members())}")  # P2

    # The delegate is a real, stand-alone copy with a semantic OID.
    delegate = yp.delegate("P2")
    print(f"delegate object: {delegate!r}")

    # The consistency checker compares against recomputation.
    report = catalog.check("YP")
    print(f"view consistent with base: {report.ok}")


if __name__ == "__main__":
    main()
