"""A live payroll dashboard: the Section 6 extensions working together.

A company GSDB holds departments → employees → name/salary fields.  We
build:

* a **partially materialized view** (depth 2) of the engineers — their
  salary values are cached locally, not just pointers (§6 open issue 3);
* **aggregate views** over it — headcount and salary statistics,
  maintained incrementally (§6 open issue 2);
* and we apply an **intensional bulk update** ("raise every senior by
  10%") whose descriptor lets unrelated views skip the whole batch
  (§6 open issue 4 — the paper's Marks-vs-Johns example, scaled up).

Run:  python examples/payroll_dashboard.py
"""

import random

from repro.gsdb import ObjectStore, ParentIndex
from repro.instrumentation import Meter, print_table
from repro.paths import PathExpression
from repro.query.ast import Comparison
from repro.views import (
    AggregateKind,
    AggregateView,
    PartialMaterializedView,
    SimpleViewMaintainer,
    ViewDefinition,
    compute_view_members,
)
from repro.warehouse import BulkUpdate, bulk_is_relevant, execute_bulk


def build_company(engineers: int = 40, managers: int = 10) -> ObjectStore:
    rng = random.Random(11)
    s = ObjectStore()
    people = []
    for i in range(engineers + managers):
        role = "engineer" if i < engineers else "manager"
        s.add_atomic(f"n{i}", "name", f"emp{i}")
        s.add_atomic(f"s{i}", "salary", rng.randint(80, 160) * 1000)
        s.add_atomic(f"lv{i}", "level", rng.choice(["junior", "senior"]))
        s.add_set(f"p{i}", role, [f"n{i}", f"s{i}", f"lv{i}"])
        people.append(f"p{i}")
    s.add_set("ROOT", "company", people)
    return s


def main() -> None:
    store = build_company()
    index = ParentIndex(store)

    # -- depth-2 partial view: engineers with their field values local --
    definition = ViewDefinition.parse(
        "define mview ENG as: SELECT ROOT.engineer X WHERE X.salary > 0"
    )
    view = PartialMaterializedView(definition, store, depth=2)
    index.ignore_view("ENG")
    SimpleViewMaintainer(view, parent_index=index, subscribe=True)
    view.load_members(compute_view_members(definition, store))
    store.subscribe(view.handle_fragment_update)

    # -- incremental aggregates over the view ---------------------------
    aggregates = {
        kind: AggregateView(
            f"ENG_{kind.value}", view, kind,
            value_path=("salary",), subscribe=True,
        )
        for kind in (
            AggregateKind.COUNT, AggregateKind.AVG,
            AggregateKind.MIN, AggregateKind.MAX,
        )
    }

    def dashboard(title):
        print_table(
            title,
            ["metric", "value"],
            [[kind.value, agg.current_value()]
             for kind, agg in aggregates.items()],
        )

    dashboard("payroll dashboard — initial")

    # -- ordinary updates flow through automatically --------------------
    store.add_atomic("n_new", "name", "grace")
    store.add_atomic("s_new", "salary", 200_000)
    store.add_set("p_new", "engineer", ["n_new", "s_new"])
    store.insert_edge("ROOT", "p_new")
    store.delete_edge("ROOT", "p0")
    dashboard("after hiring grace (200k) and losing p0")

    # -- an intensional bulk update --------------------------------------
    raise_seniors = BulkUpdate(
        owner_path=PathExpression.parse("engineer|manager"),
        guard=Comparison(PathExpression.parse("level"), "=", "senior"),
        target_label="salary",
        transform=lambda v: int(v * 1.10),
        description="raise every senior by 10%",
    )
    # A managers-only view could skip this batch? No — the guard
    # (level=senior) isn't disjoint from a role-based condition, but a
    # junior-focused view is provably unaffected:
    juniors = ViewDefinition.parse(
        "define mview JR as: SELECT ROOT.engineer X "
        "WHERE X.level = 'junior'"
    )
    print(
        "bulk relevant to a juniors view (depth-2)? "
        f"{bulk_is_relevant(juniors, raise_seniors, fragment_depth=2)}"
    )
    with Meter(store.counters) as meter:
        applied = execute_bulk(store, "ROOT", raise_seniors)
    print(f"bulk raised {len(applied)} seniors "
          f"({meter.delta.object_writes} writes at the source)")
    dashboard("after the 10% senior raise")

    # The dashboard is verifiably exact.
    for kind, agg in aggregates.items():
        assert agg.check(), f"{kind} aggregate diverged!"
    assert view.check_fragments() == []
    print("all aggregates and fragments verified against base state")


if __name__ == "__main__":
    main()
