"""Web-page caching: the paper's Section 1 motivation.

"Say that a user is interested in all Web pages containing the word
'flower' and would like to copy them to his local disk for faster
access."  We model a site as a GSDB (pages with word/url children),
define a materialized view selecting the flower pages, copy it into a
separate "local disk" store, swizzle the inter-page links so cached
pages reference each other locally, and keep the cache fresh while the
site changes.

Run:  python examples/web_cache.py
"""

from repro.gsdb import ObjectStore, ParentIndex
from repro.views import (
    ExtendedViewMaintainer,
    MaterializedView,
    ViewDefinition,
    check_consistency,
    populate_view,
)
from repro.workloads import web_db


def flower_pages(store, root) -> set[str]:
    from repro.paths import PathExpression, evaluate_expression
    from repro.query.conditions import evaluate_condition
    from repro.query.parser import parse_query

    query = parse_query(
        f"SELECT {root}.*.page X WHERE X.word = 'flower'"
    )
    candidates = evaluate_expression(store, root, query.select_path)
    return {
        oid
        for oid in candidates
        if evaluate_condition(store, oid, query.condition)
    }


def main() -> None:
    site, root = web_db(pages=40, words_per_page=4, seed=21)
    print(f"site has {sum(1 for o in site.scan() if o.label == 'page')} pages")

    # The cache lives in its own store: the user's "local disk".
    local_disk = ObjectStore()
    definition = ViewDefinition.parse(
        f"define mview FLOWERS as: SELECT {root}.*.page X "
        "WHERE X.word = 'flower'"
    )
    cache = MaterializedView(definition, site, local_disk)
    populate_view(cache)
    print(f"cached flower pages: {sorted(cache.members())}")

    # Swizzle: links between cached pages now point at local copies.
    rewritten = cache.swizzle_all()
    print(f"swizzled {rewritten} inter-page links to local copies")

    # Keep the cache fresh as the site changes (wildcard view -> the
    # extended maintainer of paper Section 6).
    index = ParentIndex(site)
    ExtendedViewMaintainer(cache, parent_index=index, subscribe=True)

    # A page gains the word 'flower': it enters the cache.
    site.add_atomic("w_new", "word", "flower")
    site.insert_edge("page7", "w_new")
    print(f"page7 now cached: {cache.contains('page7')}")

    # An author rewrites a word on a cached page: copy refreshed or
    # evicted depending on whether 'flower' remains.
    flower_words = [
        oid
        for oid in site.get("page7").sorted_children()
        if site.get(oid).label == "word"
        and site.get(oid).value == "flower"
    ]
    for word in flower_words:
        site.modify_value(word, "concrete")
    print(f"page7 still cached after edits: {cache.contains('page7')}")

    # A whole subtree of pages is unlinked from the site.
    removed_child = next(
        child
        for child in site.get("page0").sorted_children()
        if site.get(child).label == "page"
    )
    site.delete_edge("page0", removed_child)
    print(f"unlinked subtree under {removed_child}; "
          f"cache now has {len(cache)} pages")

    # Validate the cache against ground truth.
    truth = flower_pages(site, root)
    assert cache.members() == truth, "cache diverged from site!"
    assert check_consistency(cache).ok
    print("cache verified against a full site crawl")


if __name__ == "__main__":
    main()
