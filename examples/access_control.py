"""Access control with views: the paper's second Section 1 use case.

"A parent may wish to restrict access by his children to a particular
subset of Web pages.  For this he can define a virtual view ... that
contains the allowed Web pages."  Section 3.1 adds: "We can also
envision an authorization system where user queries are automatically
expanded to include ANS INT or WITHIN clauses for the union of views
the user is authorized to access."

This example builds that authorization layer: per-user unions of
authorized views, automatic query expansion, dynamic privilege changes,
and the hard-edged variant of Section 3.2 (a materialized view whose
delegates are swizzled and stripped so they cannot lead back to base
data at all).

Run:  python examples/access_control.py
"""

from repro.gsdb.database import union
from repro.query.parser import parse_query
from repro.views import MaterializedView, ViewCatalog, ViewDefinition
from repro.views.recompute import populate_view
from repro.workloads import web_db


class Authorizer:
    """Expands user queries with an ANS INT clause over the union of
    the user's authorized views (paper Section 3.1)."""

    def __init__(self, catalog: ViewCatalog) -> None:
        self.catalog = catalog
        self._grants: dict[str, list[str]] = {}

    def grant(self, user: str, view_name: str) -> None:
        self._grants.setdefault(user, []).append(view_name)
        self._refresh_union(user)

    def revoke(self, user: str, view_name: str) -> None:
        self._grants[user].remove(view_name)
        self._refresh_union(user)

    def _scope_name(self, user: str) -> str:
        return f"__auth_{user}"

    def _refresh_union(self, user: str) -> None:
        store = self.catalog.store
        registry = self.catalog.registry
        scope = self._scope_name(user)
        members: set[str] = set()
        for view_name in self._grants.get(user, ()):
            view = self.catalog.virtual_views.get(view_name)
            if view is not None:
                view.refresh()
                members |= view.members()
        if scope in store:
            store.get(scope).value = members
        else:
            previous = store.check_references
            store.check_references = False
            try:
                store.add_set(scope, "auth_scope", members)
            finally:
                store.check_references = previous
            registry.register(scope, scope)

    def query(self, user: str, text: str):
        """Run *text* on behalf of *user*, auto-scoped."""
        self._refresh_union(user)
        query = parse_query(text).with_scope(ans_int=self._scope_name(user))
        return self.catalog.query_oids(query)


def main() -> None:
    catalog = ViewCatalog()
    site, root = web_db(pages=30, words_per_page=4, seed=5)
    # Copy the site into the catalog's store.
    site.copy_into(catalog.store, site.oids())
    catalog.create_database("SITE_DB", list(site.oids()))

    # The parent defines allowed content as virtual views.
    catalog.define(
        f"define view GARDEN as: SELECT {root}.*.page X "
        "WHERE X.word = 'garden'"
    )
    catalog.define(
        f"define view FLOWERS as: SELECT {root}.*.page X "
        "WHERE X.word = 'flower'"
    )

    authorizer = Authorizer(catalog)
    authorizer.grant("kid", "GARDEN")

    all_pages = catalog.query_oids(f"SELECT {root}.*.page X")
    kid_pages = authorizer.query("kid", f"SELECT {root}.*.page X")
    print(f"site pages: {len(all_pages)}; kid sees: {len(kid_pages)}")

    # Privileges change dynamically: grant the flower pages too.
    authorizer.grant("kid", "FLOWERS")
    richer = authorizer.query("kid", f"SELECT {root}.*.page X")
    print(f"after granting FLOWERS the kid sees: {len(richer)}")
    assert kid_pages <= richer

    authorizer.revoke("kid", "GARDEN")
    fewer = authorizer.query("kid", f"SELECT {root}.*.page X")
    print(f"after revoking GARDEN the kid sees: {len(fewer)}")

    # -- hard-edged variant (paper Section 3.2) --------------------------
    # A materialized copy whose delegates cannot lead back to base data:
    # swizzle intra-view links, then strip remaining base OIDs.
    from repro.gsdb import ObjectStore

    sandbox = ObjectStore()
    safe = MaterializedView(
        ViewDefinition.parse(
            f"define mview SAFE as: SELECT {root}.*.page X "
            "WHERE X.word = 'garden'"
        ),
        catalog.store,
        sandbox,
    )
    populate_view(safe)
    safe.swizzle_all()
    stripped = safe.strip_base_references()
    print(
        f"sandboxed copy: {len(safe)} pages, {stripped} base references "
        "removed — queries inside the sandbox can never reach base data"
    )
    leaked = [
        child
        for member in safe.members()
        for child in safe.delegate(member).children()
        if not child.startswith("SAFE.")
    ]
    assert not leaked
    print("verified: no delegate references any base OID")


if __name__ == "__main__":
    main()
