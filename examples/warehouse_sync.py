"""Warehouse synchronization: the paper's Section 5 architecture live.

A source holds the relations database of Figure 5; the warehouse keeps
a materialized view of the high-age tuples.  We run the same update
workload under each reporting level and cache policy and print how many
source queries each configuration needed — the trade-off Sections 5.1
and 5.2 discuss (regenerated rigorously by benchmarks E5/E6).

Run:  python examples/warehouse_sync.py
"""

from repro.instrumentation import print_table
from repro.warehouse import (
    CachePolicy,
    ReportingLevel,
    Source,
    Warehouse,
)
from repro.workloads import insert_tuple, relations_db


VIEW = "define mview HOT as: SELECT REL.r.tuple X WHERE X.age > 30"


def run_workload(store) -> None:
    """A mixed update workload against the source."""
    insert_tuple(store, "R0", "T_a", age=55)  # joins the view
    insert_tuple(store, "R0", "T_b", age=10)  # does not
    insert_tuple(store, "R1", "T_c", age=99)  # other relation: irrelevant
    store.modify_value("age_T_a", 5)  # leaves the view
    store.modify_value("age_T_a", 60)  # rejoins
    store.delete_edge("R0", "T_a")  # detached


def measure(level: ReportingLevel, policy: CachePolicy):
    store, root = relations_db(
        relations=2, tuples_per_relation=8, seed=3
    )
    source = Source("S1", store, root)
    warehouse = Warehouse()
    warehouse.connect(source, level=level)
    wview = warehouse.define_view(VIEW, "S1", cache_policy=policy)
    baseline = warehouse.log.snapshot()
    run_workload(store)
    delta = warehouse.log.delta_since(baseline)
    return wview, delta


def main() -> None:
    rows = []
    reference_members = None
    for level in ReportingLevel:
        for policy in CachePolicy:
            wview, delta = measure(level, policy)
            members = sorted(wview.members())
            if reference_members is None:
                reference_members = members
            assert members == reference_members, (
                "configurations disagree on view contents!"
            )
            rows.append(
                [
                    int(level),
                    policy.value,
                    delta.queries,
                    delta.total_bytes,
                    wview.stats.screened,
                ]
            )
    print(f"view contents under every configuration: {reference_members}")
    print_table(
        "source queries per configuration (6-update workload)",
        ["reporting level", "cache", "queries", "bytes", "screened"],
        rows,
        note="richer reports and caches cut queries (paper Sections "
        "5.1-5.2); level>=2 with a cache maintains locally",
    )


if __name__ == "__main__":
    main()
