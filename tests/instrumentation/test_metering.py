"""Tests for metering contexts."""

import pytest

from repro.instrumentation import CostCounters, Meter, MeterSeries


class TestMeter:
    def test_captures_delta_and_time(self):
        c = CostCounters()
        with Meter(c) as meter:
            c.object_reads += 4
        assert meter.delta.object_reads == 4
        assert meter.elapsed >= 0

    def test_multiple_counters_summed(self):
        a, b = CostCounters(), CostCounters()
        with Meter(a, b) as meter:
            a.object_reads += 1
            b.object_reads += 2
        assert meter.delta.object_reads == 3

    def test_needs_at_least_one(self):
        with pytest.raises(ValueError):
            Meter()

    def test_exception_still_measures(self):
        c = CostCounters()
        meter = Meter(c)
        with pytest.raises(RuntimeError):
            with meter:
                c.object_reads += 1
                raise RuntimeError("boom")
        assert meter.delta.object_reads == 1


class TestMeterSeries:
    def test_accumulates(self):
        c = CostCounters()
        series = MeterSeries("test")
        for reads in (1, 2, 3):
            with series.measure(c):
                c.object_reads += reads
        assert series.operations == 3
        assert series.total("object_reads") == 6
        assert series.mean("object_reads") == 2.0
        assert series.total_base_accesses() == 6
        assert series.mean_base_accesses() == 2.0
        assert series.total_time() >= 0
        assert series.mean_time() >= 0

    def test_empty_series(self):
        series = MeterSeries("empty")
        assert series.mean("object_reads") == 0.0
        assert series.mean_time() == 0.0
        assert series.mean_base_accesses() == 0.0
