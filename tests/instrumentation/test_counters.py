"""Tests for cost counters."""

from repro.instrumentation import CostCounters


class TestCounters:
    def test_snapshot_delta(self):
        c = CostCounters()
        c.object_reads = 5
        snap = c.snapshot()
        c.object_reads += 3
        c.source_queries += 2
        delta = c.delta_since(snap)
        assert delta.object_reads == 3
        assert delta.source_queries == 2
        assert delta.object_writes == 0

    def test_snapshot_independent(self):
        c = CostCounters()
        snap = c.snapshot()
        c.object_reads = 10
        assert snap.object_reads == 0

    def test_add(self):
        a, b = CostCounters(), CostCounters()
        a.object_reads = 1
        b.object_reads = 2
        b.bytes_sent = 7
        a.add(b)
        assert a.object_reads == 3
        assert a.bytes_sent == 7

    def test_notes(self):
        c = CostCounters()
        c.note("special")
        c.note("special", 4)
        assert c.notes == {"special": 5}
        snap = c.snapshot()
        c.note("special")
        assert c.delta_since(snap).notes == {"special": 1}

    def test_reset(self):
        c = CostCounters()
        c.object_reads = 3
        c.note("x")
        c.reset()
        assert c.object_reads == 0
        assert c.notes == {}

    def test_total_base_accesses(self):
        c = CostCounters()
        c.object_reads = 1
        c.object_scans = 2
        c.edge_traversals = 3
        c.index_probes = 100  # not base access
        assert c.total_base_accesses() == 6

    def test_as_dict_skips_zeros(self):
        c = CostCounters()
        c.object_reads = 2
        c.note("zero_note", 0)
        assert c.as_dict() == {"object_reads": 2}

    def test_repr(self):
        c = CostCounters()
        c.object_reads = 2
        assert "object_reads=2" in repr(c)
