"""Tests for report-table rendering."""

from repro.instrumentation import format_cell, ratio, render_table


class TestFormatCell:
    def test_booleans(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_ints_grouped(self):
        assert format_cell(1234567) == "1,234,567"

    def test_floats(self):
        assert format_cell(0.12345) == "0.123"
        assert format_cell(1234567.0) == "1,234,567"

    def test_strings(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_structure(self):
        text = render_table(
            "E2: incremental vs recompute",
            ["view size", "incr", "recompute"],
            [[10, 3, 100], [1000, 3, 10000]],
            note="counts are base accesses",
        )
        lines = text.splitlines()
        assert lines[0] == "E2: incremental vs recompute"
        assert set(lines[1]) == {"="}
        assert "view size" in lines[2]
        assert "1,000" in text
        assert lines[-1].startswith("note:")

    def test_empty_rows(self):
        text = render_table("T", ["a"], [])
        assert "a" in text


class TestRatio:
    def test_plain(self):
        assert ratio(10, 2) == 5

    def test_zero_denominator(self):
        assert ratio(5, 0) == float("inf")
        assert ratio(0, 0) == 1.0
