"""E15 acceptance: 100 seeded fault schedules, quiescent at all levels.

The driver's bar for the chaos layer: for one hundred deterministic
schedules (rates up to 0.5), at every reporting level, the warehouse
must settle and every view must be byte-equal to fresh recomputation.
Rates per schedule are derived from the seed so the hundred runs cover
the severity space instead of replaying one mix.
"""

import random

import pytest

from repro.chaos import ChaosHarness, FaultRates

SEEDS = range(100)
LEVELS = (1, 2, 3)


def rates_for(seed: int) -> FaultRates:
    """Seed-derived severity: individual rates up to 0.5, message mass
    up to 1.0 (drop + duplicate + reorder ≤ 0.9, crash ≤ 0.1)."""
    rng = random.Random(seed * 7919 + 13)
    return FaultRates(
        drop=rng.uniform(0.0, 0.3),
        duplicate=rng.uniform(0.0, 0.3),
        reorder=rng.uniform(0.0, 0.3),
        crash=rng.uniform(0.0, 0.1),
        timeout=rng.uniform(0.0, 0.5),
    )


@pytest.mark.parametrize("level", LEVELS)
def test_hundred_schedules_quiesce(level):
    diverged = []
    for seed in SEEDS:
        harness = ChaosHarness(
            seed=seed, nodes=20, level=level, rates=rates_for(seed)
        )
        report = harness.run(40)
        if not report.quiescent:
            diverged.append(report.describe())
    assert not diverged, "\n".join(diverged)


@pytest.mark.parametrize("level", LEVELS)
def test_single_fault_kind_at_half_rate(level):
    """Each fault kind alone at the 0.5 ceiling."""
    for rates in (
        FaultRates(drop=0.5),
        FaultRates(duplicate=0.5),
        FaultRates(reorder=0.5),
        FaultRates(timeout=0.5),
    ):
        harness = ChaosHarness(seed=11, nodes=20, level=level, rates=rates)
        report = harness.run(40)
        assert report.quiescent, report.describe()


def test_batched_path_quiesces_under_faults():
    """Coalesced process_batch traffic through the faulty channel."""
    for seed in range(10):
        harness = ChaosHarness(seed=seed, nodes=20, rates=rates_for(seed))
        report = harness.run_batches(6, 5)
        assert report.quiescent, report.describe()


def test_reports_are_seed_deterministic():
    a = ChaosHarness(seed=17, nodes=20, rates=rates_for(17)).run(40)
    b = ChaosHarness(seed=17, nodes=20, rates=rates_for(17)).run(40)
    assert a.describe() == b.describe()
    assert a.channel == b.channel
    assert a.recovery.as_dict() == b.recovery.as_dict()
