"""Tests for fault schedules: validation, determinism, replay."""

import pytest

from repro.chaos import (
    FaultEvent,
    FaultKind,
    FaultRates,
    FaultSchedule,
    RecordedSchedule,
)
from repro.chaos.faults import DELIVER


class TestFaultRates:
    def test_rates_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError):
            FaultRates(drop=-0.1)
        with pytest.raises(ValueError):
            FaultRates(timeout=1.5)

    def test_message_mass_must_fit_one_draw(self):
        with pytest.raises(ValueError):
            FaultRates(drop=0.5, duplicate=0.4, reorder=0.2)
        # timeout is an independent draw — it does not count.
        FaultRates(drop=0.5, duplicate=0.5, timeout=1.0)

    def test_message_total(self):
        rates = FaultRates(drop=0.1, duplicate=0.2, reorder=0.3, crash=0.1)
        assert rates.message_total() == pytest.approx(0.7)


class TestFaultSchedule:
    def test_degenerate_rates_pin_the_outcome(self):
        for field, kind in (
            ("drop", FaultKind.DROP),
            ("duplicate", FaultKind.DUPLICATE),
            ("reorder", FaultKind.DELAY),
            ("crash", FaultKind.CRASH),
        ):
            schedule = FaultSchedule(FaultRates(**{field: 1.0}), seed=1)
            events = [schedule.message_fault() for _ in range(20)]
            assert {event.kind for event in events} == {kind}
        schedule = FaultSchedule(FaultRates(), seed=1)
        assert all(
            schedule.message_fault() is DELIVER for _ in range(20)
        )

    def test_delay_holds_bounded_by_max_hold(self):
        schedule = FaultSchedule(
            FaultRates(reorder=1.0), seed=3, max_hold=2
        )
        holds = {schedule.message_fault().hold for _ in range(50)}
        assert holds <= {1, 2} and holds

    def test_crash_carries_downtime(self):
        schedule = FaultSchedule(
            FaultRates(crash=1.0), seed=0, downtime=7.5
        )
        assert schedule.message_fault().downtime == 7.5

    def test_same_seed_same_draws(self):
        rates = FaultRates(
            drop=0.2, duplicate=0.2, reorder=0.2, crash=0.1, timeout=0.3
        )
        a = FaultSchedule(rates, seed=42)
        b = FaultSchedule(rates, seed=42)
        for _ in range(60):
            assert a.message_fault() == b.message_fault()
            assert a.query_fault() == b.query_fault()
        assert a.record == b.record

    def test_every_draw_is_recorded(self):
        schedule = FaultSchedule(FaultRates(drop=0.5, timeout=0.5), seed=9)
        schedule.message_fault()
        schedule.query_fault()
        schedule.message_fault()
        tags = [tag for tag, _ in schedule.record]
        assert tags == ["message", "query", "message"]


class TestRecordedSchedule:
    def test_replays_a_live_recording(self):
        rates = FaultRates(
            drop=0.25, duplicate=0.25, reorder=0.25, timeout=0.4
        )
        live = FaultSchedule(rates, seed=5)
        message_draws = [live.message_fault() for _ in range(30)]
        query_draws = [live.query_fault() for _ in range(10)]
        replay = RecordedSchedule(live.record)
        # Different interleaving than the original — queues are split.
        assert [replay.query_fault() for _ in range(10)] == query_draws
        assert [replay.message_fault() for _ in range(30)] == message_draws

    def test_exhausted_queues_go_fault_free(self):
        replay = RecordedSchedule([("message", FaultEvent(FaultKind.DROP))])
        assert replay.message_fault().kind is FaultKind.DROP
        assert replay.message_fault() is DELIVER
        assert replay.query_fault() is False

    def test_scripted(self):
        schedule = RecordedSchedule.scripted(
            messages=[FaultEvent(FaultKind.DUPLICATE)], queries=[True, False]
        )
        assert schedule.message_fault().kind is FaultKind.DUPLICATE
        assert schedule.query_fault() is True
        assert schedule.query_fault() is False

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            RecordedSchedule([("bogus", None)])
