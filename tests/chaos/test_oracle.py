"""Tests for the quiescence oracle: it must catch every divergence
kind — missing member, phantom member, stale delegate value — and stay
silent on consistent views."""

import pytest

from repro.chaos import assert_quiescent, audit_view, check_catalog
from repro.errors import QuiescenceError
from repro.views import ViewCatalog
from repro.warehouse import ReportingLevel, Source, Warehouse
from repro.workloads import random_labelled_tree


@pytest.fixture
def catalog(person_catalog) -> ViewCatalog:
    person_catalog.define(
        "define mview YP as: SELECT PERSON.professor X WHERE X.age <= 45"
    )
    return person_catalog


class TestAuditView:
    def test_consistent_view_passes(self, catalog):
        audit = audit_view(
            catalog.materialized_views["YP"],
            catalog.store,
            registry=catalog.registry,
        )
        assert audit.consistent
        assert audit.expected == audit.actual
        assert "consistent" in audit.describe()

    def test_missing_member_detected(self, catalog):
        view = catalog.materialized_views["YP"]
        victim = sorted(view.members())[0]
        view.v_delete(victim)  # sabotage: drop a member behind truth's back
        audit = audit_view(view, catalog.store, registry=catalog.registry)
        assert not audit.consistent
        assert victim in audit.missing
        assert "missing" in audit.describe()

    def test_phantom_member_detected(self, catalog):
        view = catalog.materialized_views["YP"]
        view.v_insert("P3")  # P3 is outside the tree database
        audit = audit_view(view, catalog.store, registry=catalog.registry)
        assert not audit.consistent
        assert "P3" in audit.extra

    def test_stale_delegate_value_detected(self, catalog):
        view = catalog.materialized_views["YP"]
        member = sorted(view.members())[0]
        # Sabotage the member's base object; the delegate keeps the old
        # value because no maintenance ran.
        obj = catalog.store.get(member)
        child = obj.sorted_children()[0]
        delegate = view.delegate(member)
        assert child in delegate.children()
        catalog.store.delete_edge(member, child)
        catalog.maintainers["YP"] = None  # ensure nothing fixed it up
        view.load_members({member})  # no-op refresh path keeps delegate
        audit = audit_view(view, catalog.store, registry=catalog.registry)
        # The base changed; either membership or the delegate value must
        # now disagree with recomputed truth.
        assert not audit.consistent


class TestTargets:
    def test_check_catalog_audits_every_view(self, catalog):
        audits = check_catalog(catalog)
        assert set(audits) == {"YP"}
        assert audits["YP"].consistent

    def test_assert_quiescent_on_catalog(self, catalog):
        assert_quiescent(catalog)
        catalog.materialized_views["YP"].v_insert("P3")
        with pytest.raises(QuiescenceError) as err:
            assert_quiescent(catalog)
        assert "YP" in str(err.value)

    def test_assert_quiescent_on_warehouse(self):
        store, root = random_labelled_tree(
            nodes=15, labels=("a", "b"), seed=4
        )
        wh = Warehouse()
        wh.connect(Source("S1", store, root), level=ReportingLevel.OIDS_ONLY)
        wview = wh.define_view(
            "define mview V as: SELECT root0.a X", "S1"
        )
        audits = assert_quiescent(wh)
        assert audits["V"].consistent
        phantom = sorted(set(store.oids()) - wview.members() - {root})[0]
        wview.view.v_insert(phantom)
        with pytest.raises(QuiescenceError):
            assert_quiescent(wh)
