"""Warehouse recovery machinery under scripted faults.

Each test wires a real :class:`Warehouse` to a real source through a
:class:`FaultyChannel` running a *scripted* schedule, so every scenario
— duplicate, reorder, loss, crash, retry exhaustion — is exact and
deterministic, and asserts both the recovery bookkeeping and the final
view state against fresh recomputation.
"""

import pytest

from repro.chaos import (
    FaultEvent,
    FaultKind,
    FaultyChannel,
    RecordedSchedule,
    assert_quiescent,
)
from repro.chaos.faults import DELIVER
from repro.errors import QueryTimeoutError, SourceUnavailableError
from repro.views import ViewDefinition, compute_view_members
from repro.warehouse import ReportingLevel, Source, Warehouse
from repro.warehouse.wrapper import RetryPolicy
from repro.workloads import random_labelled_tree

DEF = "define mview V as: SELECT root0.a X WHERE X.b > 50"


def build(messages=(), queries=(), *, level=2, retry=None, seed=0):
    """Warehouse + source + scripted channel, view defined fault-free."""
    store, root = random_labelled_tree(
        nodes=20, labels=("a", "b", "c"), seed=seed
    )
    source = Source("S1", store, root)
    channel = FaultyChannel(
        RecordedSchedule.scripted(messages=messages, queries=queries)
    )
    channel.armed = False
    warehouse = Warehouse()
    warehouse.connect(
        source,
        level=ReportingLevel(level),
        channel=channel,
        retry=retry if retry is not None else RetryPolicy(),
    )
    wview = warehouse.define_view(DEF, "S1")
    channel.armed = True
    return warehouse, channel, store, root, wview


def truth(store):
    return compute_view_members(ViewDefinition.parse(DEF), store)


def targets(store, root):
    """A few safe update targets: (set parent, an a-child's b-atom)."""
    atoms = [
        oid
        for oid in store.oids()
        if (obj := store.peek(oid)) is not None
        and obj.is_atomic
        and obj.label == "b"
    ]
    return sorted(atoms)


class TestDedupAndReorder:
    def test_duplicate_admitted_once(self):
        wh, channel, store, root, wview = build(
            messages=[FaultEvent(FaultKind.DUPLICATE)]
        )
        atom = targets(store, root)[0]
        store.modify_value(atom, 99)
        ingress = wh.ingress["S1"].stats
        assert ingress.received == 2
        assert ingress.applied == 1
        assert ingress.duplicates == 1
        assert wh.counters.notifications_deduped >= 1
        assert wview.members() == truth(store)

    def test_reordered_stream_flushes_in_order(self):
        wh, channel, store, root, wview = build(
            messages=[FaultEvent(FaultKind.DELAY, hold=2), DELIVER, DELIVER]
        )
        a, b = targets(store, root)[:2]
        store.modify_value(a, 99)  # seq 1, held
        store.modify_value(b, 99)  # seq 2, parked (gap at 1)
        store.modify_value(a, 10)  # seq 3 — ages the hold: 1 arrives late
        ingress = wh.ingress["S1"].stats
        assert ingress.held >= 1
        assert ingress.max_lag >= 1
        assert wh.ingress["S1"].next_expected == 4
        assert not wh.ingress["S1"].pending
        assert wview.members() == truth(store)
        assert_quiescent(wh)


class TestGapRecovery:
    def test_heal_replays_lost_notifications(self):
        wh, channel, store, root, wview = build(
            messages=[FaultEvent(FaultKind.DROP), DELIVER]
        )
        a, b = targets(store, root)[:2]
        store.modify_value(a, 99)  # seq 1 lost
        store.modify_value(b, 99)  # seq 2 parked behind the gap
        assert wh.ingress["S1"].pending  # gap visible pre-heal
        resynced = wh.heal()
        assert resynced == 0  # replay sufficed, no recomputation
        assert wh.counters.notifications_replayed == 1
        assert wh.ingress["S1"].stats.replayed == 1
        assert not wh.ingress["S1"].pending
        assert wview.members() == truth(store)
        assert_quiescent(wh)

    def test_heal_is_idempotent(self):
        wh, channel, store, root, wview = build(
            messages=[FaultEvent(FaultKind.DROP)]
        )
        store.modify_value(targets(store, root)[0], 99)
        wh.heal()
        before = wh.counters.notifications_replayed
        assert wh.heal() == 0
        assert wh.counters.notifications_replayed == before

    def test_evicted_history_falls_back_to_resync(self):
        wh, channel, store, root, wview = build(
            messages=[FaultEvent(FaultKind.DROP)]
        )
        wh.monitors["S1"].history_limit = 2
        atoms = targets(store, root)
        store.modify_value(atoms[0], 99)  # seq 1 lost...
        for value in (60, 70, 80, 90):  # ...then evicted from history
            store.modify_value(atoms[0], value)
        resynced = wh.heal()
        assert resynced == 1
        assert wh.counters.view_resyncs == 1
        assert wview.stats.resyncs == 1
        assert not wview.needs_resync
        assert wh.ingress["S1"].next_expected == (
            wh.monitors["S1"].last_sequence + 1
        )
        assert wview.members() == truth(store)
        assert_quiescent(wh)


class TestRetryBackoff:
    def test_delay_is_capped_exponential(self):
        policy = RetryPolicy(
            max_retries=5, base_delay=1.0, multiplier=2.0, max_delay=5.0
        )
        assert [policy.delay(k) for k in range(1, 6)] == [
            1.0,
            2.0,
            4.0,
            5.0,
            5.0,
        ]
        assert policy.total_budget() == 17.0

    def test_timeout_then_late_reply_race_is_benign(self):
        """The answer is lost *after* the source served: source-side
        work happened twice, the warehouse saw one logical query."""
        wh, channel, store, root, wview = build(queries=[True])
        source = wh.monitors["S1"].source
        served_before = source.queries_served
        link = wh.links["S1"]
        payload = link.fetch_object(root)
        assert payload is not None and payload.oid == root
        assert source.queries_served == served_before + 2
        assert wh.counters.query_timeouts == 1
        assert wh.counters.query_retries == 1
        assert link.retries_performed == 1

    def test_crashed_source_recovers_mid_retry(self):
        """Backoff waits advance the simulated clock, which brings the
        crashed source back before the retry budget runs out."""
        wh, channel, store, root, wview = build(
            messages=[FaultEvent(FaultKind.CRASH, downtime=3.0), DELIVER],
            retry=RetryPolicy(max_retries=4, base_delay=2.0, max_delay=4.0),
        )
        atoms = targets(store, root)
        # Crashes the source; maintaining this very notification needs
        # source queries, so the link retries — each backoff wait
        # advances the channel clock until the source comes back.
        store.modify_value(atoms[0], 99)
        assert not wh.monitors["S1"].source.crashed
        store.modify_value(atoms[0], 10)  # post-recovery maintenance
        assert channel.stats.recoveries == 1
        assert wh.counters.source_failures >= 1
        assert wh.counters.query_retries >= 1
        assert wview.members() == truth(store)
        assert_quiescent(wh)

    def test_exhausted_retries_flag_resync_then_heal_recovers(self):
        """When the source stays down past the whole backoff budget the
        view is flagged, the stream keeps flowing, and a later heal()
        rebuilds the view."""
        wh, channel, store, root, wview = build(
            messages=[
                FaultEvent(FaultKind.CRASH, downtime=1000.0),
                DELIVER,
            ],
            retry=RetryPolicy(max_retries=2, base_delay=1.0, max_delay=1.0),
        )
        atoms = targets(store, root)
        store.modify_value(atoms[0], 99)  # long crash
        store.modify_value(atoms[1], 99)  # maintenance fails, flagged
        assert wview.needs_resync
        assert wview.stats.failures >= 1
        assert wh.counters.source_failures >= 1
        # Source still down: resync fails too, the flag stays.
        assert wh.heal() == 0
        assert wview.needs_resync
        channel.drain()  # recovers the source
        assert wh.heal() == 1
        assert not wview.needs_resync
        assert wview.members() == truth(store)
        assert_quiescent(wh)

    def test_no_retry_policy_fails_fast(self):
        store, root = random_labelled_tree(
            nodes=10, labels=("a", "b"), seed=1
        )
        source = Source("S1", store, root)
        wh = Warehouse()
        wh.connect(source, level=ReportingLevel.OIDS_ONLY)  # retry=None
        wh.define_view("define mview W as: SELECT root0.a X", "S1")
        source.crash()
        with pytest.raises(SourceUnavailableError):
            wh.links["S1"].fetch_object(root)
        assert wh.links["S1"].failures == 1


class TestQueryFaultPropagation:
    def test_link_without_retry_propagates_timeout(self):
        wh, channel, store, root, wview = build(queries=[True])
        link = wh.links["S1"]
        link.retry = None
        with pytest.raises(QueryTimeoutError):
            link.fetch_object(root)
        assert wh.counters.query_timeouts == 1
        assert wh.counters.query_retries == 0
