"""Tests for the faulty channel: each fault kind, clock, drain."""

import pytest

from repro.chaos import FaultEvent, FaultKind, FaultyChannel, RecordedSchedule
from repro.chaos.faults import DELIVER
from repro.errors import QueryTimeoutError
from repro.warehouse import Monitor, ReportingLevel, Source
from repro.warehouse.protocol import QueryKind, SourceQuery


@pytest.fixture
def source(person_tree_store) -> Source:
    return Source("S1", person_tree_store, "ROOT")


def wire(source, messages=(), queries=()):
    """A monitor shipping through a scripted channel into a capture list."""
    channel = FaultyChannel(
        RecordedSchedule.scripted(messages=messages, queries=queries)
    )
    received = []
    channel.bind(
        Monitor(source, ReportingLevel.OIDS_ONLY),
        lambda n, late=False: received.append((n.sequence, late)),
    )
    return channel, received


class TestMessageFaults:
    def test_drop_loses_the_message(self, source, person_tree_store):
        channel, received = wire(source, messages=[FaultEvent(FaultKind.DROP)])
        person_tree_store.modify_value("A1", 46)
        assert received == []
        assert channel.stats.sent == 1 and channel.stats.dropped == 1

    def test_duplicate_delivers_twice(self, source, person_tree_store):
        channel, received = wire(
            source, messages=[FaultEvent(FaultKind.DUPLICATE)]
        )
        person_tree_store.modify_value("A1", 46)
        assert received == [(1, False), (1, False)]
        assert channel.stats.duplicated == 1
        assert channel.stats.delivered == 2

    def test_delay_reorders_and_marks_late(self, source, person_tree_store):
        channel, received = wire(
            source,
            messages=[FaultEvent(FaultKind.DELAY, hold=1), DELIVER],
        )
        person_tree_store.modify_value("A1", 46)  # held
        assert received == []
        person_tree_store.modify_value("A1", 47)  # ages the hold first
        assert received == [(1, True), (2, False)]
        assert channel.stats.delayed == 1 and channel.stats.released == 1

    def test_crash_downs_the_source_but_ships_the_notification(
        self, source, person_tree_store
    ):
        channel, received = wire(
            source, messages=[FaultEvent(FaultKind.CRASH, downtime=3.0)]
        )
        person_tree_store.modify_value("A1", 46)
        assert received == [(1, False)]  # the update committed pre-crash
        assert source.crashed
        channel.advance(2.9)
        assert source.crashed
        channel.advance(0.1)
        assert not source.crashed
        assert channel.stats.crashes == 1 and channel.stats.recoveries == 1

    def test_disarmed_channel_is_a_clean_pipe(
        self, source, person_tree_store
    ):
        channel, received = wire(source, messages=[FaultEvent(FaultKind.DROP)])
        channel.armed = False
        person_tree_store.modify_value("A1", 46)
        assert received == [(1, False)]
        # The scripted drop was not consumed: arming replays it next.
        channel.armed = True
        person_tree_store.modify_value("A1", 47)
        assert received == [(1, False)]
        assert channel.stats.dropped == 1


class TestQueryFaults:
    def test_scripted_timeout_raises_after_service(self, source):
        channel, _ = wire(source, queries=[True, False])
        query = SourceQuery(QueryKind.FETCH_OBJECT, "P1")
        with pytest.raises(QueryTimeoutError):
            channel.on_query(query)
        channel.on_query(query)  # second draw is clean
        assert channel.stats.query_timeouts == 1

    def test_disarmed_channel_never_times_out(self, source):
        channel, _ = wire(source, queries=[True])
        channel.armed = False
        channel.on_query(SourceQuery(QueryKind.FETCH_OBJECT, "P1"))
        assert channel.stats.query_timeouts == 0


class TestQuiescing:
    def test_drain_recovers_then_releases(self, source, person_tree_store):
        channel, received = wire(
            source,
            messages=[
                FaultEvent(FaultKind.DELAY, hold=50),
                FaultEvent(FaultKind.CRASH, downtime=5.0),
            ],
        )
        person_tree_store.modify_value("A1", 46)  # held far out
        person_tree_store.modify_value("A1", 47)  # crashes the source
        assert not channel.idle
        released = channel.drain()
        assert released == 1
        assert channel.idle
        assert not source.crashed
        # Late release arrives after the in-order crash notification.
        assert received == [(2, False), (1, True)]

    def test_idle_when_nothing_in_flight(self, source):
        channel, _ = wire(source)
        assert channel.idle
        assert channel.drain() == 0
