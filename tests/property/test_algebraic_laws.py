"""Algebraic laws of the query language and serialization round trips.

* ``WITHIN`` can only shrink results; scoping with the full database is
  the identity (the paper's Section 2 example).
* ``ANS INT DB`` equals the unscoped answer intersected with
  ``value(DB)`` — by definition, checked observationally.
* Serialization round-trips arbitrary stores exactly.
* Set operations on objects behave like their set-theoretic models.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.property.support import common_settings

from repro.gsdb import DatabaseRegistry, ObjectStore, load_store
from repro.gsdb.database import difference, intersect, union
from repro.gsdb.serialization import dump_store
from repro.query import QueryEvaluator, parse_query
from repro.workloads import random_labelled_tree

COMMON = common_settings(30)

QUERIES = (
    "SELECT root0.a X",
    "SELECT root0.* X WHERE X.b > 50",
    "SELECT root0.?.? X",
    "SELECT root0.a|b X WHERE X.c < 70",
)


def build(seed: int, nodes: int = 25):
    store, root = random_labelled_tree(
        nodes=nodes, labels=("a", "b", "c"), seed=seed
    )
    registry = DatabaseRegistry(store)
    all_oids = list(store.oids())
    registry.create_database("ALL", all_oids)
    rng = random.Random(seed + 7)
    subset = [oid for oid in all_oids if rng.random() < 0.7]
    registry.create_database("SOME", subset)
    return store, registry, QueryEvaluator(registry)


class TestScopingLaws:
    @given(
        seed=st.integers(0, 10_000),
        query_index=st.integers(0, len(QUERIES) - 1),
    )
    @settings(**COMMON)
    def test_within_shrinks(self, seed, query_index):
        store, registry, evaluator = build(seed)
        free = evaluator.evaluate_oids(QUERIES[query_index])
        scoped = evaluator.evaluate_oids(
            QUERIES[query_index] + " WITHIN SOME"
        )
        assert scoped <= free

    @given(
        seed=st.integers(0, 10_000),
        query_index=st.integers(0, len(QUERIES) - 1),
    )
    @settings(**COMMON)
    def test_within_full_database_is_identity(self, seed, query_index):
        store, registry, evaluator = build(seed)
        free = evaluator.evaluate_oids(QUERIES[query_index])
        scoped = evaluator.evaluate_oids(
            QUERIES[query_index] + " WITHIN ALL"
        )
        assert scoped == free

    @given(
        seed=st.integers(0, 10_000),
        query_index=st.integers(0, len(QUERIES) - 1),
    )
    @settings(**COMMON)
    def test_ans_int_is_intersection(self, seed, query_index):
        store, registry, evaluator = build(seed)
        free = evaluator.evaluate_oids(QUERIES[query_index])
        restricted = evaluator.evaluate_oids(
            QUERIES[query_index] + " ANS INT SOME"
        )
        assert restricted == free & registry.members("SOME")

    @given(
        seed=st.integers(0, 10_000),
        query_index=st.integers(0, len(QUERIES) - 1),
    )
    @settings(**COMMON)
    def test_evaluation_is_deterministic(self, seed, query_index):
        store, registry, evaluator = build(seed)
        query = parse_query(QUERIES[query_index])
        assert evaluator.evaluate_oids(query) == evaluator.evaluate_oids(
            query
        )


class TestSerializationRoundTrip:
    @given(seed=st.integers(0, 10_000), nodes=st.integers(1, 50))
    @settings(**COMMON)
    def test_dump_load_identity(self, seed, nodes):
        store, _ = random_labelled_tree(
            nodes=nodes, labels=("a", "b"), seed=seed
        )
        restored = load_store(dump_store(store))
        assert sorted(restored.oids()) == sorted(store.oids())
        for oid in store.oids():
            assert restored.get(oid) == store.get(oid)

    @given(seed=st.integers(0, 10_000))
    @settings(**COMMON)
    def test_double_round_trip_stable(self, seed):
        store, _ = random_labelled_tree(nodes=20, labels=("a",), seed=seed)
        once = dump_store(load_store(dump_store(store)))
        assert once == dump_store(store)


class TestSetOperationLaws:
    @given(seed=st.integers(0, 10_000))
    @settings(**COMMON)
    def test_union_intersect_difference_model(self, seed):
        rng = random.Random(seed)
        store = ObjectStore()
        oids = [f"x{i}" for i in range(10)]
        for oid in oids:
            store.add_atomic(oid, "v", 0)
        a = store.add_set("A", "s", rng.sample(oids, rng.randint(0, 10)))
        b = store.add_set("B", "s", rng.sample(oids, rng.randint(0, 10)))
        assert union(store, a, b).children() == a.children() | b.children()
        assert intersect(store, a, b).children() == (
            a.children() & b.children()
        )
        assert difference(store, a, b).children() == (
            a.children() - b.children()
        )
