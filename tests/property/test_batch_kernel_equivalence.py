"""Property suite: batch kernel ≡ interpreted dispatcher ≡ recompute.

The vectorized write path (:mod:`repro.views.batch_kernel`) must leave
every view extent byte-identical to the interpreted dispatcher's — on
random tree bases, random batched update streams (attach / detach /
move / modify, random batch sizes), for simple, condition-free, and
extended (wildcard) views together in one catalog, serial and sharded
(1/2/4 shards), and with a pinned-stale snapshot forcing the
interpreted fallback mid-flight.  Hypothesis draws seeds; every
generator is a deterministic function of them, so failures replay.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gsdb import ObjectStore, ParentIndex
from repro.gsdb.columnar import enable_columnar
from repro.gsdb.sharding import ShardedParentIndex, ShardedStore
from repro.gsdb.traversal import descendants
from repro.views import (
    ExtendedViewMaintainer,
    MaterializedView,
    SimpleViewMaintainer,
    ViewDefinition,
    check_consistency,
    populate_view,
)
from repro.views.dispatcher import MaintenanceDispatcher
from repro.views.parallel import ParallelDispatcher
from tests.property.support import common_settings

COMMON = common_settings(10)

LABELS = ("a", "b", "c")

#: One catalog, three screen shapes: a prefix view with a condition, a
#: condition-free prefix view, and a wildcard (extended) view.
VIEW_DEFS = (
    ("simple", "define mview SV as: SELECT root0.a.b X WHERE X.c > 50"),
    ("simple", "define mview NV as: SELECT root0.a X"),
    ("extended", "define mview EV as: SELECT root0.* X WHERE X.c > 50"),
)

MODES = ("interp", "kernel", "kernel-shard2", "kernel-shard4", "stale")


def build_tree(store, seed: int, nodes: int) -> None:
    """A deterministic random tree under root0, on any store."""
    rng = random.Random(seed)
    store.add_set("root0", "root")
    sets = ["root0"]
    for i in range(nodes):
        oid = f"n{i}"
        label = rng.choice(LABELS)
        if rng.random() < 0.4:
            store.add_atomic(oid, label, rng.randint(0, 100))
        else:
            store.add_set(oid, label)
            sets.append(oid)
        store.insert_edge(rng.choice(sets[:-1] or ["root0"]), oid)


def _sets(store) -> list[str]:
    return sorted(
        oid
        for oid in store.oids()
        if not oid.startswith(("SV", "NV", "EV")) and store.peek(oid).is_set
    )


def mutate(store, rng: random.Random, tag: int) -> None:
    """One tree-preserving mutation (the base stays a forest)."""
    op = rng.randrange(4)
    sets = _sets(store)
    if op == 0:  # attach a fresh node
        oid = f"fresh{tag}"
        label = rng.choice(LABELS)
        if rng.random() < 0.5:
            store.add_atomic(oid, label, rng.randint(0, 100))
        else:
            store.add_set(oid, label)
        store.insert_edge(rng.choice(sets), oid)
    elif op == 1:  # detach a subtree
        parents = [s for s in sets if store.peek(s).children()]
        if not parents:
            return
        parent = rng.choice(parents)
        child = rng.choice(sorted(store.peek(parent).children()))
        store.delete_edge(parent, child)
    elif op == 2:  # move a subtree (cycle-guarded)
        movable = [
            oid
            for oid in sorted(store.oids())
            if oid != "root0" and not oid.startswith(("SV", "NV", "EV"))
        ]
        victim = rng.choice(movable)
        below = descendants(store, victim) | {victim}
        targets = [s for s in sets if s not in below]
        if not targets:
            return
        for parent in sets:
            if victim in store.peek(parent).children():
                store.delete_edge(parent, victim)
                break
        store.insert_edge(rng.choice(targets), victim)
    else:  # modify an atom
        atoms = sorted(
            oid
            for oid in store.oids()
            if not oid.startswith(("SV", "NV", "EV"))
            and not store.peek(oid).is_set
        )
        if atoms:
            store.modify_value(rng.choice(atoms), rng.randint(0, 100))


def run_mode(mode: str, seed: int, nodes: int, steps: int):
    if mode.endswith("-shard2"):
        store = ShardedStore(shards=2)
    elif mode.endswith("-shard4"):
        store = ShardedStore(shards=4)
    else:
        store = ObjectStore()
    sharded = isinstance(store, ShardedStore)
    build_tree(store, seed, nodes)
    parent_index = (
        ShardedParentIndex(store) if sharded else ParentIndex(store)
    )
    dispatcher = (
        ParallelDispatcher(
            store, parent_index=parent_index, subscribe=True, workers=2
        )
        if sharded
        else MaintenanceDispatcher(
            store, parent_index=parent_index, subscribe=True
        )
    )
    if not mode.startswith("interp"):
        enable_columnar(store, auto_refresh=(mode != "stale"))
        if mode == "stale":
            # Build one snapshot, then pin it: every batch arrives
            # stale and must decline to the interpreted dispatcher.
            getattr(store, "columnar").refresh()
        dispatcher.batch_kernel = True
    views = []
    for kind, text in VIEW_DEFS:
        view = MaterializedView(
            ViewDefinition.parse(text), store, ObjectStore()
        )
        populate_view(view)
        maintainer_cls = (
            SimpleViewMaintainer if kind == "simple" else ExtendedViewMaintainer
        )
        dispatcher.register(
            maintainer_cls(view, parent_index=parent_index, subscribe=False)
        )
        views.append(view)
    rng = random.Random(seed ^ 0x5EED)
    tag = 0
    remaining = steps
    while remaining > 0:
        chunk = min(remaining, rng.randint(1, 8))
        with dispatcher.batch():
            for _ in range(chunk):
                mutate(store, rng, tag)
                tag += 1
        remaining -= chunk
    extents = {
        view.definition.name: frozenset(view.members()) for view in views
    }
    return extents, views, store, dispatcher


class TestBatchKernelEquivalence:
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(8, 40),
        steps=st.integers(1, 24),
    )
    @settings(**COMMON)
    def test_all_modes_agree_and_audit_clean(self, seed, nodes, steps):
        baseline = None
        for mode in MODES:
            extents, views, store, dispatcher = run_mode(
                mode, seed, nodes, steps
            )
            for view in views:
                report = check_consistency(view)
                assert report.ok, (mode, report.describe())
            if baseline is None:
                baseline = extents
            else:
                assert extents == baseline, mode
            counters = (
                store.combined_counters()
                if isinstance(store, ShardedStore)
                else store.counters
            )
            if mode == "interp":
                assert dispatcher.batch_kernel_batches == 0
            elif mode == "stale":
                # Every surviving batch declined; nothing ran vectorized.
                assert dispatcher.batch_kernel_batches == 0
                if dispatcher.updates_dispatched:
                    assert counters.batch_kernel_fallbacks > 0
            else:
                # Live kernel: no fallbacks, and every surviving batch
                # went through the vectorized path.
                assert counters.batch_kernel_fallbacks == 0, mode
                if dispatcher.updates_dispatched:
                    assert dispatcher.batch_kernel_batches > 0, mode

    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(8, 30),
        steps=st.integers(1, 16),
    )
    @settings(**COMMON)
    def test_kernel_screening_matches_precomputed_interpreted(
        self, seed, nodes, steps
    ):
        """Verdict-for-verdict equality against the dispatcher that
        shares the kernel's screening semantics: the parallel
        dispatcher also precomputes every verdict before any apply
        (pre-batch ``view.contains``, frozen final base), so over the
        same sharded store the kernel must screen exactly the same
        (update, view) pairs and dispatch the same survivors.  (The
        *serial* interpreted dispatcher interleaves screening with
        apply, so its membership-refresh verdicts can conservatively
        differ — extents still match, the other test's property.)"""
        _, _, interp_store, interp_disp = run_mode(
            "interp-shard2", seed, nodes, steps
        )
        _, _, kernel_store, kernel_disp = run_mode(
            "kernel-shard2", seed, nodes, steps
        )
        assert (
            kernel_store.combined_counters().updates_screened
            == interp_store.combined_counters().updates_screened
        )
        assert (
            kernel_disp.updates_dispatched == interp_disp.updates_dispatched
        )
