"""Property-based tests for the read-path serving layer.

The central claim of experiment E16: for *any* seeded interleaving of
valid updates and reads, every served answer — cached or not, frontier
or classic — is identical to fresh uncached node-at-a-time evaluation.
Failures shrink over the seed, step count, and the update mix.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.property.support import common_settings

from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.indexes import LabelIndex, ParentIndex
from repro.paths.automaton import compile_expression
from repro.paths.expression import PathExpression
from repro.query.evaluator import QueryEvaluator
from repro.serving import QueryServer
from repro.workloads import TreeSpec, layered_tree
from repro.workloads.serving import build_query_pool, run_serving_workload
from repro.workloads.updates import UpdateMix, UpdateStream

COMMON = common_settings(15)

mix_strategy = st.builds(
    UpdateMix,
    insert=st.floats(0.1, 3.0),
    delete=st.floats(0.1, 3.0),
    modify=st.floats(0.1, 3.0),
)


def build_serving_env(seed: int, cache_size: int):
    spec = TreeSpec(depth=3, fanout=3, seed=seed)
    store, root = layered_tree(spec)
    registry = DatabaseRegistry(store)
    server = QueryServer(
        registry,
        parent_index=ParentIndex(store),
        label_index=LabelIndex(store),
        cache_size=cache_size,
    )
    pool = build_query_pool(root, spec, store=store)
    return store, root, spec, server, pool


class TestServedAnswersNeverStale:
    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(1, 60),
        read_ratio=st.floats(0.1, 0.95),
        cache_size=st.sampled_from([1, 4, 64]),
        mix=mix_strategy,
    )
    @settings(**COMMON)
    def test_workload_oracle_zero_mismatches(
        self, seed, steps, read_ratio, cache_size, mix
    ):
        result = run_serving_workload(
            seed=seed,
            steps=steps,
            read_ratio=read_ratio,
            cache_size=cache_size,
            mix=mix,
            audit_every=7,
        )
        assert result.oracle_mismatches == 0, result.stale_reads

    @given(
        seed=st.integers(0, 10_000),
        updates=st.integers(0, 25),
        mix=mix_strategy,
    )
    @settings(**COMMON)
    def test_cached_equals_uncached_equals_frontier(
        self, seed, updates, mix
    ):
        store, root, spec, server, pool = build_serving_env(seed, 64)
        fresh = QueryEvaluator(server.registry)
        stream = UpdateStream(
            store, seed=seed + 1, mix=mix, protected=frozenset({root})
        )
        # Warm the cache, churn the base, then check every query three
        # ways: served (cache + frontier), fresh classic, fresh frontier.
        for text in pool:
            server.evaluate_oids(text)
        for _ in range(updates):
            stream.step()
        for text in pool:
            served = server.evaluate_oids(text)
            assert served == fresh.evaluate_oids(text), text
        for k in range(1, spec.depth + 1):
            nfa = compile_expression(
                PathExpression.parse(".".join(spec.labels[:k]))
            )
            assert nfa.evaluate_frontier(
                store, root, label_index=server.label_index
            ) == nfa.evaluate(store, root)


class TestFrontierEquivalence:
    @given(
        seed=st.integers(0, 10_000),
        depth=st.integers(1, 4),
        fanout=st.integers(1, 4),
        updates=st.integers(0, 15),
        indexed=st.booleans(),
    )
    @settings(**COMMON)
    def test_frontier_matches_classic_after_churn(
        self, seed, depth, fanout, updates, indexed
    ):
        spec = TreeSpec(depth=depth, fanout=fanout, seed=seed)
        store, root = layered_tree(spec)
        index = LabelIndex(store) if indexed else None
        stream = UpdateStream(
            store, seed=seed + 1, protected=frozenset({root})
        )
        for _ in range(updates):
            stream.step()
        expressions = [
            ".".join(spec.labels[:k]) for k in range(1, depth + 1)
        ] + ["*", "?", f"*.{spec.labels[-1]}"]
        for text in expressions:
            nfa = compile_expression(PathExpression.parse(text))
            assert nfa.evaluate_frontier(
                store, root, label_index=index
            ) == nfa.evaluate(store, root), text
