"""Property-based tests for the chaos layer.

The central claim of experiment E15: for *any* seeded fault schedule
(drops, duplicates, reorderings, crashes, query timeouts), at any
reporting level, the warehouse settles — drain + heal — into a state
where every view is byte-equal to fresh recomputation.  Failures shrink
over the seed, step count, and fault rates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.property.support import common_settings

from repro.chaos import ChaosHarness, FaultRates
from repro.warehouse import CachePolicy

COMMON = common_settings(20)

#: The CI chaos job's pinned seeds (kept cheap: one run each).
CI_SEEDS = (7, 1031, 90210)

rates_strategy = st.builds(
    FaultRates,
    drop=st.floats(0.0, 0.3),
    duplicate=st.floats(0.0, 0.3),
    reorder=st.floats(0.0, 0.3),
    crash=st.floats(0.0, 0.1),
    timeout=st.floats(0.0, 0.5),
)


class TestQuiescence:
    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(1, 30),
        level=st.sampled_from([1, 2, 3]),
        rates=rates_strategy,
    )
    @settings(**COMMON)
    def test_always_settles_quiescent(self, seed, steps, level, rates):
        harness = ChaosHarness(
            seed=seed, nodes=20, level=level, rates=rates
        )
        report = harness.run(steps)
        assert report.settled
        assert report.quiescent, report.describe()

    @given(
        seed=st.integers(0, 5_000),
        rates=rates_strategy,
        policy=st.sampled_from(list(CachePolicy)),
    )
    @settings(**COMMON)
    def test_cached_views_also_quiesce(self, seed, rates, policy):
        harness = ChaosHarness(
            seed=seed, nodes=20, rates=rates, cache_policy=policy
        )
        report = harness.run(20)
        assert report.quiescent, report.describe()

    @given(
        seed=st.integers(0, 5_000),
        batches=st.integers(1, 5),
        batch_size=st.integers(1, 6),
        rates=rates_strategy,
    )
    @settings(**COMMON)
    def test_batched_traffic_quiesces(self, seed, batches, batch_size, rates):
        harness = ChaosHarness(seed=seed, nodes=20, rates=rates)
        report = harness.run_batches(batches, batch_size)
        assert report.quiescent, report.describe()


class TestDeterminism:
    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(1, 25),
        level=st.sampled_from([1, 2, 3]),
        rates=rates_strategy,
    )
    @settings(**COMMON)
    def test_same_seed_same_run(self, seed, steps, level, rates):
        first = ChaosHarness(
            seed=seed, nodes=20, level=level, rates=rates
        )
        second = ChaosHarness(
            seed=seed, nodes=20, level=level, rates=rates
        )
        a, b = first.run(steps), second.run(steps)
        assert first.schedule.record == second.schedule.record
        assert a.describe() == b.describe()
        assert a.channel == b.channel
        assert a.ingress == b.ingress
        assert a.recovery.as_dict() == b.recovery.as_dict()


class TestPinnedSeeds:
    """The CI chaos job's fixed-seed runs — cheap, deterministic, and
    heavy enough to exercise every recovery path."""

    def test_ci_seeds_quiesce_at_every_level(self):
        rates = FaultRates(
            drop=0.2, duplicate=0.15, reorder=0.15, crash=0.05, timeout=0.2
        )
        for seed in CI_SEEDS:
            for level in (1, 2, 3):
                report = ChaosHarness(
                    seed=seed, nodes=25, level=level, rates=rates
                ).run(60)
                assert report.quiescent, report.describe()

    def test_ci_seeds_exercise_recovery(self):
        """The pinned runs are not vacuous: faults actually fired and
        recovery actions actually ran."""
        rates = FaultRates(
            drop=0.2, duplicate=0.15, reorder=0.15, crash=0.05, timeout=0.2
        )
        for seed in CI_SEEDS:
            report = ChaosHarness(seed=seed, nodes=25, rates=rates).run(60)
            assert report.channel.dropped > 0
            assert report.channel.duplicated > 0
            assert report.recovery_actions() > 0
