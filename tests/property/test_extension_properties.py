"""Property-based tests for the Section 6 open-issue extensions.

* Aggregate views track a from-scratch recomputation under random
  update streams.
* Partial views keep every fragment copy exactly equal to base state.
* Multi-path views equal the union of their branches' truths.
* The bulk screen is sound: a screened (declared-irrelevant) bulk never
  changes the view it was screened for.
"""

import random

from hypothesis import given, settings

from tests.property.support import common_settings
from hypothesis import strategies as st

from repro.gsdb import ObjectStore, ParentIndex
from repro.paths import PathExpression
from repro.query.ast import Comparison
from repro.views import (
    AggregateKind,
    AggregateView,
    MaterializedView,
    MultiPathView,
    PartialMaterializedView,
    SimpleViewMaintainer,
    ViewDefinition,
    compute_view_members,
    populate_view,
)
from repro.warehouse import BulkUpdate, bulk_is_relevant, execute_bulk
from repro.workloads import UpdateStream, random_labelled_tree

COMMON = common_settings(20)

DEF = "define mview V as: SELECT root0.a X WHERE X.b > 50"


def run_stream(store, root, seed, steps):
    UpdateStream(
        store,
        seed=seed,
        protected=frozenset({root}),
        protected_prefixes=("V", "AGG"),
        labels_for_new=("a", "b", "c"),
    ).run(steps)


class TestAggregateProperties:
    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(1, 20),
        kind=st.sampled_from(list(AggregateKind)),
    )
    @settings(**COMMON)
    def test_aggregate_tracks_recomputation(self, seed, steps, kind):
        store, root = random_labelled_tree(
            nodes=25, labels=("a", "b", "c"), seed=seed
        )
        index = ParentIndex(store)
        view = MaterializedView(ViewDefinition.parse(DEF), store)
        populate_view(view)
        SimpleViewMaintainer(view, parent_index=index, subscribe=True)
        aggregate = AggregateView("AGG", view, kind, subscribe=True)
        run_stream(store, root, seed + 1, steps)
        maintained = aggregate.current_value()
        aggregate.refresh_all()
        assert aggregate.current_value() == maintained


class TestPartialProperties:
    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(1, 20),
        depth=st.integers(1, 3),
    )
    @settings(**COMMON)
    def test_fragments_stay_exact(self, seed, steps, depth):
        store, root = random_labelled_tree(
            nodes=25, labels=("a", "b", "c"), seed=seed
        )
        index = ParentIndex(store)
        view = PartialMaterializedView(
            ViewDefinition.parse(DEF), store, depth=depth
        )
        index.ignore_view("V")
        SimpleViewMaintainer(view, parent_index=index, subscribe=True)  # type: ignore[arg-type]
        view.load_members(
            compute_view_members(view.definition, store)
        )
        store.subscribe(view.handle_fragment_update)
        run_stream(store, root, seed + 1, steps)
        assert view.members() == compute_view_members(
            view.definition, store
        )
        assert view.check_fragments() == []


class TestMultiPathProperties:
    DEFS = (
        "define mview V as: SELECT root0.a X WHERE X.b > 50",
        "define mview V as: SELECT root0.b X WHERE X.a < 40",
        "define mview V as: SELECT root0.c X",
    )

    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(1, 20),
        branch_count=st.integers(1, 3),
    )
    @settings(**COMMON)
    def test_union_invariant(self, seed, steps, branch_count):
        store, root = random_labelled_tree(
            nodes=25, labels=("a", "b", "c"), seed=seed
        )
        index = ParentIndex(store)
        view = MultiPathView(
            "V", self.DEFS[:branch_count], store, parent_index=index
        )
        run_stream(store, root, seed + 1, steps)
        assert view.check()


def _random_payroll(rng: random.Random, people: int) -> ObjectStore:
    s = ObjectStore()
    names = ("Mark", "John", "Jane", "Mara")
    for i in range(people):
        s.add_atomic(f"n{i}", "name", rng.choice(names))
        s.add_atomic(f"s{i}", "salary", rng.randint(1, 100))
        s.add_set(f"e{i}", "person", [f"n{i}", f"s{i}"])
    s.add_set("ROOT", "company", [f"e{i}" for i in range(people)])
    return s


class TestBulkScreenSoundness:
    GUARD_NAMES = ("Mark", "John", "Jane")
    COND_CHOICES = (
        "define mview V as: SELECT ROOT.person X WHERE X.name = 'John'",
        "define mview V as: SELECT ROOT.person X WHERE X.salary > 50",
        "define mview V as: SELECT ROOT.person X WHERE X.name = 'Mark'",
        "define mview V as: SELECT ROOT.person X",
    )

    @given(
        seed=st.integers(0, 10_000),
        people=st.integers(3, 15),
        guard_name=st.sampled_from(GUARD_NAMES),
        def_index=st.integers(0, len(COND_CHOICES) - 1),
        delta=st.integers(-30, 30),
        depth=st.integers(1, 2),
    )
    @settings(**COMMON)
    def test_screened_bulk_never_changes_the_view(
        self, seed, people, guard_name, def_index, delta, depth
    ):
        rng = random.Random(seed)
        store = _random_payroll(rng, people)
        definition = ViewDefinition.parse(self.COND_CHOICES[def_index])
        bulk = BulkUpdate(
            owner_path=PathExpression.parse("person"),
            guard=Comparison(PathExpression.parse("name"), "=", guard_name),
            target_label="salary",
            transform=lambda v: v + delta,
        )
        if bulk_is_relevant(definition, bulk, fragment_depth=depth):
            return  # nothing to check: the screen made no promise

        index = ParentIndex(store)
        view = PartialMaterializedView(definition, store, depth=depth)
        index.ignore_view("V")
        SimpleViewMaintainer(view, parent_index=index, subscribe=True)  # type: ignore[arg-type]
        view.load_members(compute_view_members(definition, store))
        store.subscribe(view.handle_fragment_update)

        members_before = view.members()
        values_before = {
            oid: (obj.value if (obj := view.delegate(oid)) is not None
                  and obj.is_atomic else None)
            for oid in view.copied_oids()
        }
        execute_bulk(store, "ROOT", bulk)
        assert view.members() == members_before
        values_after = {
            oid: (obj.value if (obj := view.delegate(oid)) is not None
                  and obj.is_atomic else None)
            for oid in view.copied_oids()
        }
        assert values_after == values_before
