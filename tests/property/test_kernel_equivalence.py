"""Property suite: kernel ≡ frontier ≡ node-at-a-time evaluation.

The columnar kernel (:func:`evaluate_on_snapshot`) must compute exactly
the member set of the interpreted evaluators — on random graph shapes,
for expressions with cycles / wildcards / alternation, from present and
absent entry points, and across mid-stream updates that force delta
refreshes or (with auto-refresh off) the interpreted fallback.  Seeds
are drawn by hypothesis but every generator is seed-deterministic, so
failures replay exactly.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gsdb import ObjectStore
from repro.gsdb.columnar import enable_columnar
from repro.gsdb.gc import reachable_from
from repro.paths import PathExpression, compile_expression
from repro.paths.kernel import (
    evaluate_many_on_snapshot,
    evaluate_on_snapshot,
    reachable_on_snapshot,
)
from tests.property.support import common_settings

COMMON = common_settings(15)

EXPRESSIONS = (
    "a",
    "a.b",
    "*",
    "a.*",
    "?.b",
    "*.c",
    "(a|b).?",
    "a.*.c",
)

expression_st = st.sampled_from(EXPRESSIONS)


def build_store(seed: int, nodes: int) -> tuple[ObjectStore, str]:
    from repro.workloads.generators import random_labelled_tree

    store, root = random_labelled_tree(
        nodes=nodes,
        labels=("a", "b", "c"),
        atomic_fraction=0.4,
        seed=seed,
    )
    # Densify into a DAG with possible cycles: extra edges between
    # existing set objects (check_references holds — both ends exist).
    rng = random.Random(seed * 31 + 7)
    sets = sorted(o for o in store.oids() if store.peek(o).is_set)
    for _ in range(nodes // 4):
        parent, child = rng.choice(sets), rng.choice(sorted(store.oids()))
        if child not in store.peek(parent).children():
            store.insert_edge(parent, child)
    return store, root


def mutate(store: ObjectStore, rng: random.Random, tag: int) -> None:
    """One random basic update or (logged-bypassing) create/remove."""
    sets = sorted(o for o in store.oids() if store.peek(o).is_set)
    op = rng.randrange(5)
    if op == 0:
        parent = rng.choice(sets)
        child = rng.choice(sorted(store.oids()))
        if child not in store.peek(parent).children():
            store.insert_edge(parent, child)
    elif op == 1:
        parent = rng.choice(sets)
        children = sorted(store.peek(parent).children())
        if children:
            store.delete_edge(parent, rng.choice(children))
    elif op == 2:
        atoms = sorted(
            o for o in store.oids() if not store.peek(o).is_set
        )
        if atoms:
            store.modify_value(rng.choice(atoms), rng.randint(0, 100))
    elif op == 3:
        oid = f"new{tag}"
        label = rng.choice(("a", "b", "c"))
        if rng.random() < 0.5:
            store.add_atomic(oid, label, rng.randint(0, 100))
        else:
            store.add_set(oid, label, [])
        store.insert_edge(rng.choice(sets), oid)
    else:
        orphan_ok = [o for o in sorted(store.oids()) if o != "root0"]
        victim = rng.choice(orphan_ok)
        for parent in sets:
            if parent in store and victim in store.peek(parent).children():
                store.delete_edge(parent, victim)
        if victim in store:
            store.remove_object(victim)


def assert_all_equal(store, view, text: str, starts) -> None:
    nfa = compile_expression(PathExpression.parse(text))
    for start in starts:
        kernel = evaluate_on_snapshot(view, nfa, start)
        assert kernel == nfa.evaluate(store, start), (text, start)
        assert kernel == nfa.evaluate_frontier(store, start), (text, start)


class TestStaticEquivalence:
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(5, 60),
        text=expression_st,
    )
    @settings(**COMMON)
    def test_kernel_matches_both_evaluators(self, seed, nodes, text):
        store, root = build_store(seed, nodes)
        view = enable_columnar(store).current()
        assert_all_equal(store, view, text, [root, "node3", "absent"])

    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(5, 60),
        text=expression_st,
    )
    @settings(**COMMON)
    def test_multi_source_matches_per_start(self, seed, nodes, text):
        # evaluate_many must agree with the single-start kernel from
        # every object at once — overlapping reach sets, shared
        # substructure, cycles, and an absent start all at once.
        store, root = build_store(seed, nodes)
        view = enable_columnar(store).current()
        nfa = compile_expression(PathExpression.parse(text))
        starts = sorted(store.oids()) + ["absent", root]
        batched = evaluate_many_on_snapshot(view, nfa, starts)
        assert set(batched) == set(starts)
        for start in set(starts):
            assert batched[start] == evaluate_on_snapshot(
                view, nfa, start
            ), (text, start)

    @given(seed=st.integers(0, 10_000), nodes=st.integers(5, 40))
    @settings(**COMMON)
    def test_reachable_matches_interpreted(self, seed, nodes):
        store, root = build_store(seed, nodes)
        interpreted = reachable_from(store, {root})  # before enabling
        view = enable_columnar(store).current()
        assert reachable_on_snapshot(view, {root}) == interpreted


class TestMidStreamUpdates:
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(8, 40),
        steps=st.integers(1, 12),
        text=expression_st,
    )
    @settings(**COMMON)
    def test_delta_refresh_stays_equivalent(self, seed, nodes, steps, text):
        store, root = build_store(seed, nodes)
        manager = enable_columnar(store)
        manager.current()
        rng = random.Random(seed ^ 0xBEEF)
        for i in range(steps):
            mutate(store, rng, i)
            view = manager.current()
            assert view.is_fresh()
            assert_all_equal(store, view, text, [root, "absent"])

    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(8, 30),
        text=expression_st,
    )
    @settings(**COMMON)
    def test_tiny_threshold_forces_rebuilds(self, seed, nodes, text):
        # threshold so small every delta rebuilds: rebuild path must be
        # just as equivalent as the patch path.
        store, root = build_store(seed, nodes)
        manager = enable_columnar(store, rebuild_threshold=1e-9)
        manager.current()
        rng = random.Random(seed ^ 0xF00D)
        for i in range(4):
            mutate(store, rng, i)
        view = manager.current()
        assert manager.full_rebuilds >= 2
        assert_all_equal(store, view, text, [root])

    @given(seed=st.integers(0, 10_000), nodes=st.integers(8, 30))
    @settings(**COMMON)
    def test_stale_snapshot_never_serves(self, seed, nodes):
        store, root = build_store(seed, nodes)
        manager = enable_columnar(store, auto_refresh=False)
        manager.refresh()
        rng = random.Random(seed ^ 0xCAFE)
        mutate(store, rng, 0)  # may be a no-op depending on the draw...
        store.add_atomic("definitely-new", "a", 1)  # ...this never is
        # Stale + no auto refresh: the read path must fall back rather
        # than expose the pre-update extent.
        assert not manager.is_fresh()
        assert manager.current() is None
        manager.refresh()
        view = manager.current()
        assert view is not None
        assert_all_equal(store, view, "*", [root])
