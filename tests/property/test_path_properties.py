"""Property-based tests for the path machinery.

* NFA graph evaluation ≡ brute-force instance enumeration;
* instance matching ≡ membership in the evaluated set;
* containment decisions agree with sampled instances.
"""

from hypothesis import given, settings

from tests.property.support import common_settings
from hypothesis import strategies as st

from repro.gsdb.traversal import follow_path
from repro.paths import (
    PathExpression,
    compile_expression,
    is_contained,
    shortest_instance,
)
from repro.workloads import random_labelled_tree

COMMON = common_settings(40)

LABELS = ("a", "b", "c")

segment = st.sampled_from(["a", "b", "c", "?", "*", "a|b"])
expression_text = st.lists(segment, min_size=0, max_size=4).map(
    lambda segments: ".".join(segments)
)
path_labels = st.lists(st.sampled_from(LABELS), min_size=0, max_size=5)


class TestMatchingSemantics:
    @given(expr=expression_text, labels=path_labels)
    @settings(**COMMON)
    def test_nfa_accepts_iff_substitution_exists(self, expr, labels):
        """Cross-check the NFA against a direct recursive matcher."""
        expression = PathExpression.parse(expr)

        def brute(segments, remaining) -> bool:
            if not segments:
                return not remaining
            head, rest = segments[0], segments[1:]
            text = str(head)
            if text == "*":
                return any(
                    brute(rest, remaining[i:])
                    for i in range(len(remaining) + 1)
                )
            if not remaining:
                return False
            if text == "?" or remaining[0] in text.split("|"):
                return brute(rest, remaining[1:])
            return False

        assert expression.matches(labels) == brute(
            list(expression.segments), list(labels)
        )


class TestGraphEvaluation:
    @given(
        expr=expression_text,
        seed=st.integers(0, 5_000),
        nodes=st.integers(5, 40),
    )
    @settings(**COMMON)
    def test_nfa_equals_instance_union(self, expr, seed, nodes):
        """N.e must equal the union of N.p over all instances p —
        enumerated here by trying every label sequence up to the tree
        depth (trees are shallow enough to brute force)."""
        store, root = random_labelled_tree(
            nodes=nodes, labels=LABELS, seed=seed
        )
        expression = PathExpression.parse(expr)
        evaluated = compile_expression(expression).evaluate(store, root)

        brute: set[str] = set()
        # A tree of n nodes has paths no longer than n; the feasibility
        # prune below keeps the search linear in distinct label paths.
        max_depth = nodes

        def walk(labels: list[str]) -> None:
            if expression.matches(labels):
                brute.update(follow_path(store, root, labels))
            if len(labels) >= max_depth:
                return
            for label in LABELS:
                extended = labels + [label]
                # Prune: once no node lies on the prefix, no extension
                # can reach anything either.
                if follow_path(store, root, extended):
                    walk(extended)

        walk([])
        assert evaluated == brute


class TestContainmentAgreesWithSampling:
    @given(inner=expression_text, outer=expression_text)
    @settings(**COMMON)
    def test_shortest_instance_respects_containment(self, inner, outer):
        inner_e = PathExpression.parse(inner)
        outer_e = PathExpression.parse(outer)
        contained = is_contained(inner_e, outer_e)
        witness = shortest_instance(inner_e)
        assert witness is not None
        if contained:
            assert outer_e.matches(witness)

    @given(expr=expression_text)
    @settings(**COMMON)
    def test_containment_reflexive(self, expr):
        e = PathExpression.parse(expr)
        assert is_contained(e, e)

    @given(a=expression_text, b=expression_text, c=expression_text)
    @settings(**COMMON)
    def test_containment_transitive(self, a, b, c):
        ea, eb, ec = map(PathExpression.parse, (a, b, c))
        if is_contained(ea, eb) and is_contained(eb, ec):
            assert is_contained(ea, ec)

    @given(inner=expression_text, outer=expression_text)
    @settings(**COMMON)
    def test_counterexample_is_valid(self, inner, outer):
        from repro.paths import containment_counterexample

        inner_e = PathExpression.parse(inner)
        outer_e = PathExpression.parse(outer)
        witness = containment_counterexample(inner_e, outer_e)
        if witness is None:
            assert is_contained(inner_e, outer_e)
        else:
            assert inner_e.matches(witness)
            assert not outer_e.matches(witness)
