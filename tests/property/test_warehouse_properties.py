"""Property-based tests for warehouse maintenance.

Warehouse-maintained views must equal a from-scratch evaluation of the
definition against the current *source* state, for every combination of
reporting level, cache policy, and source capability, under random
update streams.
"""

from hypothesis import given, settings

from tests.property.support import common_settings
from hypothesis import strategies as st

from repro.views import ViewDefinition, compute_view_members
from repro.warehouse import (
    CachePolicy,
    ReportingLevel,
    Source,
    SourceCapability,
    Warehouse,
)
from repro.workloads import UpdateStream, random_labelled_tree

COMMON = common_settings(20)

DEF = "define mview V as: SELECT root0.a X WHERE X.b > 50"


class TestWarehouseEquivalence:
    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(1, 15),
        level=st.sampled_from([1, 2, 3]),
        policy=st.sampled_from(list(CachePolicy)),
        capability=st.sampled_from(list(SourceCapability)),
    )
    @settings(**COMMON)
    def test_members_match_source_truth(
        self, seed, steps, level, policy, capability
    ):
        store, root = random_labelled_tree(
            nodes=25, labels=("a", "b", "c"), seed=seed
        )
        source = Source("S1", store, root, capability=capability)
        wh = Warehouse()
        wh.connect(source, level=ReportingLevel(level))
        wview = wh.define_view(DEF, "S1", cache_policy=policy)
        stream = UpdateStream(
            store,
            seed=seed + 1,
            protected=frozenset({root}),
            labels_for_new=("a", "b", "c"),
        )
        stream.run(steps)
        truth = compute_view_members(ViewDefinition.parse(DEF), store)
        assert wview.members() == truth

    @given(seed=st.integers(0, 5_000), steps=st.integers(1, 12))
    @settings(**COMMON)
    def test_screening_never_loses_updates(self, seed, steps):
        """Screening (level 2 + knowledge) must stay semantically
        invisible: same final members with and without it."""
        results = []
        for screen in (True, False):
            store, root = random_labelled_tree(
                nodes=25, labels=("a", "b", "c"), seed=seed
            )
            wh = Warehouse()
            wh.connect(
                Source("S1", store, root),
                level=ReportingLevel.WITH_CONTENTS,
            )
            wview = wh.define_view(DEF, "S1", screen=screen)
            UpdateStream(
                store,
                seed=seed + 1,
                protected=frozenset({root}),
                labels_for_new=("a", "b", "c"),
            ).run(steps)
            results.append(wview.members())
        assert results[0] == results[1]
