"""Property-based tests: maintained views ≡ recomputed views.

The paper's correctness criterion (Section 4.3) checked under randomly
generated bases and update streams, for every maintainer:

* Algorithm 1 (simple views, trees), indexed and unindexed;
* the extended maintainer (wildcard/conjunctive views, trees);
* the DAG counting maintainer (simple views, layered DAGs).

Hypothesis drives the workload parameters and RNG seeds; the workload
generators themselves are deterministic functions of those.
"""

import random

from hypothesis import given, settings

from tests.property.support import common_settings
from hypothesis import strategies as st

from repro.gsdb import ObjectStore, ParentIndex
from repro.views import (
    DagCountingMaintainer,
    ExtendedViewMaintainer,
    MaterializedView,
    SimpleViewMaintainer,
    ViewDefinition,
    check_consistency,
    populate_view,
)
from repro.workloads import (
    UpdateMix,
    UpdateStream,
    layered_dag,
    random_labelled_tree,
)

COMMON = common_settings(25)


def build_tree(seed: int, nodes: int):
    store, root = random_labelled_tree(
        nodes=nodes,
        labels=("a", "b", "c"),
        value_range=(0, 100),
        atomic_fraction=0.5,
        seed=seed,
    )
    return store, root


SIMPLE_DEFS = (
    "define mview V as: SELECT root0.a X WHERE X.b > 50",
    "define mview V as: SELECT root0.a.b X WHERE X.c <= 30",
    "define mview V as: SELECT root0.b X",
    "define mview V as: SELECT root0.a X WHERE X.a = 77",
)

EXTENDED_DEFS = (
    "define mview V as: SELECT root0.* X WHERE X.b > 50",
    "define mview V as: SELECT root0.?.? X",
    "define mview V as: SELECT root0.a X WHERE X.b > 20 AND X.c < 80",
    "define mview V as: SELECT root0.a.* X WHERE X.*.b > 60",
)


class TestSimpleMaintenanceEquivalence:
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(10, 60),
        steps=st.integers(1, 25),
        def_index=st.integers(0, len(SIMPLE_DEFS) - 1),
        indexed=st.booleans(),
    )
    @settings(**COMMON)
    def test_view_equals_recompute_after_random_updates(
        self, seed, nodes, steps, def_index, indexed
    ):
        store, root = build_tree(seed, nodes)
        index = ParentIndex(store) if indexed else None
        view = MaterializedView(
            ViewDefinition.parse(SIMPLE_DEFS[def_index]), store
        )
        populate_view(view)
        SimpleViewMaintainer(view, parent_index=index, subscribe=True)
        stream = UpdateStream(
            store,
            seed=seed + 1,
            protected=frozenset({root}),
            protected_prefixes=("V",),
            labels_for_new=("a", "b", "c"),
        )
        stream.run(steps)
        report = check_consistency(view)
        assert report.ok, report.describe()


class TestExtendedMaintenanceEquivalence:
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(10, 50),
        steps=st.integers(1, 20),
        def_index=st.integers(0, len(EXTENDED_DEFS) - 1),
    )
    @settings(**COMMON)
    def test_view_equals_recompute_after_random_updates(
        self, seed, nodes, steps, def_index
    ):
        store, root = build_tree(seed, nodes)
        index = ParentIndex(store)
        view = MaterializedView(
            ViewDefinition.parse(EXTENDED_DEFS[def_index]), store
        )
        populate_view(view)
        ExtendedViewMaintainer(view, parent_index=index, subscribe=True)
        stream = UpdateStream(
            store,
            seed=seed + 1,
            protected=frozenset({root}),
            protected_prefixes=("V",),
            labels_for_new=("a", "b", "c"),
        )
        stream.run(steps)
        report = check_consistency(view)
        assert report.ok, report.describe()


def _random_dag_updates(store, root, seed, steps):
    """Random DAG-preserving updates: edges only between adjacent
    layers (never creating cycles), plus value modifies."""
    rng = random.Random(seed)
    by_layer: dict[int, list[str]] = {}
    for oid in store.oids():
        if oid == root or oid.startswith("V"):
            continue
        level = int(oid[1]) if oid.startswith("d") else None
        if level is not None:
            by_layer.setdefault(level, []).append(oid)
    levels = sorted(by_layer)
    applied = 0
    for _ in range(steps * 4):
        if applied >= steps:
            break
        kind = rng.choice(("insert", "delete", "modify"))
        if kind == "modify":
            atoms = [
                oid
                for oid in by_layer.get(levels[-1], [])
                if store.get(oid).is_atomic
            ]
            if not atoms:
                continue
            store.modify_value(rng.choice(atoms), rng.randint(0, 100))
            applied += 1
        elif kind == "insert":
            upper = rng.choice(levels[:-1]) if len(levels) > 1 else None
            if upper is None:
                continue
            parent = rng.choice(by_layer[upper])
            child = rng.choice(by_layer[upper + 1])
            if child not in store.get(parent).children():
                store.insert_edge(parent, child)
                applied += 1
        else:
            candidates = [
                (p, c)
                for p in by_layer.get(rng.choice(levels), [])
                if store.get(p).is_set
                for c in store.get(p).sorted_children()
            ]
            if not candidates:
                continue
            parent, child = rng.choice(candidates)
            store.delete_edge(parent, child)
            applied += 1
    return applied


class TestDagMaintenanceEquivalence:
    @given(
        seed=st.integers(0, 10_000),
        width=st.integers(2, 5),
        steps=st.integers(1, 15),
        with_condition=st.booleans(),
    )
    @settings(**COMMON)
    def test_counts_track_recompute(self, seed, width, steps, with_condition):
        store, root = layered_dag(
            depth=3, width=width, edges_per_node=2, seed=seed
        )
        index = ParentIndex(store)
        definition = (
            "define mview V as: SELECT dagroot.l1.l2 X WHERE X.l3 > 40"
            if with_condition
            else "define mview V as: SELECT dagroot.l1.l2 X"
        )
        view = MaterializedView(ViewDefinition.parse(definition), store)
        DagCountingMaintainer(view, index, subscribe=True)
        _random_dag_updates(store, root, seed + 1, steps)
        report = check_consistency(view)
        assert report.ok, report.describe()

    @given(
        seed=st.integers(0, 10_000),
        width=st.integers(2, 4),
        steps=st.integers(1, 12),
    )
    @settings(**COMMON)
    def test_repeated_labels_track_recompute(self, seed, width, steps):
        # Every level shares label 'n': an edge can factor into the
        # delta at several positions of sel_path = n.n.
        store, root = layered_dag(
            depth=3, width=width, edges_per_node=2, seed=seed,
            uniform_label="n",
        )
        index = ParentIndex(store)
        view = MaterializedView(
            ViewDefinition.parse(
                "define mview V as: SELECT dagroot.n.n X WHERE X.n > 40"
            ),
            store,
        )
        DagCountingMaintainer(view, index, subscribe=True)
        _random_dag_updates(store, root, seed + 1, steps)
        report = check_consistency(view)
        assert report.ok, report.describe()


class TestInverseUpdatesRestoreView:
    @given(seed=st.integers(0, 5_000), steps=st.integers(1, 12))
    @settings(**COMMON)
    def test_undo_round_trip(self, seed, steps):
        store, root = build_tree(seed, 30)
        index = ParentIndex(store)
        view = MaterializedView(
            ViewDefinition.parse(SIMPLE_DEFS[0]), store
        )
        populate_view(view)
        SimpleViewMaintainer(view, parent_index=index, subscribe=True)
        members_before = view.members()
        stream = UpdateStream(
            store,
            seed=seed + 1,
            protected=frozenset({root}),
            protected_prefixes=("V",),
            labels_for_new=("a", "b", "c"),
            mix=UpdateMix(insert=1, delete=1, modify=2),
        )
        applied = stream.run(steps)
        for update in reversed(applied):
            store.apply(update.inverse())
        assert view.members() == members_before
        assert check_consistency(view).ok
