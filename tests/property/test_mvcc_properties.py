"""Property-based tests for the epoch-pinned MVCC serving tier (E20).

Two claims, for any seeded interleaving of reads and write batches:

1. *Epoch identity* — every answer the server hands out is
   byte-identical to what a serial oracle (fresh node-at-a-time
   evaluation) computed at the instant the answer's epoch was
   published.  Bounded-staleness reads may be stale, but they are
   stale *consistently*: the answer is some real past state, never a
   mixture of epochs.

2. *Lag bound* — the observed staleness of every answer respects the
   request's freshness policy (``fresh`` ⇒ lag 0, ``max_lag_epochs=k``
   ⇒ lag ≤ k), and the server's own audit trail records zero
   violations.  ``fresh`` answers additionally match the live store
   even while unpublished writes are in flight.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.property.support import common_settings

from repro.gsdb.database import DatabaseRegistry
from repro.gsdb.indexes import ParentIndex
from repro.query.evaluator import QueryEvaluator
from repro.serving import EpochServer
from repro.workloads import TreeSpec, layered_tree
from repro.workloads.serving import build_query_pool
from repro.workloads.updates import UpdateMix, UpdateStream

COMMON = common_settings(15)

policy_strategy = st.sampled_from(["fresh", "any", 0, 1, 2, 3])

#: One interleaving step: a read (query index + policy) or a write
#: batch (number of updates).
step_strategy = st.one_of(
    st.tuples(
        st.just("read"), st.integers(0, 63), policy_strategy
    ),
    st.tuples(st.just("write"), st.integers(1, 6), st.none()),
)

mix_strategy = st.builds(
    UpdateMix,
    insert=st.floats(0.1, 3.0),
    delete=st.floats(0.1, 3.0),
    modify=st.floats(0.1, 3.0),
)


def build_mvcc_env(seed: int, retention: int, mix: UpdateMix | None = None):
    spec = TreeSpec(depth=3, fanout=3, seed=seed)
    store, root = layered_tree(spec)
    registry = DatabaseRegistry(store)
    server = EpochServer(
        registry,
        parent_index=ParentIndex(store),
        retention_capacity=retention,
        cache_size=64,
    )
    pool = build_query_pool(root, spec, store=store)
    oracle = QueryEvaluator(registry)
    stream = UpdateStream(
        store,
        seed=seed + 1,
        mix=mix or UpdateMix(),
        protected=frozenset({root}),
    )
    return store, server, pool, oracle, stream


class TestEpochIdentity:
    @given(
        seed=st.integers(0, 10_000),
        retention=st.sampled_from([1, 2, 4]),
        steps=st.lists(step_strategy, min_size=1, max_size=40),
    )
    @settings(**COMMON)
    def test_every_answer_is_some_real_epoch(self, seed, retention, steps):
        store, server, pool, oracle, stream = build_mvcc_env(
            seed, retention
        )
        # Keep the store clean at read time: every write batch is
        # followed by an explicit publish, and the oracle's answers for
        # the whole pool are recorded at that seq.  Reads then cannot
        # mint epochs the recorder has not seen.
        oracle_by_seq: dict[int, dict[str, frozenset[str]]] = {}

        def record():
            entry = server.publish()
            if entry.seq not in oracle_by_seq:
                oracle_by_seq[entry.seq] = {
                    text: frozenset(oracle.evaluate_oids(text))
                    for text in pool
                }
            return entry.seq

        latest = record()
        for kind, a, b in steps:
            if kind == "write":
                with server.write_mutex:
                    stream.run(a)
                latest = record()
                continue
            text = pool[a % len(pool)]
            answer = server.read(text, b)
            if answer.source == "interpreted":
                # Scoped/view queries read the live store directly.
                assert set(answer.oids) == oracle.evaluate_oids(text)
                continue
            assert answer.seq in oracle_by_seq, (text, answer)
            assert frozenset(answer.oids) == oracle_by_seq[answer.seq][
                text
            ], (text, answer.seq, answer.source)
            assert answer.lag == latest - answer.seq
        report = server.freshness_report()
        assert report["violations"] == 0


class TestLagBound:
    @given(
        seed=st.integers(0, 10_000),
        retention=st.sampled_from([1, 2, 4]),
        mix=mix_strategy,
        steps=st.lists(step_strategy, min_size=1, max_size=40),
    )
    @settings(**COMMON)
    def test_lag_never_exceeds_policy(self, seed, retention, mix, steps):
        store, server, pool, oracle, stream = build_mvcc_env(
            seed, retention, mix
        )
        # Unlike the identity test, write batches here do NOT publish:
        # the server must mint epochs itself when a policy demands one,
        # and the dirty tail counts toward every retained epoch's lag.
        for kind, a, b in steps:
            if kind == "write":
                with server.write_mutex:
                    stream.run(a)
                continue
            text = pool[a % len(pool)]
            answer = server.read(text, b)
            if answer.allowed is not None:
                assert answer.lag <= answer.allowed, (text, b, answer)
            if b == "fresh" or b == 0:
                assert set(answer.oids) == oracle.evaluate_oids(text), (
                    text,
                    answer.source,
                )
        report = server.freshness_report()
        assert report["violations"] == 0
        assert report["reads"] == sum(
            1 for kind, _, _ in steps if kind == "read"
        )
