"""Fuzzing the interactive shell: arbitrary input must never crash it."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.property.support import common_settings

from repro.cli import Shell

COMMON = common_settings(50)

# A mix of valid-ish command shapes and raw garbage.
command_word = st.sampled_from(
    [
        "load", "dump", "db", "insert", "delete", "modify", "new",
        "newset", "views", "members", "check", "counters", "help",
        "select", "define", "frobnicate",
    ]
)
argument = st.text(
    alphabet=st.characters(
        codec="ascii", exclude_categories=("Cc",)
    ),
    max_size=12,
)
command_line = st.builds(
    lambda word, args: " ".join([word, *args]),
    command_word,
    st.lists(argument, max_size=3),
)
garbage_line = st.text(max_size=40)
any_line = st.one_of(command_line, garbage_line)


class TestShellNeverCrashes:
    @given(lines=st.lists(any_line, max_size=8))
    @settings(**COMMON)
    def test_arbitrary_sessions_survive(self, lines):
        out = io.StringIO()
        shell = Shell(stdout=out)
        # execute() may end the session (quit) but must never raise.
        for line in lines:
            if not shell.execute(line):
                break

    @given(line=garbage_line)
    @settings(**COMMON)
    def test_single_garbage_line(self, line):
        out = io.StringIO()
        Shell(stdout=out).execute(line)
