"""Stateful model: ``ShardedStore(n)`` ≡ unsharded ``ObjectStore``.

One hypothesis state machine drives random interleavings of object
creation, edge inserts/deletes, value modifies, and path queries
against a sharded store and an unsharded oracle *simultaneously* —
including invalid operations, which must fail identically on both
sides.  After every step the two stores must agree byte-for-byte
(paper-syntax dump), their update logs must match entry-for-entry, a
maintained view over each must have equal extents, and path queries
must return equal answers.

The machine keeps the base a tree (single parent, no cycles) so the
simple maintainer's preconditions hold; deletes may detach subtrees
and later inserts may re-attach them, which is exactly the
cross-shard re-parenting the border index must survive.

Runs are pinned: ``derandomize=True`` makes hypothesis replay the same
example sequence every time, so CI failures reproduce locally without
a seed database.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from tests.property.support import common_settings

from repro.errors import ReproError
from repro.gsdb import ObjectStore, ParentIndex, ShardedParentIndex, ShardedStore
from repro.gsdb.serialization import dump_store
from repro.gsdb.updates import Delete, Insert, Modify
from repro.paths.automaton import compile_expression
from repro.paths.expression import PathExpression
from repro.views import (
    MaterializedView,
    SimpleViewMaintainer,
    ViewDefinition,
    populate_view,
)

LABELS = ("a", "b", "c")
DEFINITION = "define mview V as: SELECT root.a X WHERE X.b > 50"
QUERY_PATHS = ("a", "b", "a.b", "a.*", "*.c", "a+")

COMMON = common_settings(20)


class ShardedEquivalenceMachine(RuleBasedStateMachine):
    """Drive a sharded store and an unsharded oracle in lock-step."""

    shards = 2  # overridden per concrete machine below

    def __init__(self) -> None:
        super().__init__()
        self.oracle = ObjectStore()
        self.sharded = ShardedStore(self.shards)
        for store in (self.oracle, self.sharded):
            store.add_set("root", "root")
        self.views = []
        for store, index_cls in (
            (self.oracle, ParentIndex),
            (self.sharded, ShardedParentIndex),
        ):
            definition = ViewDefinition.parse(DEFINITION)
            view = MaterializedView(definition, store, ObjectStore())
            populate_view(view)
            SimpleViewMaintainer(
                view, parent_index=index_cls(store), subscribe=True
            )
            self.views.append(view)
        self.sets = ["root"]
        self.atoms: list[str] = []
        self.fresh = 0

    # -- helpers -------------------------------------------------------------

    def _both(self, action):
        """Run *action* on both stores; outcomes must be identical."""
        outcomes = []
        for store in (self.oracle, self.sharded):
            try:
                action(store)
                outcomes.append(None)
            except ReproError as error:
                outcomes.append((type(error), str(error)))
        assert outcomes[0] == outcomes[1], outcomes

    def _reachable(self, start: str) -> set[str]:
        seen = {start}
        stack = [start]
        while stack:
            obj = self.oracle.peek(stack.pop())
            if obj is None or not obj.is_set:
                continue
            for child in obj.children():
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return seen

    def _has_parent(self, oid: str) -> bool:
        return any(
            obj.is_set and oid in obj.children()
            for obj in (self.oracle.peek(o) for o in self.oracle.oids())
            if obj is not None
        )

    # -- rules ---------------------------------------------------------------

    @rule(label=st.sampled_from(LABELS), value=st.integers(0, 100))
    def new_atom(self, label, value):
        self.fresh += 1
        oid = f"x{self.fresh}"
        self._both(lambda s: s.add_atomic(oid, label, value))
        self.atoms.append(oid)

    @rule(label=st.sampled_from(LABELS))
    def new_set(self, label):
        self.fresh += 1
        oid = f"g{self.fresh}"
        self._both(lambda s: s.add_set(oid, label))
        self.sets.append(oid)

    @rule(data=st.data())
    def insert_edge(self, data):
        parent = data.draw(st.sampled_from(self.sets), label="parent")
        child = data.draw(
            st.sampled_from(self.sets + self.atoms), label="child"
        )
        if (
            child == "root"
            or self._has_parent(child)
            or parent in self._reachable(child)
        ):
            return  # keep the base a single-parent tree, acyclically
        self._both(lambda s: s.apply(Insert(parent, child)))

    @rule(data=st.data())
    def delete_edge(self, data):
        edges = [
            (parent, child)
            for parent in self.sets
            if (obj := self.oracle.peek(parent)) is not None
            for child in obj.sorted_children()
        ]
        if not edges:
            return
        parent, child = data.draw(st.sampled_from(edges), label="edge")
        self._both(lambda s: s.apply(Delete(parent, child)))

    @rule(data=st.data(), value=st.integers(0, 100))
    def modify(self, data, value):
        if not self.atoms:
            return
        oid = data.draw(st.sampled_from(self.atoms), label="oid")
        old = self.oracle.get(oid).atomic_value()
        self._both(lambda s: s.apply(Modify(oid, old, value)))

    @rule(parent=st.sampled_from(("root", "nowhere")))
    def invalid_insert(self, parent):
        """Invalid updates must raise identically on both sides."""
        self._both(lambda s: s.apply(Insert(parent, "missing-child")))

    @rule(data=st.data())
    def invalid_modify(self, data):
        if not self.atoms:
            return
        oid = data.draw(st.sampled_from(self.atoms), label="oid")
        actual = self.oracle.get(oid).atomic_value()
        stale = -1 if actual != -1 else -2
        self._both(lambda s: s.apply(Modify(oid, stale, 0)))

    @rule(path=st.sampled_from(QUERY_PATHS))
    def query(self, path):
        nfa = compile_expression(PathExpression.parse(path))
        assert nfa.evaluate(self.oracle, "root") == nfa.evaluate(
            self.sharded, "root"
        )

    # -- the oracle ----------------------------------------------------------

    @invariant()
    def stores_byte_equal(self):
        assert dump_store(self.oracle) == dump_store(self.sharded)

    @invariant()
    def logs_equal(self):
        assert self.oracle.log.entries == self.sharded.log.entries

    @invariant()
    def view_extents_equal(self):
        assert self.views[0].members() == self.views[1].members()

    @invariant()
    def placement_consistent(self):
        """Every OID lives on exactly the shard the hash names."""
        store = self.sharded
        for shard, sub in enumerate(store.shard_stores()):
            for oid in sub.oids():
                assert store.shard_of(oid) == shard


class ShardedEquivalence1(ShardedEquivalenceMachine):
    shards = 1


class ShardedEquivalence2(ShardedEquivalenceMachine):
    shards = 2


class ShardedEquivalence4(ShardedEquivalenceMachine):
    shards = 4


_SETTINGS = settings(
    **COMMON, stateful_step_count=30, derandomize=True
)

TestSharded1 = ShardedEquivalence1.TestCase
TestSharded1.settings = _SETTINGS
TestSharded2 = ShardedEquivalence2.TestCase
TestSharded2.settings = _SETTINGS
TestSharded4 = ShardedEquivalence4.TestCase
TestSharded4.settings = _SETTINGS


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_border_survives_detach_and_reattach(shards):
    """A directed replay of the model's hardest path: detach a subtree
    whose internal edges cross shards, then re-attach it elsewhere."""
    oracle = ObjectStore()
    sharded = ShardedStore(shards)
    for store in (oracle, sharded):
        store.add_set("root", "root")
        store.add_set("grp", "a")
        store.add_atomic("leaf", "b", 70)
        store.apply(Insert("root", "grp"))
        store.apply(Insert("grp", "leaf"))
        store.apply(Delete("root", "grp"))
        store.add_set("other", "c")
        store.apply(Insert("root", "other"))
        store.apply(Insert("other", "grp"))
    assert dump_store(oracle) == dump_store(sharded)
    assert oracle.log.entries == sharded.log.entries
