"""Shared hypothesis settings for the property suites.

``REPRO_PROPERTY_EXAMPLES`` scales the per-test example budget, e.g.::

    REPRO_PROPERTY_EXAMPLES=200 pytest tests/property/

for a deep soak run (the default keeps the suite fast).
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck

_SCALE = int(os.environ.get("REPRO_PROPERTY_EXAMPLES", "0"))


def common_settings(default_examples: int) -> dict:
    """Per-test settings dict honouring the env override."""
    return dict(
        deadline=None,
        max_examples=_SCALE or default_examples,
        suppress_health_check=[HealthCheck.too_slow],
    )
