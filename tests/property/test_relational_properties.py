"""Property-based tests for the relational substrate.

* The flattened tables always mirror the store under random updates;
* counting IVM agrees with full re-evaluation;
* the relational engine and the native GSDB engine compute the same
  view membership (cross-engine agreement — the heart of E4).
"""

from hypothesis import given, settings

from tests.property.support import common_settings
from hypothesis import strategies as st

from repro.gsdb import ParentIndex
from repro.relational import RelationalMirror
from repro.views import (
    MaterializedView,
    SimpleViewMaintainer,
    ViewDefinition,
    populate_view,
)
from repro.workloads import UpdateStream, random_labelled_tree

COMMON = common_settings(20)

DEFS = (
    "define mview V as: SELECT root0.a X WHERE X.b > 50",
    "define mview V as: SELECT root0.a.b X WHERE X.c <= 30",
    "define mview V as: SELECT root0.b.a X",
)


class TestMirrorProperties:
    @given(
        seed=st.integers(0, 10_000),
        nodes=st.integers(8, 40),
        steps=st.integers(1, 20),
        def_index=st.integers(0, len(DEFS) - 1),
    )
    @settings(**COMMON)
    def test_cross_engine_agreement(self, seed, nodes, steps, def_index):
        store, root = random_labelled_tree(
            nodes=nodes, labels=("a", "b", "c"), seed=seed
        )
        mirror = RelationalMirror(store)
        mirror.ignore_view("V")
        definition = ViewDefinition.parse(DEFS[def_index])
        mirror.register_view(definition)

        index = ParentIndex(store)
        native = MaterializedView(definition, store)
        populate_view(native)
        SimpleViewMaintainer(native, parent_index=index, subscribe=True)

        stream = UpdateStream(
            store,
            seed=seed + 1,
            protected=frozenset({root}),
            protected_prefixes=("V",),
            labels_for_new=("a", "b", "c"),
        )
        stream.run(steps)

        assert native.members() == mirror.members("V")
        assert mirror.verify()

    @given(seed=st.integers(0, 10_000), steps=st.integers(1, 25))
    @settings(**COMMON)
    def test_tables_mirror_store(self, seed, steps):
        store, root = random_labelled_tree(
            nodes=25, labels=("a", "b"), seed=seed
        )
        mirror = RelationalMirror(store)
        stream = UpdateStream(
            store,
            seed=seed + 1,
            protected=frozenset({root}),
            labels_for_new=("a", "b"),
        )
        stream.run(steps)
        assert mirror.flattener.verify_against_store()

    @given(seed=st.integers(0, 10_000), steps=st.integers(1, 20))
    @settings(**COMMON)
    def test_counting_view_matches_reevaluation(self, seed, steps):
        store, root = random_labelled_tree(
            nodes=20, labels=("a", "b", "c"), seed=seed
        )
        mirror = RelationalMirror(store)
        view = mirror.register_view(ViewDefinition.parse(DEFS[0]))
        stream = UpdateStream(
            store,
            seed=seed + 1,
            protected=frozenset({root}),
            labels_for_new=("a", "b", "c"),
        )
        stream.run(steps)
        assert view.check_against_full_evaluation()
