"""Tests for the query tokenizer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)]


class TestBasics:
    def test_select_query(self):
        tokens = tokenize("SELECT ROOT.professor X WHERE X.age > 40")
        assert [t.kind for t in tokens] == [
            "KEYWORD", "IDENT", "DOT", "IDENT", "IDENT",
            "KEYWORD", "IDENT", "DOT", "IDENT", "OP", "NUMBER",
        ]

    def test_keywords_case_insensitive(self):
        assert kinds("select where within ans int") == ["KEYWORD"] * 5
        assert values("select") == ["SELECT"]

    def test_identifiers_preserve_case(self):
        assert values("RootX") == ["RootX"]

    def test_wildcards(self):
        assert kinds("ROOT.*.? X") == ["IDENT", "DOT", "STAR", "DOT", "QMARK", "IDENT"]

    def test_pipe_alternation(self):
        assert kinds("a|b") == ["IDENT", "PIPE", "IDENT"]


class TestLiterals:
    def test_string_literal(self):
        token = tokenize("'John'")[0]
        assert token.kind == "STRING"
        assert token.value == "John"

    def test_string_with_escape(self):
        assert tokenize(r"'it\'s'")[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("'oops")

    @pytest.mark.parametrize(
        "text, value",
        [("42", 42), ("-7", -7), ("3.5", 3.5), ("1e3", 1000.0), ("2.5e-1", 0.25)],
    )
    def test_numbers(self, text, value):
        token = tokenize(text)[0]
        assert token.kind == "NUMBER"
        assert token.value == value

    def test_booleans(self):
        tokens = tokenize("true FALSE")
        assert [t.kind for t in tokens] == ["BOOL", "BOOL"]
        assert [t.value for t in tokens] == [True, False]


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_comparisons(self, op):
        token = tokenize(op)[0]
        assert (token.kind, token.value) == ("OP", op)

    def test_maximal_munch(self):
        assert values("<=") == ["<="]
        assert values("< =") == ["<", "="]

    def test_contains_matches_keywords(self):
        assert values("contains matches") == ["CONTAINS", "MATCHES"]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError) as exc:
            tokenize("SELECT @")
        assert exc.value.position == 7

    def test_positions_recorded(self):
        tokens = tokenize("SELECT X")
        assert tokens[0].position == 0
        assert tokens[1].position == 7
