"""Tests for querying virtual views: rewrite vs materialize-on-demand."""

import pytest

from repro.query import (
    QueryEvaluator,
    Strategy,
    answer_over_virtual_view,
    parse_query,
    rewrite_over_view,
)


@pytest.fixture
def evaluator(person_registry):
    return QueryEvaluator(person_registry)


VIEW_QUERY = "SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"
FOLLOW_ON = "SELECT VJ.?.age X"


class TestStrategiesAgree:
    @pytest.mark.parametrize(
        "follow_on",
        [
            "SELECT VJ.?.age X",
            "SELECT VJ.? X",
            "SELECT VJ.?.name X WHERE X.name = 'John'",
            "SELECT VJ.* X WHERE X.major = 'education'",
        ],
    )
    def test_rewrite_equals_materialize(self, evaluator, follow_on):
        view_query = parse_query(VIEW_QUERY)
        query = parse_query(follow_on)
        rewritten = answer_over_virtual_view(
            evaluator, query, view_query, strategy=Strategy.REWRITE
        )
        materialized = answer_over_virtual_view(
            evaluator, query, view_query,
            strategy=Strategy.MATERIALIZE_ON_DEMAND,
        )
        assert rewritten.children() == materialized.children()

    def test_expected_ages_of_johns(self, evaluator):
        answer = answer_over_virtual_view(
            evaluator, parse_query(FOLLOW_ON), parse_query(VIEW_QUERY)
        )
        assert answer.children() == {"A1", "A3"}


class TestRewriteMechanics:
    def test_pipeline_structure(self):
        pipeline = rewrite_over_view(
            parse_query(FOLLOW_ON), parse_query(VIEW_QUERY)
        )
        assert pipeline.view_query.within == "PERSON"
        assert str(pipeline.follow_on.select_path) == "?.age"
        assert "|>" in str(pipeline)

    def test_ans_int_applies_to_follow_on(self, evaluator, person_registry):
        person_registry.create_database("ONLY_A1", ["A1"])
        answer = answer_over_virtual_view(
            evaluator,
            parse_query("SELECT VJ.?.age X ANS INT ONLY_A1"),
            parse_query(VIEW_QUERY),
        )
        assert answer.children() == {"A1"}

    def test_on_demand_temp_registration_cleaned_up(
        self, evaluator, person_registry
    ):
        names_before = set(person_registry.names())
        answer_over_virtual_view(
            evaluator,
            parse_query(FOLLOW_ON),
            parse_query(VIEW_QUERY),
            strategy=Strategy.MATERIALIZE_ON_DEMAND,
        )
        assert set(person_registry.names()) == names_before
