"""Tests for condition evaluation (cond() semantics, Section 2)."""

import pytest

from repro.paths import PathExpression
from repro.query import (
    And,
    Comparison,
    Exists,
    Not,
    Or,
    evaluate_condition,
    is_simple_condition,
)
from repro.query.conditions import atomic_values_on_path, objects_on_path

p = PathExpression.parse


class TestComparisonAtom:
    def test_existential_semantics(self, person_store):
        # P1 has one age (45); cond true if ANY value satisfies.
        assert evaluate_condition(
            person_store, "P1", Comparison(p("age"), "<=", 45)
        )
        assert not evaluate_condition(
            person_store, "P1", Comparison(p("age"), ">", 45)
        )

    def test_multiple_values_any(self, person_store):
        person_store.add_atomic("A1b", "age", 99)
        person_store.insert_edge("P1", "A1b")
        assert evaluate_condition(
            person_store, "P1", Comparison(p("age"), ">", 90)
        )

    def test_missing_path_is_false(self, person_store):
        assert not evaluate_condition(
            person_store, "P2", Comparison(p("age"), ">", 0)
        )

    def test_string_equality(self, person_store):
        assert evaluate_condition(
            person_store, "P1", Comparison(p("name"), "=", "John")
        )

    def test_contains(self, person_store):
        assert evaluate_condition(
            person_store, "P2", Comparison(p("address"), "contains", "Palo")
        )

    def test_matches_regex(self, person_store):
        assert evaluate_condition(
            person_store, "P2", Comparison(p("name"), "matches", "^Sal")
        )

    def test_type_mismatch_is_false_not_error(self, person_store):
        assert not evaluate_condition(
            person_store, "P1", Comparison(p("name"), ">", 40)
        )

    def test_wildcard_condition_path(self, person_store):
        # any descendant name = 'John' under P1 (includes student P3's).
        assert evaluate_condition(
            person_store, "P1", Comparison(p("*.name"), "=", "John")
        )

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(p("age"), "~~", 4)


class TestBooleanConnectives:
    def test_exists(self, person_store):
        assert evaluate_condition(person_store, "P1", Exists(p("salary")))
        assert not evaluate_condition(person_store, "P2", Exists(p("salary")))

    def test_and(self, person_store):
        cond = And((
            Comparison(p("age"), "<=", 45),
            Comparison(p("name"), "=", "John"),
        ))
        assert evaluate_condition(person_store, "P1", cond)
        assert not evaluate_condition(person_store, "P4", cond)

    def test_or(self, person_store):
        cond = Or((
            Comparison(p("age"), ">", 100),
            Comparison(p("name"), "=", "Sally"),
        ))
        assert evaluate_condition(person_store, "P2", cond)

    def test_not(self, person_store):
        cond = Not(Exists(p("salary")))
        assert evaluate_condition(person_store, "P2", cond)
        assert not evaluate_condition(person_store, "P1", cond)


class TestPathHelpers:
    def test_objects_on_path(self, person_store):
        assert objects_on_path(person_store, "ROOT", p("professor")) == {
            "P1", "P2",
        }

    def test_atomic_values_sorted_by_oid(self, person_store):
        values = atomic_values_on_path(person_store, "P1", p("?"))
        assert values == [45, "John", 100000]  # A1, N1, S1 order

    def test_set_objects_excluded_from_values(self, person_store):
        values = atomic_values_on_path(person_store, "ROOT", p("professor"))
        assert values == []


class TestSimpleClassification:
    def test_simple(self):
        assert is_simple_condition(None)
        assert is_simple_condition(Comparison(p("age"), ">", 4))

    def test_not_simple(self):
        assert not is_simple_condition(Comparison(p("*.age"), ">", 4))
        assert not is_simple_condition(
            And((Comparison(p("a"), ">", 1), Comparison(p("b"), ">", 2)))
        )
        assert not is_simple_condition(Exists(p("a")))
