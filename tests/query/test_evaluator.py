"""Tests for scoped query evaluation — the paper's worked examples."""

import pytest

from repro.errors import QueryEvaluationError
from repro.gsdb import DatabaseRegistry
from repro.query import QueryEvaluator
from repro.workloads import PERSON_OIDS, register_person_database


@pytest.fixture
def evaluator(person_registry) -> QueryEvaluator:
    return QueryEvaluator(person_registry)


class TestBasicEvaluation:
    def test_paper_section_2_query(self, evaluator):
        # SELECT ROOT.professor X WHERE X.age > 40 -> {P1}
        assert evaluator.evaluate_oids(
            "SELECT ROOT.professor X WHERE X.age > 40"
        ) == {"P1"}

    def test_example_3_view_query(self, evaluator):
        # SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON -> {P1, P3}
        assert evaluator.evaluate_oids(
            "SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"
        ) == {"P1", "P3"}

    def test_no_condition(self, evaluator):
        assert evaluator.evaluate_oids("SELECT ROOT.professor X") == {
            "P1", "P2",
        }

    def test_answer_object_format(self, evaluator, person_store):
        answer = evaluator.evaluate("SELECT ROOT.professor X")
        assert answer.label == "answer"
        assert answer.is_set
        assert answer.children() == {"P1", "P2"}
        assert answer.oid in person_store  # registered for follow-ons

    def test_database_name_as_entry(self, evaluator):
        # DB.? = all objects in DB (paper Section 2).
        result = evaluator.evaluate_oids("SELECT PERSON.? X")
        assert result == set(PERSON_OIDS)

    def test_unknown_entry(self, evaluator):
        with pytest.raises(QueryEvaluationError):
            evaluator.evaluate_oids("SELECT NOWHERE.a X")


class TestWithinScope:
    """Paper Section 2: 'any OIDs that are not in DB1 are completely
    ignored by the query'."""

    def test_paper_example_a1_excluded(self, evaluator, person_registry):
        # All nodes in D1 except A1 -> empty result.
        person_registry.create_database(
            "D1", [o for o in PERSON_OIDS if o != "A1"]
        )
        assert (
            evaluator.evaluate_oids(
                "SELECT ROOT.professor X WHERE X.age > 40 WITHIN D1"
            )
            == set()
        )

    def test_within_hides_intermediate_objects(
        self, evaluator, person_registry
    ):
        # Excluding P1 cuts the path to its subobjects entirely.
        person_registry.create_database(
            "D2", [o for o in PERSON_OIDS if o != "P1"]
        )
        assert (
            evaluator.evaluate_oids(
                "SELECT ROOT.professor.student X WITHIN D2"
            )
            == set()
        )

    def test_within_full_database_unrestricted(self, evaluator):
        full = evaluator.evaluate_oids("SELECT ROOT.professor X")
        scoped = evaluator.evaluate_oids(
            "SELECT ROOT.professor X WITHIN PERSON"
        )
        assert full == scoped


class TestAnsIntScope:
    """Paper Section 2: evaluation may follow remote pointers; only the
    answer is intersected."""

    def test_paper_example_answer_restricted(
        self, evaluator, person_registry
    ):
        person_registry.create_database(
            "D1", [o for o in PERSON_OIDS if o != "A1"]
        )
        # Condition can read A1 (remote), but answer P1 must be in D1.
        assert evaluator.evaluate_oids(
            "SELECT ROOT.professor X WHERE X.age > 40 ANS INT D1"
        ) == {"P1"}

    def test_paper_example_member_excluded(self, evaluator, person_registry):
        person_registry.create_database(
            "D3", [o for o in PERSON_OIDS if o != "P1"]
        )
        assert (
            evaluator.evaluate_oids(
                "SELECT ROOT.professor X WHERE X.age > 40 ANS INT D3"
            )
            == set()
        )

    def test_example_3_3_ans_int_view_object(
        self, evaluator, person_registry, person_store
    ):
        # Register a "view" database VJ = {P1, P3}; paper query 3.3.
        person_store.add_set("VJ", "view", ["P1", "P3"])
        person_registry.register("VJ", "VJ")
        assert evaluator.evaluate_oids(
            "SELECT ROOT.professor X ANS INT VJ"
        ) == {"P1"}


class TestQueriesAcrossViews:
    def test_view_as_starting_point(self, evaluator, person_registry, person_store):
        # Paper: SELECT VJ.?.age gives ages of persons named John.
        person_store.add_set("VJ", "view", ["P1", "P3"])
        person_registry.register("VJ", "VJ")
        assert evaluator.evaluate_oids("SELECT VJ.?.age") == {"A1", "A3"}
