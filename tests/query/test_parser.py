"""Tests for the query / view-definition parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.paths import PathExpression
from repro.query import (
    And,
    Comparison,
    Exists,
    Not,
    Or,
    parse_query,
    parse_statement,
)
from repro.query.parser import ViewDefinitionStatement


class TestSelectClause:
    def test_paper_query_2_1(self):
        q = parse_query("SELECT ROOT.professor X WHERE X.age > 40")
        assert q.entry == "ROOT"
        assert q.select_path == PathExpression.parse("professor")
        assert q.variable == "X"
        assert q.condition == Comparison(PathExpression.parse("age"), ">", 40)
        assert q.within is None and q.ans_int is None

    def test_variable_optional(self):
        # Paper expression: SELECT VJ.?.age
        q = parse_query("SELECT VJ.?.age")
        assert q.entry == "VJ"
        assert str(q.select_path) == "?.age"
        assert q.variable == "X"
        assert q.condition is None

    def test_custom_variable(self):
        q = parse_query("SELECT ROOT.professor Y WHERE Y.age > 40")
        assert q.variable == "Y"

    def test_wrong_variable_in_condition(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT ROOT.professor X WHERE Y.age > 40")

    def test_wildcard_select_path(self):
        q = parse_query("SELECT ROOT.* X WHERE X.name = 'John'")
        assert str(q.select_path) == "*"

    def test_entry_only(self):
        q = parse_query("SELECT ROOT")
        assert len(q.select_path) == 0


class TestScopeClauses:
    def test_within(self):
        q = parse_query("SELECT ROOT.professor X WHERE X.age > 40 WITHIN D1")
        assert q.within == "D1"

    def test_ans_int(self):
        q = parse_query("SELECT ROOT.professor X ANS INT VJ")
        assert q.ans_int == "VJ"

    def test_both_scopes(self):
        q = parse_query("SELECT DB.? X WITHIN D1 ANS INT D2")
        assert (q.within, q.ans_int) == ("D1", "D2")

    def test_with_scope_helper(self):
        q = parse_query("SELECT ROOT.professor X")
        scoped = q.with_scope(ans_int="AUTH")
        assert scoped.ans_int == "AUTH"
        assert scoped.entry == q.entry


class TestConditions:
    def test_string_literal(self):
        q = parse_query("SELECT ROOT.* X WHERE X.name = 'John'")
        assert q.condition.literal == "John"

    def test_conjunction(self):
        q = parse_query(
            "SELECT ROOT.professor X WHERE X.age > 30 AND X.age < 50"
        )
        assert isinstance(q.condition, And)
        assert len(q.condition.operands) == 2

    def test_disjunction_and_precedence(self):
        q = parse_query(
            "SELECT R.t X WHERE X.a = 1 OR X.b = 2 AND X.c = 3"
        )
        assert isinstance(q.condition, Or)
        assert isinstance(q.condition.operands[1], And)

    def test_parentheses(self):
        q = parse_query("SELECT R.t X WHERE (X.a = 1 OR X.b = 2) AND X.c = 3")
        assert isinstance(q.condition, And)
        assert isinstance(q.condition.operands[0], Or)

    def test_not(self):
        q = parse_query("SELECT R.t X WHERE NOT X.a = 1")
        assert isinstance(q.condition, Not)

    def test_exists(self):
        q = parse_query("SELECT R.t X WHERE EXISTS X.salary")
        assert q.condition == Exists(PathExpression.parse("salary"))

    def test_contains_operator(self):
        q = parse_query("SELECT S.page X WHERE X.word contains 'flower'")
        assert q.condition.op == "contains"

    def test_condition_path_with_wildcard(self):
        q = parse_query("SELECT R.t X WHERE X.*.age > 5")
        assert str(q.condition.path) == "*.age"


class TestViewDefinitions:
    def test_paper_expression_3_2(self):
        stmt = parse_statement(
            "define view VJ as: SELECT ROOT.* X "
            "WHERE X.name = 'John' WITHIN PERSON"
        )
        assert isinstance(stmt, ViewDefinitionStatement)
        assert stmt.name == "VJ"
        assert not stmt.materialized
        assert stmt.query.within == "PERSON"

    def test_paper_expression_3_5_mview(self):
        stmt = parse_statement(
            "define mview MVJ as: SELECT ROOT.* X WHERE X.name = 'John'"
        )
        assert stmt.materialized

    def test_colon_optional(self):
        stmt = parse_statement("define view V as SELECT ROOT.a X")
        assert stmt.name == "V"

    def test_bare_query_from_parse_statement(self):
        q = parse_statement("SELECT ROOT.a X")
        assert not isinstance(q, ViewDefinitionStatement)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT",
            "SELECT .a X",
            "SELECT ROOT.a X WHERE",
            "SELECT ROOT.a X WHERE X.b >",
            "SELECT ROOT.a X WITHIN",
            "SELECT ROOT.a X ANS D1",  # missing INT
            "SELECT ROOT.a X trailing garbage =",
            "define view as: SELECT ROOT.a X",
            "define table T as: SELECT ROOT.a X",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_statement(bad)

    def test_round_trip_str(self):
        text = "SELECT ROOT.professor X WHERE X.age > 40 WITHIN D1"
        q = parse_query(text)
        assert parse_query(str(q)) == q
