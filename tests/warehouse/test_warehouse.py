"""End-to-end warehouse tests (paper Section 5)."""

import pytest

from repro.gsdb import ObjectStore
from repro.views import check_consistency
from repro.warehouse import (
    CachePolicy,
    PathKnowledge,
    ReportingLevel,
    Source,
    SourceCapability,
    Warehouse,
)
from repro.workloads import person_db

YP_DEF = "define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"


def make_warehouse(level, policy=CachePolicy.NONE, **view_kwargs):
    store = person_db(tree=True)
    source = Source("S1", store, "ROOT")
    wh = Warehouse()
    wh.connect(source, level=ReportingLevel(level))
    wview = wh.define_view(YP_DEF, "S1", cache_policy=policy, **view_kwargs)
    return store, wh, wview


def exercise(store):
    store.add_atomic("A2", "age", 40)
    store.insert_edge("P2", "A2")
    store.modify_value("A2", 50)
    store.modify_value("A2", 30)
    store.delete_edge("ROOT", "P1")


class TestCorrectnessAcrossConfigurations:
    @pytest.mark.parametrize("level", [1, 2, 3])
    @pytest.mark.parametrize(
        "policy",
        [CachePolicy.NONE, CachePolicy.STRUCTURE, CachePolicy.FULL],
    )
    def test_members_correct(self, level, policy):
        store, wh, wview = make_warehouse(level, policy)
        assert wview.members() == {"P1"}
        exercise(store)
        assert wview.members() == {"P2"}

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_delegate_values_fresh(self, level):
        store, wh, wview = make_warehouse(level)
        store.add_atomic("H", "hobby", "golf")
        store.insert_edge("P1", "H")
        assert "H" in wview.view.delegate("P1").children()

    def test_view_lives_in_warehouse_store(self):
        store, wh, wview = make_warehouse(2)
        assert "YP.P1" in wh.view_store
        assert "YP.P1" not in store

    def test_weak_source_still_correct(self):
        store = person_db(tree=True)
        source = Source(
            "S1", store, "ROOT", capability=SourceCapability.FETCH_ONLY
        )
        wh = Warehouse()
        wh.connect(source, level=ReportingLevel.OIDS_ONLY)
        wview = wh.define_view(YP_DEF, "S1")
        exercise(store)
        assert wview.members() == {"P2"}


class TestQueryCostShape:
    """The monotone claims of Sections 5.1 and 5.2 (experiments E5/E6)."""

    def _queries(self, level, policy):
        store, wh, wview = make_warehouse(level, policy)
        before = wh.log.queries
        exercise(store)
        return wh.log.queries - before

    def test_richer_levels_need_fewer_queries(self):
        costs = [self._queries(level, CachePolicy.NONE) for level in (1, 2, 3)]
        assert costs[0] > costs[1] > costs[2]

    def test_caching_reduces_queries(self):
        uncached = self._queries(2, CachePolicy.NONE)
        structure = self._queries(2, CachePolicy.STRUCTURE)
        full = self._queries(2, CachePolicy.FULL)
        assert uncached > structure >= full

    def test_local_maintenance_with_cache_and_contents(self):
        # Example 10: with the cached region and level >= 2, every
        # update except subtree detachment is maintained locally.
        store, wh, wview = make_warehouse(2, CachePolicy.FULL)
        before = wh.log.queries
        store.add_atomic("A2", "age", 40)
        store.insert_edge("P2", "A2")
        store.modify_value("A2", 50)
        store.modify_value("A2", 30)
        assert wh.log.queries == before
        assert wview.members() == {"P1", "P2"}

    def test_weak_source_costs_more(self):
        def run(capability):
            store = person_db(tree=True)
            source = Source("S1", store, "ROOT", capability=capability)
            wh = Warehouse()
            wh.connect(source, level=ReportingLevel.OIDS_ONLY)
            wh.define_view(YP_DEF, "S1")
            before = wh.log.queries
            exercise(store)
            return wh.log.queries - before

        assert run(SourceCapability.FETCH_ONLY) > run(
            SourceCapability.PATH_QUERIES
        )


class TestScreening:
    def test_irrelevant_label_screened_at_level_2(self):
        store, wh, wview = make_warehouse(2)
        before = wh.log.queries
        store.add_atomic("Z", "zipcode", 94305)
        store.insert_edge("P4", "Z")  # not a member, label off-path
        assert wview.stats.screened >= 1
        assert wh.log.queries == before

    def test_no_screening_at_level_1(self):
        store, wh, wview = make_warehouse(1)
        store.add_atomic("Z", "zipcode", 94305)
        store.insert_edge("P4", "Z")
        assert wview.stats.screened == 0

    def test_member_value_change_not_screened(self):
        store, wh, wview = make_warehouse(2)
        store.add_atomic("Z", "zipcode", 94305)
        store.insert_edge("P1", "Z")  # P1 is a member: needs refresh
        assert "Z" in wview.view.delegate("P1").children()

    def test_path_knowledge_screens_modify(self):
        store = person_db(tree=True)
        source = Source("S1", store, "ROOT")
        wh = Warehouse()
        wh.connect(source, level=ReportingLevel.WITH_CONTENTS)
        knowledge = PathKnowledge()
        knowledge.forbid("professor", "age")  # contrived: ages impossible
        wview = wh.define_view(
            YP_DEF, "S1", knowledge=knowledge
        )
        before = wview.stats.screened
        store.modify_value("A4", 10)  # secretary age — off path anyway
        store.modify_value("A3", 10)  # student age: label on path, but
        # 'age' after 'professor' is declared impossible -> screened.
        assert wview.stats.screened >= before + 2


class TestStatsAccounting:
    def test_per_update_queries_recorded(self):
        store, wh, wview = make_warehouse(3, CachePolicy.FULL)
        exercise(store)
        # exercise() applies 4 basic updates (object creation is not a
        # basic update and produces no notification).
        assert len(wview.stats.per_update_queries) == 4
        assert wview.stats.notifications == 4
        assert wview.stats.source_queries == sum(
            wview.stats.per_update_queries
        )

    def test_notification_traffic_logged(self):
        store, wh, wview = make_warehouse(2)
        exercise(store)
        assert wh.log.notifications == 4
        assert wh.log.notification_bytes > 0


class TestMultipleSources:
    def test_views_routed_by_source(self):
        store_a = person_db(tree=True)
        store_b = ObjectStore()
        store_b.add_atomic("a1", "age", 20)
        store_b.add_set("p1", "professor", ["a1"])
        store_b.add_set("ROOT", "person", ["p1"])
        wh = Warehouse()
        wh.connect(Source("SA", store_a, "ROOT"), level=ReportingLevel(2))
        wh.connect(Source("SB", store_b, "ROOT"), level=ReportingLevel(2))
        va = wh.define_view(
            "define mview VA as: SELECT ROOT.professor X WHERE X.age <= 45",
            "SA",
        )
        vb = wh.define_view(
            "define mview VB as: SELECT ROOT.professor X WHERE X.age <= 45",
            "SB",
        )
        store_b.modify_value("a1", 99)
        assert vb.members() == set()
        assert va.members() == {"P1"}  # untouched by SB's update
