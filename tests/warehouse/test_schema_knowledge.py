"""Tests for path ('schema') knowledge screening (paper Section 5.2)."""

from repro.paths import PathExpression
from repro.warehouse import PathKnowledge

e = PathExpression.parse


class TestNeverFollows:
    def test_forbid_and_query(self):
        k = PathKnowledge()
        k.forbid("student", "salary")
        assert not k.may_follow("student", "salary")
        assert k.may_follow("student", "age")
        assert k.may_follow("professor", "salary")

    def test_constraints_copy(self):
        k = PathKnowledge()
        k.forbid("a", "b")
        constraints = k.constraints()
        constraints["a"].add("c")
        assert k.may_follow("a", "c")  # internal state unchanged


class TestScreening:
    def test_paper_example_st_view(self):
        # View ST: SELECT ROOT.student.? — a salary modify is irrelevant
        # when students never have salary children.
        k = PathKnowledge()
        k.forbid("student", "salary")
        expression = e("student.?")
        assert not k.label_feasible_on(expression, "salary")
        assert k.label_feasible_on(expression, "age")
        assert k.label_feasible_on(expression, "student")

    def test_constant_path_feasibility(self):
        k = PathKnowledge()
        k.forbid("professor", "age")
        assert not k.label_feasible_on(e("professor.age"), "age")
        # Without the constraint it is feasible.
        assert PathKnowledge().label_feasible_on(e("professor.age"), "age")

    def test_label_not_on_path_infeasible(self):
        k = PathKnowledge()
        assert not k.label_feasible_on(e("professor.age"), "salary")

    def test_unknown_predecessor_is_sound(self):
        # '?' predecessor: parent label unknown, must stay feasible.
        k = PathKnowledge()
        k.forbid("student", "salary")
        assert k.label_feasible_on(e("?.salary"), "salary")

    def test_star_predecessor_is_sound(self):
        k = PathKnowledge()
        k.forbid("student", "salary")
        assert k.label_feasible_on(e("student.*.salary"), "salary")

    def test_first_position_always_feasible(self):
        k = PathKnowledge()
        k.forbid("x", "student")
        assert k.label_feasible_on(e("student.age"), "student")
