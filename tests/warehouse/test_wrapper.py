"""Tests for the source link and capability-aware decomposition."""

import pytest

from repro.warehouse import Source, SourceCapability, SourceLink


@pytest.fixture
def strong_link(person_tree_store) -> SourceLink:
    return SourceLink(Source("S1", person_tree_store, "ROOT"))


@pytest.fixture
def weak_link(person_tree_store) -> SourceLink:
    return SourceLink(
        Source(
            "S1", person_tree_store, "ROOT",
            capability=SourceCapability.FETCH_ONLY,
        )
    )


class TestStrongSource:
    def test_path_from_single_query(self, strong_link):
        payloads = strong_link.path_from("ROOT", ("professor", "age"))
        assert [p.oid for p in payloads] == ["A1"]
        assert strong_link.log.queries == 1

    def test_path_to_root_single_query(self, strong_link):
        payload = strong_link.path_to_root("A3")
        assert payload.labels == ("professor", "student", "age")
        assert strong_link.log.queries == 1

    def test_fetch_object(self, strong_link):
        assert strong_link.fetch_object("A1").value == 45
        assert strong_link.fetch_object("nope") is None

    def test_counters_charged(self, strong_link):
        strong_link.fetch_object("A1")
        assert strong_link.counters.source_queries == 1
        assert strong_link.counters.messages_sent == 2
        assert strong_link.counters.bytes_sent > 0


class TestWeakSourceDecomposition:
    """Section 5.1: 'evaluating one function may involve many complex
    interactions' on a limited source."""

    def test_path_from_decomposes_to_many_fetches(self, weak_link):
        payloads = weak_link.path_from("ROOT", ("professor", "age"))
        assert [p.oid for p in payloads] == ["A1"]
        # Fetch ROOT + its 3 children + P1/P2's 6 children >= 8 queries.
        assert weak_link.log.queries >= 8
        assert set(weak_link.log.by_kind) == {"fetch_object"}

    def test_path_to_root_decomposes(self, weak_link):
        payload = weak_link.path_to_root("A3")
        assert payload.oid_chain == ("ROOT", "P1", "P3", "A3")
        # Per chain step: fetch_object + fetch_parents.
        assert weak_link.log.queries == 6
        assert weak_link.log.by_kind["fetch_parents"] == 3

    def test_weak_costs_more_than_strong(self, person_tree_store):
        strong = SourceLink(Source("A", person_tree_store, "ROOT"))
        weak = SourceLink(
            Source(
                "B", person_tree_store, "ROOT",
                capability=SourceCapability.FETCH_ONLY,
            )
        )
        strong.path_from("ROOT", ("professor", "age"))
        weak.path_from("ROOT", ("professor", "age"))
        assert weak.log.queries > strong.log.queries

    def test_missing_target(self, weak_link):
        assert weak_link.path_from("nope", ("a",)) == ()
        assert weak_link.path_to_root("nope") is None

    def test_detached_path_to_root(self, weak_link, person_tree_store):
        person_tree_store.delete_edge("ROOT", "P1")
        assert weak_link.path_to_root("A1") is None
