"""Tests for update-query-aware screening (paper §6, fourth open issue)."""

import pytest

from repro.gsdb import ObjectStore, ParentIndex
from repro.paths import PathExpression
from repro.query.ast import Comparison
from repro.query.conditions import comparisons_disjoint
from repro.views import (
    PartialMaterializedView,
    SimpleViewMaintainer,
    ViewDefinition,
)
from repro.views.recompute import compute_view_members
from repro.warehouse import BulkUpdate, bulk_is_relevant, execute_bulk

p = PathExpression.parse


@pytest.fixture
def payroll() -> ObjectStore:
    """The paper's Marks-and-Johns payroll."""
    s = ObjectStore()
    for i, (name, salary) in enumerate(
        [("Mark", 50_000), ("John", 60_000), ("Mark", 70_000),
         ("Jane", 80_000)]
    ):
        s.add_atomic(f"n{i}", "name", name)
        s.add_atomic(f"s{i}", "salary", salary)
        s.add_set(f"e{i}", "person", [f"n{i}", f"s{i}"])
    s.add_set("ROOT", "company", [f"e{i}" for i in range(4)])
    return s


RAISE_MARKS = BulkUpdate(
    owner_path=p("person"),
    guard=Comparison(p("name"), "=", "Mark"),
    target_label="salary",
    transform=lambda v: v + 1000,
    description="raise the Marks by $1000",
)


class TestComparisonsDisjoint:
    def test_paper_case(self):
        assert comparisons_disjoint(
            Comparison(p("name"), "=", "Mark"),
            Comparison(p("name"), "=", "John"),
        )

    def test_same_literal_overlaps(self):
        assert not comparisons_disjoint(
            Comparison(p("name"), "=", "Mark"),
            Comparison(p("name"), "=", "Mark"),
        )

    def test_different_paths_never_disjoint(self):
        assert not comparisons_disjoint(
            Comparison(p("name"), "=", "Mark"),
            Comparison(p("nick"), "=", "John"),
        )

    @pytest.mark.parametrize(
        "a_op,a_lit,b_op,b_lit,disjoint",
        [
            ("<", 10, ">", 20, True),
            ("<", 10, ">", 5, False),
            ("<=", 10, ">=", 10, False),
            ("<", 10, ">=", 10, True),
            (">", 100, "<", 50, True),
            ("=", 5, ">", 10, True),
            ("=", 15, ">", 10, False),
            ("=", 5, "!=", 5, True),
            ("!=", 5, "!=", 6, False),
        ],
    )
    def test_ranges(self, a_op, a_lit, b_op, b_lit, disjoint):
        assert comparisons_disjoint(
            Comparison(p("v"), a_op, a_lit),
            Comparison(p("v"), b_op, b_lit),
        ) is disjoint


class TestExecuteBulk:
    def test_only_guarded_owners_modified(self, payroll):
        applied = execute_bulk(payroll, "ROOT", RAISE_MARKS)
        assert {u.oid for u in applied} == {"s0", "s2"}
        assert payroll.get("s0").value == 51_000
        assert payroll.get("s1").value == 60_000  # John untouched

    def test_unguarded_bulk_hits_everyone(self, payroll):
        bulk = BulkUpdate(
            owner_path=p("person"),
            guard=None,
            target_label="salary",
            transform=lambda v: v + 1,
        )
        applied = execute_bulk(payroll, "ROOT", bulk)
        assert len(applied) == 4

    def test_noop_transform_produces_no_updates(self, payroll):
        bulk = BulkUpdate(
            owner_path=p("person"),
            guard=None,
            target_label="salary",
            transform=lambda v: v,
        )
        assert execute_bulk(payroll, "ROOT", bulk) == []


class TestMembershipScreening:
    def test_label_off_path_screened(self):
        d = ViewDefinition.parse(
            "define mview V as: SELECT ROOT.person X WHERE X.name = 'John'"
        )
        assert not bulk_is_relevant(d, RAISE_MARKS)

    def test_condition_on_salary_is_relevant(self):
        d = ViewDefinition.parse(
            "define mview V as: SELECT ROOT.person X WHERE X.salary > 55000"
        )
        assert bulk_is_relevant(d, RAISE_MARKS)

    def test_disjoint_selectors_screened(self):
        d = ViewDefinition.parse(
            "define mview V as: SELECT ROOT.dept.person X "
            "WHERE X.salary > 0"
        )
        # Bulk owners live directly under ROOT; the view needs a dept
        # level in between: path languages cannot intersect.
        assert not bulk_is_relevant(d, RAISE_MARKS)

    def test_wildcard_view_conservatively_relevant(self):
        d = ViewDefinition.parse(
            "define mview V as: SELECT ROOT.* X WHERE X.salary > 0"
        )
        assert bulk_is_relevant(d, RAISE_MARKS)


class TestValueScreening:
    JOHNS = ViewDefinition.parse(
        "define mview PJ as: SELECT ROOT.person X WHERE X.name = 'John'"
    )

    def test_paper_example_depth2_screened(self):
        # "a view containing the salary of persons named 'John' should
        # be unaffected" — depth-2 fragments copy the salaries.
        assert not bulk_is_relevant(self.JOHNS, RAISE_MARKS, fragment_depth=2)

    def test_overlapping_guard_is_relevant(self):
        raise_johns = BulkUpdate(
            owner_path=p("person"),
            guard=Comparison(p("name"), "=", "John"),
            target_label="salary",
            transform=lambda v: v + 1000,
        )
        assert bulk_is_relevant(self.JOHNS, raise_johns, fragment_depth=2)

    def test_unguarded_bulk_is_relevant(self):
        bulk = BulkUpdate(
            owner_path=p("person"),
            guard=None,
            target_label="salary",
            transform=lambda v: v + 1,
        )
        assert bulk_is_relevant(self.JOHNS, bulk, fragment_depth=2)

    def test_non_functional_guard_disables_screen(self):
        sneaky = BulkUpdate(
            owner_path=p("person"),
            guard=Comparison(p("name"), "=", "Mark"),
            target_label="salary",
            transform=lambda v: v + 1000,
            functional_guard=False,
        )
        assert bulk_is_relevant(self.JOHNS, sneaky, fragment_depth=2)

    def test_depth3_still_screened_when_salaries_sit_at_level_1(self):
        # Salaries only occur directly below the members (level 1), so
        # the guard screen remains sound even for deeper fragments.
        assert not bulk_is_relevant(self.JOHNS, RAISE_MARKS, fragment_depth=3)

    def test_deep_interior_owner_is_conservative(self):
        # Balances live below accounts (level 2): the owner of each
        # modified atom is an interior node, not the member, so the
        # guard screen must not fire.
        deep_bulk = BulkUpdate(
            owner_path=p("person.account"),
            guard=Comparison(p("name"), "=", "Mark"),
            target_label="balance",
            transform=lambda v: v + 1,
        )
        johns_with_accounts = ViewDefinition.parse(
            "define mview PJ as: SELECT ROOT.person X "
            "WHERE X.name = 'John'"
        )
        assert bulk_is_relevant(
            johns_with_accounts, deep_bulk, fragment_depth=3
        )

    def test_atomic_member_view(self):
        salaries = ViewDefinition.parse(
            "define mview S as: SELECT ROOT.person.salary X"
        )
        assert bulk_is_relevant(salaries, RAISE_MARKS)
        names = ViewDefinition.parse(
            "define mview N as: SELECT ROOT.person.name X"
        )
        assert not bulk_is_relevant(names, RAISE_MARKS)


class TestScreeningSoundness:
    """The screen must never declare an actually-affected view safe."""

    def test_screened_bulk_leaves_partial_view_untouched(self, payroll):
        index = ParentIndex(payroll)
        view = PartialMaterializedView(
            self_def := ViewDefinition.parse(
                "define mview PJ as: SELECT ROOT.person X "
                "WHERE X.name = 'John'"
            ),
            payroll,
            depth=2,
        )
        index.ignore_view("PJ")
        SimpleViewMaintainer(view, parent_index=index, subscribe=True)  # type: ignore[arg-type]
        view.load_members(compute_view_members(self_def, payroll))
        payroll.subscribe(view.handle_fragment_update)

        assert not bulk_is_relevant(self_def, RAISE_MARKS, fragment_depth=2)
        salary_before = view.delegate("s1").value
        execute_bulk(payroll, "ROOT", RAISE_MARKS)
        # The view genuinely did not change: skipping it was safe.
        assert view.delegate("s1").value == salary_before
        assert view.check_fragments() == []
        assert view.members() == {"e1"}

    def test_relevant_bulk_changes_partial_view(self, payroll):
        index = ParentIndex(payroll)
        definition = ViewDefinition.parse(
            "define mview PM as: SELECT ROOT.person X "
            "WHERE X.name = 'Mark'"
        )
        view = PartialMaterializedView(definition, payroll, depth=2)
        index.ignore_view("PM")
        SimpleViewMaintainer(view, parent_index=index, subscribe=True)  # type: ignore[arg-type]
        view.load_members(compute_view_members(definition, payroll))
        payroll.subscribe(view.handle_fragment_update)

        assert bulk_is_relevant(definition, RAISE_MARKS, fragment_depth=2)
        execute_bulk(payroll, "ROOT", RAISE_MARKS)
        assert view.delegate("s0").value == 51_000
        assert view.check_fragments() == []
