"""Unit tests for the warehouse's remote resolution machinery."""

import pytest

from repro.errors import UnknownObjectError
from repro.gsdb import Insert, Modify
from repro.instrumentation import CostCounters
from repro.warehouse import (
    CachePolicy,
    ObjectPayload,
    PathPayload,
    ReportingLevel,
    Source,
    SourceLink,
    UpdateNotification,
)
from repro.warehouse.caching import AuxiliaryCache
from repro.warehouse.warehouse import RemoteBaseStore, RemoteParentIndex


@pytest.fixture
def link(person_tree_store) -> SourceLink:
    return SourceLink(Source("S1", person_tree_store, "ROOT"))


def notification(update, *, contents=(), paths=(), level=2):
    return UpdateNotification(
        source_id="S1",
        sequence=1,
        update=update,
        level=ReportingLevel(level),
        contents=tuple(contents),
        paths=tuple(paths),
    )


class TestRemoteBaseStore:
    def test_seed_satisfies_without_query(self, link):
        store = RemoteBaseStore(link, None, CostCounters())
        payload = ObjectPayload("A2", "age", "integer", 40)
        store.begin_update(
            notification(Insert("P2", "A2"), contents=[payload])
        )
        obj = store.get("A2")
        assert obj.value == 40
        assert link.log.queries == 0

    def test_fetch_memoized_per_update(self, link):
        store = RemoteBaseStore(link, None, CostCounters())
        store.begin_update(notification(Modify("A1", 45, 45), level=1))
        store.get("A1")
        store.get("A1")
        assert link.log.queries == 1  # second read served from memo

    def test_negative_cache(self, link):
        store = RemoteBaseStore(link, None, CostCounters())
        store.begin_update(notification(Modify("A1", 45, 45), level=1))
        assert store.get_optional("ghost") is None
        assert store.get_optional("ghost") is None
        assert link.log.queries == 1

    def test_begin_update_clears_memo(self, link):
        store = RemoteBaseStore(link, None, CostCounters())
        store.begin_update(notification(Modify("A1", 45, 45), level=1))
        store.get("A1")
        store.begin_update(notification(Modify("A1", 45, 45), level=1))
        store.get("A1")
        assert link.log.queries == 2

    def test_get_raises_on_missing(self, link):
        store = RemoteBaseStore(link, None, CostCounters())
        store.begin_update(notification(Modify("A1", 45, 45), level=1))
        with pytest.raises(UnknownObjectError):
            store.get("ghost")

    def test_contains(self, link):
        store = RemoteBaseStore(link, None, CostCounters())
        store.begin_update(notification(Modify("A1", 45, 45), level=1))
        assert "A1" in store
        assert "ghost" not in store

    def test_structure_cache_fetches_atomic_values(self, link):
        cache = AuxiliaryCache(
            "ROOT", ("professor", "age"), CachePolicy.STRUCTURE, link
        )
        cache.seed()
        queries_after_seed = link.log.queries
        store = RemoteBaseStore(link, cache, CostCounters())
        store.begin_update(notification(Modify("A1", 45, 45), level=1))
        # Set object: served from cache.
        assert store.get("P1").is_set
        assert link.log.queries == queries_after_seed
        # Atomic value missing under STRUCTURE: one fetch.
        assert store.get("A1").value == 45
        assert link.log.queries == queries_after_seed + 1

    def test_full_cache_serves_values(self, link):
        cache = AuxiliaryCache(
            "ROOT", ("professor", "age"), CachePolicy.FULL, link
        )
        cache.seed()
        queries_after_seed = link.log.queries
        store = RemoteBaseStore(link, cache, CostCounters())
        store.begin_update(notification(Modify("A1", 45, 45), level=1))
        assert store.get("A1").value == 45
        assert link.log.queries == queries_after_seed


class TestRemoteParentIndex:
    def test_path_payload_hints(self, link):
        index = RemoteParentIndex(link, None)
        index.begin_update(
            notification(
                Modify("A1", 45, 46),
                paths=[
                    PathPayload(
                        "A1", ("ROOT", "P1", "A1"), ("professor", "age")
                    )
                ],
                level=3,
            )
        )
        assert index.parent("A1") == "P1"
        assert index.parent("P1") == "ROOT"
        assert link.log.queries == 0

    def test_fallback_to_fetch_parents(self, link):
        index = RemoteParentIndex(link, None)
        index.begin_update(notification(Modify("A1", 45, 46), level=1))
        assert index.parent("A1") == "P1"
        assert link.log.queries == 1
        assert index.parent("A1") == "P1"  # hint cached
        assert link.log.queries == 1

    def test_cache_provides_parents(self, link):
        cache = AuxiliaryCache(
            "ROOT", ("professor", "age"), CachePolicy.FULL, link
        )
        cache.seed()
        queries_after_seed = link.log.queries
        index = RemoteParentIndex(link, cache)
        index.begin_update(notification(Modify("A1", 45, 46), level=1))
        assert index.parent("A1") == "P1"
        assert link.log.queries == queries_after_seed

    def test_root_has_no_parent(self, link):
        index = RemoteParentIndex(link, None)
        index.begin_update(notification(Modify("A1", 45, 46), level=1))
        assert index.parent("ROOT") is None

    def test_parents_set_form(self, link):
        index = RemoteParentIndex(link, None)
        index.begin_update(notification(Modify("A1", 45, 46), level=1))
        assert index.parents("A1") == {"P1"}
        assert index.parents("ROOT") == set()
