"""Regression pins for at-least-once batch delivery.

Re-delivering an already-applied batch — to
:meth:`ViewCatalog.apply_batch` or :meth:`Warehouse.process_batch` —
must be a no-op: same store, same views, no ``InvalidUpdateError``,
the replays counted as deduped.  The unit tests pin the exact
semantics of :func:`screen_replayed` the two entry points rely on.
"""

import pytest

from repro.errors import InvalidUpdateError
from repro.gsdb import Delete, Insert, Modify
from repro.gsdb.store import ObjectStore
from repro.instrumentation.counters import CostCounters
from repro.views import ViewCatalog
from repro.views.dispatcher import screen_replayed
from repro.warehouse import ReportingLevel, Source, Warehouse
from repro.workloads import random_labelled_tree


@pytest.fixture
def store() -> ObjectStore:
    store = ObjectStore()
    store.add_set("R", "root", ())
    store.add_atomic("A", "a", 1)
    store.add_atomic("B", "a", 2)
    store.insert_edge("R", "A")
    return store


class TestScreenReplayed:
    def test_replayed_updates_dropped(self, store):
        counters = CostCounters()
        survivors = screen_replayed(
            store,
            [Insert("R", "A"), Delete("R", "B"), Modify("A", 0, 1)],
            counters=counters,
        )
        assert survivors == []
        assert counters.notifications_deduped == 3

    def test_fresh_updates_survive(self, store):
        survivors = screen_replayed(
            store,
            [Insert("R", "B"), Delete("R", "A"), Modify("A", 1, 5)],
        )
        assert len(survivors) == 3

    def test_intra_batch_sequencing_survives(self, store):
        """delete-then-reinsert of a live edge: both still meaningful."""
        batch = [Delete("R", "A"), Insert("R", "A")]
        assert screen_replayed(store, batch) == batch

    def test_insert_then_delete_of_absent_edge(self, store):
        batch = [Insert("R", "B"), Delete("R", "B")]
        assert screen_replayed(store, batch) == batch

    def test_genuine_conflicts_pass_through(self, store):
        """Screening must not mask real protocol errors: a Modify whose
        old value matches neither stored nor new value is kept, and the
        store still raises on it."""
        conflict = Modify("A", 999, 5)
        survivors = screen_replayed(store, [conflict])
        assert survivors == [conflict]
        with pytest.raises(InvalidUpdateError):
            store.apply(conflict)

    def test_insert_under_missing_parent_is_kept(self, store):
        conflict = Insert("GHOST", "A")
        assert screen_replayed(store, [conflict]) == [conflict]
        with pytest.raises(InvalidUpdateError):
            store.apply(conflict)


class TestCatalogRedelivery:
    def test_apply_batch_redelivery_is_noop(self, person_catalog):
        person_catalog.define(
            "define mview YP as: SELECT PERSON.professor X WHERE X.age <= 45"
        )
        view = person_catalog.materialized_views["YP"]
        person_catalog.store.add_atomic("A9", "salary", 30)
        batch = [Insert("P1", "A9"), Modify("A1", 45, 40)]
        assert person_catalog.apply_batch(batch) == 2
        members = set(view.members())
        deduped_before = person_catalog.store.counters.notifications_deduped
        # Exact re-delivery: screened to nothing, nothing raises.
        assert person_catalog.apply_batch(batch) == 0
        assert set(view.members()) == members
        assert (
            person_catalog.store.counters.notifications_deduped
            == deduped_before + 2
        )
        assert person_catalog.check("YP").ok

    def test_partial_prefix_redelivery(self, person_catalog):
        person_catalog.store.add_atomic("A9", "salary", 30)
        batch = [Insert("P2", "A9")]
        person_catalog.apply_batch(batch)
        # The prefix arrives again bundled with genuinely new work.
        applied = person_catalog.apply_batch(batch + [Modify("A9", 30, 31)])
        assert applied == 1
        assert person_catalog.store.get("A9").atomic_value() == 31


class TestWarehouseRedelivery:
    def test_process_batch_redelivery_is_noop(self):
        store, root = random_labelled_tree(
            nodes=15, labels=("a", "b"), seed=2
        )
        wh = Warehouse()
        wh.connect(
            Source("S1", store, root), level=ReportingLevel.WITH_CONTENTS
        )
        wview = wh.define_view(
            "define mview V as: SELECT root0.a X", "S1"
        )
        atom = sorted(
            oid
            for oid in store.oids()
            if (obj := store.peek(oid)) is not None and obj.is_atomic
        )[0]
        batch = [Modify(atom, store.peek(atom).atomic_value(), 500)]
        survivors = wh.process_batch("S1", batch)
        assert len(survivors) == 1
        members = wview.members()
        sequence_before = wh.monitors["S1"].last_sequence
        # Re-delivery: screened out, no notification built, no error.
        assert wh.process_batch("S1", batch) == []
        assert wh.monitors["S1"].last_sequence == sequence_before
        assert wview.members() == members
        assert wh.counters.notifications_deduped >= 1
