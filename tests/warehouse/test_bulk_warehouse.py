"""End-to-end bulk updates through the Warehouse (descriptor-first)."""

import pytest

from repro.gsdb import ObjectStore
from repro.paths import PathExpression
from repro.query.ast import Comparison
from repro.views import compute_view_members, ViewDefinition
from repro.warehouse import (
    BulkUpdate,
    ReportingLevel,
    Source,
    Warehouse,
)

p = PathExpression.parse


def payroll(people: int = 9) -> ObjectStore:
    s = ObjectStore()
    names = ("Mark", "John", "Jane")
    for i in range(people):
        s.add_atomic(f"n{i}", "name", names[i % 3])
        s.add_atomic(f"s{i}", "salary", 50_000 + i * 1000)
        s.add_set(f"e{i}", "person", [f"n{i}", f"s{i}"])
    s.add_set("ROOT", "company", [f"e{i}" for i in range(people)])
    return s


RAISE_MARKS = BulkUpdate(
    owner_path=p("person"),
    guard=Comparison(p("name"), "=", "Mark"),
    target_label="salary",
    transform=lambda v: v + 1000,
)


@pytest.fixture
def setup():
    store = payroll()
    wh = Warehouse()
    wh.connect(
        Source("S1", store, "ROOT"), level=ReportingLevel.WITH_CONTENTS
    )
    johns = wh.define_view(
        "define mview PJ as: SELECT ROOT.person X WHERE X.name = 'John'",
        "S1",
    )
    rich = wh.define_view(
        "define mview PR as: SELECT ROOT.person X WHERE X.salary > 53500",
        "S1",
    )
    return store, wh, johns, rich


class TestApplyBulk:
    def test_source_state_updated(self, setup):
        store, wh, johns, rich = setup
        applied = wh.apply_bulk("S1", RAISE_MARKS)
        assert len(applied) == 3  # three Marks
        assert store.get("s0").value == 51_000

    def test_irrelevant_view_screened_with_zero_queries(self, setup):
        store, wh, johns, rich = setup
        before = wh.log.queries
        wh.apply_bulk("S1", RAISE_MARKS)
        assert johns.stats.bulk_batches == 1
        assert johns.stats.bulk_batches_screened == 1
        # The Johns view saw no per-update notifications...
        assert johns.stats.notifications == 0
        # ...and the screen itself consulted no source.
        # (The relevant view may have queried; isolate by membership.)
        assert sorted(johns.members()) == sorted(
            compute_view_members(
                ViewDefinition.parse(
                    "define mview PJ as: SELECT ROOT.person X "
                    "WHERE X.name = 'John'"
                ),
                store,
            )
        )

    def test_relevant_view_processes_batch(self, setup):
        store, wh, johns, rich = setup
        before_members = rich.members()
        wh.apply_bulk("S1", RAISE_MARKS)
        assert rich.stats.bulk_batches == 1
        assert rich.stats.bulk_batches_screened == 0
        assert rich.stats.notifications == 3
        truth = compute_view_members(
            ViewDefinition.parse(
                "define mview PR as: SELECT ROOT.person X "
                "WHERE X.salary > 53500"
            ),
            store,
        )
        assert rich.members() == truth
        assert rich.members() != before_members  # a Mark crossed 55k

    def test_monitor_suppressed_during_bulk(self, setup):
        store, wh, johns, rich = setup
        wh.apply_bulk("S1", RAISE_MARKS)
        # Ordinary per-update dispatch would have notified both views
        # 3 times each; the screened view got none.
        assert johns.stats.notifications == 0

    def test_normal_updates_still_flow_after_bulk(self, setup):
        store, wh, johns, rich = setup
        wh.apply_bulk("S1", RAISE_MARKS)
        store.modify_value("n2", "John")  # Jane -> John
        assert "e2" in johns.members()
        assert johns.stats.notifications == 1

    def test_pause_is_nestable(self, setup):
        store, wh, johns, rich = setup
        monitor = wh.monitors["S1"]
        monitor.pause()
        monitor.pause()
        store.modify_value("s1", 1)
        monitor.resume()
        store.modify_value("s1", 2)
        monitor.resume()
        assert not monitor.paused
        with pytest.raises(RuntimeError):
            monitor.resume()
        # Both updates during pause were invisible to the views.
        assert rich.stats.notifications == 0
