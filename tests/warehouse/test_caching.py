"""Tests for the auxiliary cache (paper Section 5.2, Example 10)."""

import pytest

from repro.warehouse import (
    CachePolicy,
    Monitor,
    ReportingLevel,
    Source,
    SourceLink,
)
from repro.warehouse.caching import AuxiliaryCache


@pytest.fixture
def link(person_tree_store) -> SourceLink:
    return SourceLink(Source("S1", person_tree_store, "ROOT"))


def make_cache(link, policy, labels=("professor", "age")):
    cache = AuxiliaryCache("ROOT", tuple(labels), policy, link)
    cache.seed()
    return cache


class TestSeeding:
    def test_example_10_region(self, link):
        # Cache of ROOT + professors + their age objects.
        cache = make_cache(link, CachePolicy.FULL)
        assert set(cache.entries) == {"ROOT", "P1", "P2", "A1"}
        assert cache.entries["A1"].depth == 2
        assert cache.entries["P1"].parent == "ROOT"

    def test_full_policy_keeps_values(self, link):
        cache = make_cache(link, CachePolicy.FULL)
        assert cache.entries["A1"].value == 45

    def test_structure_policy_drops_values(self, link):
        cache = make_cache(link, CachePolicy.STRUCTURE)
        assert cache.entries["A1"].value is None
        # But structure (children, labels) is kept.
        assert "A1" in cache.entries["P1"].children

    def test_none_policy_empty(self, link):
        cache = make_cache(link, CachePolicy.NONE)
        assert len(cache) == 0


class TestLookups:
    def test_hit_miss_counters(self, link):
        cache = make_cache(link, CachePolicy.FULL)
        cache.lookup("P1")
        cache.lookup("nope")
        assert cache.hits == 1 and cache.misses == 1

    def test_root_path_reconstruction(self, link):
        cache = make_cache(link, CachePolicy.FULL)
        chain, labels = cache.root_path("A1")
        assert chain == ["ROOT", "P1", "A1"]
        assert labels == ["professor", "age"]
        assert cache.root_path("N1") is None

    def test_region_descendants_complete(self, link):
        cache = make_cache(link, CachePolicy.FULL)
        entries = cache.region_descendants("P1", ("age",))
        assert [e.oid for e in entries] == ["A1"]
        # Full suffix from the root:
        entries = cache.region_descendants("ROOT", ("professor", "age"))
        assert {e.oid for e in entries} == {"A1"}

    def test_region_descendants_misaligned(self, link):
        cache = make_cache(link, CachePolicy.FULL)
        assert cache.region_descendants("P1", ("name",)) is None
        assert cache.region_descendants("zzz", ("age",)) is None
        assert cache.region_descendants("A1", ("age",)) is None  # too deep


class TestMaintenance:
    def _notify(self, source, level, cache):
        monitor = Monitor(source, level)
        monitor.register(cache.apply_notification)
        return monitor

    def test_insert_admits_region_child(self, link, person_tree_store):
        cache = make_cache(link, CachePolicy.FULL)
        self._notify(link.source, ReportingLevel.WITH_CONTENTS, cache)
        person_tree_store.add_atomic("A2", "age", 40)
        person_tree_store.insert_edge("P2", "A2")
        assert "A2" in cache.entries
        assert cache.entries["A2"].value == 40
        assert "A2" in cache.entries["P2"].children

    def test_insert_out_of_region_child_not_admitted(
        self, link, person_tree_store
    ):
        cache = make_cache(link, CachePolicy.FULL)
        self._notify(link.source, ReportingLevel.WITH_CONTENTS, cache)
        person_tree_store.add_atomic("Z", "zipcode", 1)
        person_tree_store.insert_edge("P2", "Z")
        assert "Z" not in cache.entries
        assert "Z" in cache.entries["P2"].children  # structure tracked

    def test_insert_at_level_1_fetches_contents(
        self, link, person_tree_store
    ):
        cache = make_cache(link, CachePolicy.FULL)
        self._notify(link.source, ReportingLevel.OIDS_ONLY, cache)
        before = link.log.queries
        person_tree_store.add_atomic("A2", "age", 40)
        person_tree_store.insert_edge("P2", "A2")
        assert "A2" in cache.entries
        assert link.log.queries > before  # had to fetch the payload

    def test_subtree_graft_extends_region(self, link, person_tree_store):
        s = person_tree_store
        cache = make_cache(link, CachePolicy.FULL)
        self._notify(link.source, ReportingLevel.WITH_CONTENTS, cache)
        s.add_atomic("A5", "age", 30)
        s.add_set("P5", "professor", ["A5"])
        s.insert_edge("ROOT", "P5")
        assert "P5" in cache.entries
        assert "A5" in cache.entries  # pulled in by _extend_below
        assert cache.entries["A5"].depth == 2

    def test_delete_evicts_subtree(self, link, person_tree_store):
        cache = make_cache(link, CachePolicy.FULL)
        self._notify(link.source, ReportingLevel.WITH_CONTENTS, cache)
        person_tree_store.delete_edge("ROOT", "P1")
        assert "P1" not in cache.entries
        assert "A1" not in cache.entries
        assert "P2" in cache.entries

    def test_modify_updates_cached_value(self, link, person_tree_store):
        cache = make_cache(link, CachePolicy.FULL)
        self._notify(link.source, ReportingLevel.WITH_CONTENTS, cache)
        person_tree_store.modify_value("A1", 46)
        assert cache.entries["A1"].value == 46

    def test_modify_ignored_under_structure_policy(
        self, link, person_tree_store
    ):
        cache = make_cache(link, CachePolicy.STRUCTURE)
        self._notify(link.source, ReportingLevel.WITH_CONTENTS, cache)
        person_tree_store.modify_value("A1", 46)
        assert cache.entries["A1"].value is None
