"""Tests for sources and their query service."""

import pytest

from repro.errors import CapabilityError
from repro.warehouse import (
    QueryKind,
    Source,
    SourceCapability,
    SourceQuery,
)


@pytest.fixture
def source(person_tree_store) -> Source:
    return Source("S1", person_tree_store, "ROOT")


@pytest.fixture
def weak_source(person_tree_store) -> Source:
    return Source(
        "S1", person_tree_store, "ROOT",
        capability=SourceCapability.FETCH_ONLY,
    )


class TestFetchQueries:
    def test_fetch_object(self, source):
        answer = source.serve(SourceQuery(QueryKind.FETCH_OBJECT, "A1"))
        (payload,) = answer.objects
        assert (payload.oid, payload.label, payload.value) == (
            "A1", "age", 45,
        )

    def test_fetch_missing_object(self, source):
        answer = source.serve(SourceQuery(QueryKind.FETCH_OBJECT, "zz"))
        assert answer.objects == ()

    def test_fetch_parents(self, source):
        answer = source.serve(SourceQuery(QueryKind.FETCH_PARENTS, "A1"))
        assert [p.oid for p in answer.objects] == ["P1"]

    def test_fetch_parents_of_root(self, source):
        answer = source.serve(SourceQuery(QueryKind.FETCH_PARENTS, "ROOT"))
        assert answer.objects == ()


class TestPathQueries:
    def test_path_from(self, source):
        answer = source.serve(
            SourceQuery(
                QueryKind.PATH_FROM, "ROOT", labels=("professor", "age")
            )
        )
        assert [p.oid for p in answer.objects] == ["A1"]

    def test_path_to_root(self, source):
        answer = source.serve(SourceQuery(QueryKind.PATH_TO_ROOT, "A3"))
        assert answer.path.oid_chain == ("ROOT", "P1", "P3", "A3")
        assert answer.path.labels == ("professor", "student", "age")

    def test_path_to_root_of_root(self, source):
        answer = source.serve(SourceQuery(QueryKind.PATH_TO_ROOT, "ROOT"))
        assert answer.path.oid_chain == ("ROOT",)
        assert answer.path.labels == ()

    def test_path_to_root_unreachable(self, source, person_tree_store):
        person_tree_store.delete_edge("ROOT", "P1")
        answer = source.serve(SourceQuery(QueryKind.PATH_TO_ROOT, "A1"))
        assert answer.path is None


class TestCapabilities:
    def test_weak_source_serves_fetches(self, weak_source):
        answer = weak_source.serve(SourceQuery(QueryKind.FETCH_OBJECT, "A1"))
        assert answer.objects

    def test_weak_source_rejects_path_queries(self, weak_source):
        with pytest.raises(CapabilityError):
            weak_source.serve(SourceQuery(QueryKind.PATH_TO_ROOT, "A1"))
        with pytest.raises(CapabilityError):
            weak_source.serve(
                SourceQuery(QueryKind.PATH_FROM, "ROOT", labels=("age",))
            )

    def test_queries_served_counted(self, source):
        source.serve(SourceQuery(QueryKind.FETCH_OBJECT, "A1"))
        source.serve(SourceQuery(QueryKind.FETCH_OBJECT, "A1"))
        assert source.queries_served == 2
