"""Tests for source monitors and the three reporting levels."""

import pytest

from repro.gsdb import Insert
from repro.warehouse import Monitor, ReportingLevel, Source


@pytest.fixture
def source(person_tree_store) -> Source:
    return Source("S1", person_tree_store, "ROOT")


def capture(source, level):
    monitor = Monitor(source, level)
    received = []
    monitor.register(received.append)
    return monitor, received


class TestLevel1:
    def test_oids_only(self, source, person_tree_store):
        _, received = capture(source, ReportingLevel.OIDS_ONLY)
        person_tree_store.modify_value("A1", 46)
        (n,) = received
        assert n.update.directly_affected == ("A1",)
        assert n.contents == () and n.paths == ()
        assert n.source_id == "S1"


class TestLevel2:
    def test_contents_included(self, source, person_tree_store):
        _, received = capture(source, ReportingLevel.WITH_CONTENTS)
        person_tree_store.add_atomic("A2", "age", 40)
        person_tree_store.insert_edge("P2", "A2")
        (n,) = received
        assert isinstance(n.update, Insert)
        oids = {p.oid for p in n.contents}
        assert oids == {"P2", "A2"}
        assert n.content_for("A2").value == 40
        # Post-update state: P2's shipped value includes the new child.
        assert "A2" in n.content_for("P2").value

    def test_modify_ships_new_value(self, source, person_tree_store):
        _, received = capture(source, ReportingLevel.WITH_CONTENTS)
        person_tree_store.modify_value("A1", 46)
        (n,) = received
        assert n.content_for("A1").value == 46


class TestLevel3:
    def test_paths_included(self, source, person_tree_store):
        _, received = capture(source, ReportingLevel.WITH_PATHS)
        person_tree_store.add_atomic("A2", "age", 40)
        person_tree_store.insert_edge("P2", "A2")
        (n,) = received
        path = n.path_for("A2")
        assert path.oid_chain == ("ROOT", "P2", "A2")
        assert path.labels == ("professor", "age")
        parent_path = n.path_for("P2")
        assert parent_path.oid_chain == ("ROOT", "P2")

    def test_detached_object_has_no_path(self, source, person_tree_store):
        _, received = capture(source, ReportingLevel.WITH_PATHS)
        person_tree_store.delete_edge("ROOT", "P1")
        (n,) = received
        assert n.path_for("ROOT") is not None
        assert n.path_for("P1") is None  # detached post-update


class TestSequencing:
    def test_sequence_numbers_increase(self, source, person_tree_store):
        _, received = capture(source, ReportingLevel.OIDS_ONLY)
        person_tree_store.modify_value("A1", 46)
        person_tree_store.modify_value("A1", 47)
        assert [n.sequence for n in received] == [1, 2]

    def test_multiple_sinks(self, source, person_tree_store):
        monitor = Monitor(source, ReportingLevel.OIDS_ONLY)
        first, second = [], []
        monitor.register(first.append)
        monitor.register(second.append)
        person_tree_store.modify_value("A1", 46)
        assert len(first) == len(second) == 1
