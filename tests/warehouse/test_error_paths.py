"""Error-path coverage for the monitor, bulk execution, and the
retry/backoff machinery — the corners the happy-path suites skip."""

import pytest

from repro.chaos import FaultyChannel, RecordedSchedule
from repro.errors import SourceUnavailableError
from repro.gsdb import ObjectStore
from repro.paths import PathExpression
from repro.query.ast import Comparison
from repro.warehouse import (
    BulkUpdate,
    Monitor,
    ReportingLevel,
    Source,
    Warehouse,
    execute_bulk,
)
from repro.warehouse.wrapper import RetryPolicy, SourceLink

p = PathExpression.parse


@pytest.fixture
def source(person_tree_store) -> Source:
    return Source("S1", person_tree_store, "ROOT")


class TestMonitorErrorPaths:
    def test_resume_unpaused_raises(self, source):
        monitor = Monitor(source)
        with pytest.raises(RuntimeError):
            monitor.resume()

    def test_pause_nesting(self, source, person_tree_store):
        monitor = Monitor(source)
        received = []
        monitor.register(received.append)
        monitor.pause()
        monitor.pause()
        monitor.resume()
        assert monitor.paused
        person_tree_store.modify_value("A1", 46)
        assert received == []
        monitor.resume()
        assert not monitor.paused
        person_tree_store.modify_value("A1", 47)
        assert len(received) == 1

    def test_history_is_bounded(self, source, person_tree_store):
        monitor = Monitor(source, history_limit=3)
        for value in range(50, 60):
            person_tree_store.modify_value("A1", value)
        assert monitor.last_sequence == 10
        # Only the newest three sequences remain replayable.
        assert monitor.replay([8, 9, 10]) is not None
        assert monitor.replay([7]) is None

    def test_replay_partial_eviction_returns_none(
        self, source, person_tree_store
    ):
        monitor = Monitor(source, history_limit=2)
        for value in range(50, 55):
            person_tree_store.modify_value("A1", value)
        # 4 is replayable, 1 is not: all-or-nothing.
        assert monitor.replay([1, 4]) is None

    def test_replay_sorts_and_dedups_requests(
        self, source, person_tree_store
    ):
        monitor = Monitor(source)
        for value in range(50, 54):
            person_tree_store.modify_value("A1", value)
        replayed = monitor.replay([3, 1, 3, 2])
        assert [n.sequence for n in replayed] == [1, 2, 3]

    def test_replay_of_never_built_sequence_returns_none(self, source):
        monitor = Monitor(source)
        assert monitor.replay([1]) is None

    def test_replay_empty_request_is_empty(self, source):
        assert Monitor(source).replay([]) == []


class TestBulkErrorPaths:
    def test_missing_and_non_set_owners_skipped(self):
        store = ObjectStore()
        store.add_atomic("n0", "person", 1)  # atomic owner: skipped
        store.add_set("ROOT", "company", ["n0"])
        bulk = BulkUpdate(
            owner_path=p("person"),
            guard=None,
            target_label="salary",
            transform=lambda v: v + 1,
        )
        assert execute_bulk(store, "ROOT", bulk) == []

    def test_wrong_label_children_untouched(self):
        store = ObjectStore()
        store.add_atomic("n0", "name", "Mark")
        store.add_set("e0", "person", ["n0"])
        store.add_set("ROOT", "company", ["e0"])
        bulk = BulkUpdate(
            owner_path=p("person"),
            guard=None,
            target_label="salary",
            transform=lambda v: v + 1,
        )
        assert execute_bulk(store, "ROOT", bulk) == []
        assert store.get("n0").atomic_value() == "Mark"

    def test_guard_failure_skips_owner(self):
        store = ObjectStore()
        store.add_atomic("n0", "name", "John")
        store.add_atomic("s0", "salary", 10)
        store.add_set("e0", "person", ["n0", "s0"])
        store.add_set("ROOT", "company", ["e0"])
        bulk = BulkUpdate(
            owner_path=p("person"),
            guard=Comparison(p("name"), "=", "Mark"),
            target_label="salary",
            transform=lambda v: v + 1,
        )
        assert execute_bulk(store, "ROOT", bulk) == []
        assert store.get("s0").atomic_value() == 10

    def test_apply_bulk_on_warehouse_marks_sequences_delivered(self):
        """Bulk descriptors consume monitor sequences outside the
        channel; heal() must not misread them as losses."""
        store = ObjectStore()
        store.add_atomic("n0", "name", "Mark")
        store.add_atomic("s0", "salary", 10)
        store.add_set("e0", "person", ["n0", "s0"])
        store.add_set("ROOT", "company", ["e0"])
        source = Source("S1", store, "ROOT")
        wh = Warehouse()
        wh.connect(source, level=ReportingLevel.WITH_CONTENTS)
        wh.define_view(
            "define mview V as: SELECT ROOT.person X", "S1"
        )
        bulk = BulkUpdate(
            owner_path=p("person"),
            guard=None,
            target_label="salary",
            transform=lambda v: v + 1,
        )
        applied = wh.apply_bulk("S1", bulk)
        assert len(applied) == 1
        assert wh.ingress["S1"].next_expected == (
            wh.monitors["S1"].last_sequence + 1
        )
        replayed_before = wh.counters.notifications_replayed
        assert wh.heal() == 0  # no phantom gap
        assert wh.counters.notifications_replayed == replayed_before


class TestRetryStateMachine:
    def test_zero_retries_budget(self, source):
        policy = RetryPolicy(max_retries=0, base_delay=1.0)
        assert policy.total_budget() == 0.0
        link = SourceLink(source, retry=policy)
        source.crash()
        with pytest.raises(SourceUnavailableError):
            link.fetch_object("ROOT")
        assert link.retries_performed == 0
        assert link.failures == 1

    def test_each_failed_attempt_charged_once(self, source):
        link = SourceLink(
            source, retry=RetryPolicy(max_retries=2, base_delay=0.1)
        )
        source.crash()
        with pytest.raises(SourceUnavailableError):
            link.fetch_object("ROOT")
        # 1 initial + 2 retries = 3 failed attempts, 2 waits.
        assert link.counters.source_failures == 3
        assert link.counters.query_retries == 2
        assert source.queries_rejected == 3

    def test_backoff_advances_injected_clock(self, source):
        waits = []
        link = SourceLink(
            source,
            retry=RetryPolicy(
                max_retries=3, base_delay=1.0, multiplier=2.0, max_delay=3.0
            ),
        )
        link.clock = waits.append
        source.crash()
        with pytest.raises(SourceUnavailableError):
            link.fetch_object("ROOT")
        assert waits == [1.0, 2.0, 3.0]

    def test_recovery_between_attempts_succeeds(self, source):
        """The canonical crash-then-recover race: the source comes back
        while the link is waiting out its second backoff."""
        link = SourceLink(
            source, retry=RetryPolicy(max_retries=5, base_delay=1.0)
        )
        elapsed = []

        def clock(seconds: float) -> None:
            elapsed.append(seconds)
            if sum(elapsed) >= 3.0:
                source.recover()

        link.clock = clock
        source.crash()
        payload = link.fetch_object("ROOT")
        assert payload is not None and payload.oid == "ROOT"
        assert link.failures == 0
        assert link.retries_performed >= 2

    def test_channel_query_faults_do_not_leak_when_disarmed(self, source):
        """A disarmed channel attached to a link is inert on the query
        path even with timeouts scripted."""
        channel = FaultyChannel(RecordedSchedule.scripted(queries=[True]))
        channel.armed = False
        link = SourceLink(source, retry=RetryPolicy())
        channel.attach_link(link)
        assert link.fetch_object("ROOT") is not None
        assert channel.stats.query_timeouts == 0
