"""Tests for protocol messages and traffic accounting."""

from repro.gsdb import Insert, Modify, Object
from repro.warehouse import (
    MessageLog,
    ObjectPayload,
    PathPayload,
    QueryAnswer,
    QueryKind,
    ReportingLevel,
    SourceQuery,
    UpdateNotification,
)
from repro.warehouse.protocol import payload_from_object


class TestPayloads:
    def test_payload_from_set_object(self):
        obj = Object.set_object("P1", "professor", ["B", "A"])
        payload = payload_from_object(obj)
        assert payload.value == ("A", "B")
        assert payload.type == "set"

    def test_payload_from_atomic(self):
        payload = payload_from_object(Object.atomic("A1", "age", 45))
        assert payload.value == 45

    def test_sizes_positive(self):
        payload = ObjectPayload("A1", "age", "integer", 45)
        assert payload.estimated_size() > 0
        path = PathPayload("A1", ("ROOT", "P1", "A1"), ("professor", "age"))
        assert path.estimated_size() > 0


class TestNotifications:
    def test_level_ordering(self):
        assert ReportingLevel.OIDS_ONLY < ReportingLevel.WITH_CONTENTS
        assert ReportingLevel.WITH_PATHS == 3

    def test_content_and_path_lookup(self):
        contents = (ObjectPayload("A2", "age", "integer", 40),)
        paths = (PathPayload("A2", ("ROOT", "P2", "A2"), ("professor", "age")),)
        notification = UpdateNotification(
            source_id="S1",
            sequence=1,
            update=Insert("P2", "A2"),
            level=ReportingLevel.WITH_PATHS,
            contents=contents,
            paths=paths,
        )
        assert notification.content_for("A2").value == 40
        assert notification.content_for("zz") is None
        assert notification.path_for("A2").labels == ("professor", "age")
        assert notification.path_for("zz") is None

    def test_richer_levels_cost_more_bytes(self):
        update = Modify("A1", 45, 46)
        lean = UpdateNotification("S1", 1, update, ReportingLevel.OIDS_ONLY)
        rich = UpdateNotification(
            "S1", 1, update, ReportingLevel.WITH_CONTENTS,
            contents=(ObjectPayload("A1", "age", "integer", 46),),
        )
        assert rich.estimated_size() > lean.estimated_size()


class TestMessageLog:
    def test_records_and_totals(self):
        log = MessageLog()
        notification = UpdateNotification(
            "S1", 1, Modify("A1", 45, 46), ReportingLevel.OIDS_ONLY
        )
        log.record_notification(notification)
        query = SourceQuery(QueryKind.FETCH_OBJECT, "A1")
        answer = QueryAnswer(
            objects=(ObjectPayload("A1", "age", "integer", 46),)
        )
        log.record_query(query, answer)
        assert log.notifications == 1
        assert log.queries == 1
        assert log.by_kind == {"fetch_object": 1}
        assert log.total_bytes == (
            log.notification_bytes + log.query_bytes + log.answers_bytes
        )

    def test_snapshot_delta(self):
        log = MessageLog()
        query = SourceQuery(QueryKind.FETCH_OBJECT, "A1")
        log.record_query(query, QueryAnswer())
        snap = log.snapshot()
        log.record_query(query, QueryAnswer())
        log.record_query(
            SourceQuery(QueryKind.PATH_TO_ROOT, "A1"), QueryAnswer()
        )
        delta = log.delta_since(snap)
        assert delta.queries == 2
        assert delta.by_kind == {"fetch_object": 1, "path_to_root": 1}
